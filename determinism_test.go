package flock

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"flock/internal/analysis"
	"flock/internal/core"
	"flock/internal/crawler"
	"flock/internal/textsim"
)

var (
	detOnce sync.Once
	detDS   *crawler.Dataset
	detErr  error
)

// detDataset crawls one small shared world for the determinism tests.
func detDataset(t *testing.T) *crawler.Dataset {
	detOnce.Do(func() {
		cfg := core.DefaultConfig(150)
		cfg.World.Seed = 7
		cfg.ScoreToxicity = false
		res, err := core.Run(context.Background(), cfg)
		if err != nil {
			detErr = err
			return
		}
		detDS = res.Dataset
	})
	if detErr != nil {
		t.Fatal(detErr)
	}
	return detDS
}

// analysisReport runs every RQ analysis through one engine and renders
// the results as stable JSON. ECDF marshals as its sorted sample array
// and encoding/json sorts map keys, so equal results give equal bytes.
func analysisReport(t *testing.T, ds *crawler.Dataset, workers int) []byte {
	t.Helper()
	eng := analysis.Engine{Workers: workers, Cache: textsim.NewCache()}
	report := map[string]any{
		"rq1":        eng.RQ1(ds),
		"networks":   eng.SocialNetworkSizes(ds),
		"contagion":  eng.RQ2Contagion(ds),
		"switching":  eng.RQ2Switching(ds),
		"daily":      eng.Timelines(ds),
		"sources":    eng.RQ3Sources(ds),
		"overlap":    eng.RQ3Overlap(ds, analysis.OverlapOptions{}),
		"hashtags":   eng.RQ3Hashtags(ds),
		"toxicity":   eng.RQ3Toxicity(ds, analysis.ToxicityOptions{}),
		"collection": eng.CollectionFigure(ds),
		"activity":   eng.ActivityFigure(ds),
		"retention":  eng.RQ4Retention(ds),
	}
	b, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAnalysisDeterministicAcrossWorkers is the engine's acceptance
// test: the full RQ1-RQ3 (+retention) report must be byte-identical for
// any worker count and across consecutive runs at the same count.
func TestAnalysisDeterministicAcrossWorkers(t *testing.T) {
	ds := detDataset(t)
	want := analysisReport(t, ds, 1)
	if len(want) < 100 {
		t.Fatalf("implausibly small report: %d bytes", len(want))
	}
	for _, w := range []int{1, 2, 8} {
		for run := 0; run < 2; run++ {
			got := analysisReport(t, ds, w)
			if !bytes.Equal(got, want) {
				t.Fatalf("workers=%d run=%d: report differs from serial baseline (%d vs %d bytes)",
					w, run, len(got), len(want))
			}
		}
	}
}

// TestAnalyzeDeterministicViaConfig covers the same property one layer
// up: core.Analyze with different AnalysisWorkers settings.
func TestAnalyzeDeterministicViaConfig(t *testing.T) {
	ds := detDataset(t)
	render := func(workers int) []byte {
		cfg := core.DefaultConfig(150)
		cfg.ScoreToxicity = false
		cfg.AnalysisWorkers = workers
		res := core.Analyze(ds, cfg)
		b, err := json.Marshal(res.RQ1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(res.Overlap)
		if err != nil {
			t.Fatal(err)
		}
		return append(b, b2...)
	}
	want := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); !bytes.Equal(got, want) {
			t.Fatalf("AnalysisWorkers=%d: Analyze output differs", w)
		}
	}
}
