// Quickstart: run the whole reproduction on a small world and print the
// headline findings — the three RQ answers from the paper's abstract.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"flock/internal/core"
	"flock/internal/report"
	"flock/internal/stats"
)

func main() {
	// A small world keeps this under ~10 seconds; scale NMigrants up for
	// tighter statistics.
	cfg := core.DefaultConfig(400)
	cfg.World.Seed = 2023
	cfg.ScoreToxicity = false // score locally at analysis time (faster)

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tracked %d migrated users across %d instances\n\n",
		res.Coverage.Pairs, res.Coverage.InstancesReceived)

	fmt.Println("RQ1 — the centralization paradox:")
	fmt.Printf("  top 25%% of instances hold %s of migrated users (paper: 96%%)\n",
		stats.Percent(res.RQ1.Top25Share))
	fmt.Printf("  single-user instances: %s of receiving instances (paper: 13.16%%)\n",
		stats.Percent(res.RQ1.SingleUserInstanceFrac))
	fmt.Printf("  ...whose users post %+.0f%% more statuses than flagship users (paper: +121%%)\n\n",
		res.RQ1.SingleVsLargest.StatusBoost*100)

	fmt.Println("RQ2 — social network influence:")
	fmt.Printf("  %s of a user's followees also migrate (paper: 5.99%%)\n",
		stats.Percent(res.Contagion.MeanFracMigrated))
	fmt.Printf("  %s of migrating followees pick the same instance (paper: 14.72%%)\n",
		stats.Percent(res.Contagion.MeanFracSameInstance))
	fmt.Printf("  %s of users switch instance, %s of them after the takeover (paper: 4.09%%, 97.22%%)\n\n",
		stats.Percent(res.Switching.SwitcherFrac), stats.Percent(res.Switching.PostTakeoverFrac))

	fmt.Println("RQ3 — usage across both platforms:")
	fmt.Printf("  identical cross-platform posts: %s of statuses per user (paper: 1.53%%)\n",
		stats.Percent(res.Overlap.MeanIdentical))
	fmt.Printf("  toxicity: %s of tweets vs %s of statuses (paper: 5.49%% vs 2.80%%)\n\n",
		stats.Percent(res.Toxicity.OverallTweetToxic), stats.Percent(res.Toxicity.OverallStatusToxic))

	fmt.Println(report.Summary(res))
}
