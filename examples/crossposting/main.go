// Crossposting: the RQ3 deep-dive (§6, Figs. 11-16). Cross-platform
// posting behaviour: daily activity, bridge tools, content similarity,
// hashtags and toxicity, plus a threshold-sensitivity sweep over the
// similarity cutoff (the paper uses cosine >= 0.7).
//
//	go run ./examples/crossposting
package main

import (
	"context"
	"fmt"
	"log"

	"flock/internal/analysis"
	"flock/internal/core"
	"flock/internal/report"
	"flock/internal/stats"
	"flock/internal/toxsvc"
)

func main() {
	cfg := core.DefaultConfig(400)
	cfg.World.Seed = 17
	cfg.ScoreToxicity = false

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Fig11Daily(res.Daily))
	fmt.Println()
	fmt.Print(report.Fig12Sources(res.Sources))
	fmt.Println()
	fmt.Print(report.Fig13Crossposters(res.Sources))
	fmt.Println()
	fmt.Print(report.Fig14Overlap(res.Overlap))
	fmt.Println()
	fmt.Print(report.Fig16Toxicity(res.Toxicity))
	fmt.Println()

	// Sensitivity: how do the Fig. 14 results move with the similarity
	// threshold? (§6.1 uses 0.7; lower thresholds admit more pairs.)
	fmt.Println("similarity threshold sweep (Fig. 14 sensitivity):")
	for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		o := analysis.RQ3Overlap(res.Dataset, analysis.OverlapOptions{Threshold: th})
		fmt.Printf("  cos>=%.1f  similar mean %-8s completely different %s\n",
			th, stats.Percent(o.MeanSimilar), stats.Percent(o.CompletelyDifferentFrac))
	}

	// Toxicity threshold sensitivity (§6.3 discusses 0.5 vs 0.8). The
	// crawl above did not score posts, so score locally with the same
	// model the Perspective-style service uses.
	fmt.Println("toxicity threshold sweep (Fig. 16 sensitivity):")
	for _, th := range []float64{0.5, 0.8} {
		x := analysis.RQ3Toxicity(res.Dataset, analysis.ToxicityOptions{
			Threshold: th,
			ScoreFn:   toxsvc.Score,
		})
		fmt.Printf("  tox>%.1f  tweets %-8s statuses %s\n",
			th, stats.Percent(x.OverallTweetToxic), stats.Percent(x.OverallStatusToxic))
	}
}
