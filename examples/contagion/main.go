// Contagion: the RQ2 deep-dive (§5, Figs. 8-10). Shows the ego-network
// influence on migration and instance switching, and quantifies the
// contagion signal by comparing migrated-followee rates against the
// population base rate.
//
//	go run ./examples/contagion
package main

import (
	"context"
	"fmt"
	"log"

	"flock/internal/core"
	"flock/internal/report"
	"flock/internal/stats"
)

func main() {
	cfg := core.DefaultConfig(600)
	cfg.World.Seed = 5
	cfg.ScoreToxicity = false

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Fig7Networks(res.Networks))
	fmt.Println()
	fmt.Print(report.Fig8Contagion(res.Contagion))
	fmt.Println()
	fmt.Print(report.Fig9Chord(res.Switching))
	fmt.Println()
	fmt.Print(report.Fig10SwitchInfluence(res.Switching))
	fmt.Println()

	// The contagion signal: migrants' ego networks migrate at a higher
	// rate than the population at large. A followee only counts as
	// migrated if the crawl *mapped* them, so the measured rate is a
	// lower bound (the paper's 5.99% has the same property); compare
	// against the base rate scaled by mapping recall.
	trueBase := 1.0 / float64(res.World.Cfg.PopulationFactor)
	recall := float64(res.Coverage.Pairs) / float64(len(res.World.Migrants))
	base := trueBase * recall
	lift := res.Contagion.MeanFracMigrated / base
	fmt.Println("contagion lift:")
	fmt.Printf("  mappable-population migration rate ~%s, followee rate %s -> lift %.2fx\n",
		stats.Percent(base), stats.Percent(res.Contagion.MeanFracMigrated), lift)
	fmt.Printf("  switchers follow their network: %s of their followees were already on\n",
		stats.Percent(res.Switching.MeanFracSecondBefore))
	fmt.Println("  the destination instance before they switched (paper: 77.42%)")
}
