// Centralization: the RQ1 deep-dive (§4, Figs. 4-6). Runs the pipeline,
// prints the top-instance histogram, the top-share curve and the
// instance-size quantile CDFs, and demonstrates driving the analysis
// layer directly for a custom question: how concentrated would the
// fediverse be if mastodon.social did not exist?
//
//	go run ./examples/centralization
package main

import (
	"context"
	"fmt"
	"log"

	"flock/internal/analysis"
	"flock/internal/core"
	"flock/internal/crawler"
	"flock/internal/report"
	"flock/internal/stats"
)

func main() {
	cfg := core.DefaultConfig(600)
	cfg.World.Seed = 11
	cfg.ScoreToxicity = false

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Fig4TopInstances(res.RQ1))
	fmt.Println()
	fmt.Print(report.Fig5TopShare(res.RQ1))
	fmt.Println()
	fmt.Print(report.Fig6SizeQuantiles(res.RQ1))
	fmt.Println()

	// Custom question: drop mastodon.social from the dataset and re-run
	// the RQ1 analysis — the "what if the flagship didn't exist"
	// counterfactual.
	ds := res.Dataset
	counter := crawler.NewDataset()
	counter.Instances = ds.Instances
	for i := range ds.Pairs {
		if ds.Pairs[i].FinalDomain() == "mastodon.social" {
			continue
		}
		counter.Pairs = append(counter.Pairs, ds.Pairs[i])
	}
	alt := analysis.RQ1(counter)
	fmt.Println("counterfactual: without mastodon.social")
	fmt.Printf("  users kept: %d of %d\n", len(counter.Pairs), len(ds.Pairs))
	fmt.Printf("  top-25%% share: %s (with flagship: %s)\n",
		stats.Percent(alt.Top25Share), stats.Percent(res.RQ1.Top25Share))
	fmt.Printf("  gini: %.3f (with flagship: %.3f)\n", alt.Gini, res.RQ1.Gini)
}
