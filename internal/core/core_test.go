package core

import (
	"context"
	"math"
	"testing"

	"flock/internal/crawler"
	"flock/internal/vclock"
)

// sharedResult runs the full pipeline once on a mid-size world; every
// test below checks one paper statistic against it.
var sharedResult *Result

func pipeline(t testing.TB) *Result {
	if sharedResult != nil {
		return sharedResult
	}
	cfg := DefaultConfig(600)
	cfg.World.Seed = 7
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharedResult = res
	return res
}

// within asserts |got-want| <= tol, with a paper-style message.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, paper %.4f (tolerance %.4f)", name, got, want, tol)
	}
}

func TestPipelineRuns(t *testing.T) {
	res := pipeline(t)
	if res.Coverage.Pairs < 300 {
		t.Fatalf("only %d pairs", res.Coverage.Pairs)
	}
	if res.World == nil || res.Dataset == nil {
		t.Fatal("result incomplete")
	}
}

func TestCoverageTaxonomy(t *testing.T) {
	// §3.2: 94.88% Twitter timelines; 79.22% Mastodon; 11.58% down.
	res := pipeline(t)
	cov := res.Coverage
	twOK := float64(cov.TwitterOK) / float64(cov.Pairs)
	if twOK < 0.90 {
		t.Errorf("twitter coverage %.4f, paper 0.9488", twOK)
	}
	msOK := float64(cov.MastodonOK) / float64(cov.Pairs)
	within(t, "mastodon coverage", msOK, 0.7922, 0.12)
	down := float64(cov.MastodonDown) / float64(cov.Pairs)
	within(t, "instance-down share", down, 0.1158, 0.06)
	silent := float64(cov.MastodonSilent) / float64(cov.Pairs)
	within(t, "no-statuses share", silent, 0.092, 0.05)
}

func TestRQ1Centralization(t *testing.T) {
	res := pipeline(t)
	// Paper: top 25% of instances hold 96% of users. Scaled-down worlds
	// flatten the extreme tail, so allow a wider band.
	if res.RQ1.Top25Share < 0.85 {
		t.Errorf("top-25%% share %.4f, paper 0.96", res.RQ1.Top25Share)
	}
	within(t, "pre-takeover accounts", res.RQ1.PreTakeoverAccountFrac, 0.21, 0.10)
	within(t, "same-username", res.RQ1.SameUsernameFrac, 0.72, 0.06)
	within(t, "verified", res.RQ1.VerifiedFrac, 0.04, 0.03)
	within(t, "single-user instances", res.RQ1.SingleUserInstanceFrac, 0.1316, 0.10)
	if len(res.RQ1.TopInstances) == 0 || res.RQ1.TopInstances[0].Domain != "mastodon.social" {
		t.Errorf("largest instance: %+v", res.RQ1.TopInstances[:1])
	}
}

func TestRQ1ActivityParadox(t *testing.T) {
	// Paper: single-user-instance users post 121% more, +64.88%
	// followers, +99.04% followees. Direction and rough scale must hold.
	res := pipeline(t)
	if len(res.RQ1.Buckets) < 2 {
		t.Skip("no size buckets")
	}
	b := res.RQ1.SingleVsLargest
	if b.StatusBoost <= 0.2 {
		t.Errorf("status boost %.4f, paper 1.21", b.StatusBoost)
	}
	if b.FollowerBoost <= 0 {
		t.Errorf("follower boost %.4f, paper 0.6488", b.FollowerBoost)
	}
	if b.FolloweeBoost <= 0 {
		t.Errorf("followee boost %.4f, paper 0.9904", b.FolloweeBoost)
	}
}

func TestFig7NetworkSizes(t *testing.T) {
	res := pipeline(t)
	n := res.Networks
	// Degrees are scaled: the preserved quantity is the Mastodon/Twitter
	// ratio, which the paper has at 38/744 ~= 5% and 48/787 ~= 6%.
	if n.MedianTwitterFollowees <= 0 {
		t.Fatal("no twitter followees")
	}
	ratio := n.MedianMastodonFollowees / n.MedianTwitterFollowees
	if ratio <= 0.01 || ratio >= 0.6 {
		t.Errorf("mastodon/twitter followee median ratio %.4f, paper ~0.06", ratio)
	}
	if n.MedianMastodonFollowers >= n.MedianTwitterFollowers {
		t.Error("mastodon follower median not smaller than twitter")
	}
	// Zero-follower shares: Mastodon higher than Twitter (6.01% vs 0.11%).
	if n.NoMastodonFollowersFrac <= n.NoTwitterFollowersFrac {
		t.Errorf("no-follower fractions: mastodon %.4f vs twitter %.4f",
			n.NoMastodonFollowersFrac, n.NoTwitterFollowersFrac)
	}
}

func TestFig8Contagion(t *testing.T) {
	res := pipeline(t)
	c := res.Contagion
	if c.SampleSize == 0 {
		t.Fatal("empty followee sample")
	}
	// Paper: mean 5.99% of followees migrate. Our worlds have a higher
	// migrant base rate (1/PopulationFactor = 12.5%), so the comparable
	// check is: the mean fraction must exceed the base rate (contagion)
	// but stay a small minority.
	if c.MeanFracMigrated < 0.05 || c.MeanFracMigrated > 0.5 {
		t.Errorf("mean migrated-followee fraction %.4f", c.MeanFracMigrated)
	}
	// Paper: 45.76% of migrating followees moved before the user.
	within(t, "followees-before mean", c.MeanFracBefore, 0.4576, 0.20)
	// Paper: 14.72% joined the same instance.
	if c.MeanFracSameInstance < 0.05 || c.MeanFracSameInstance > 0.5 {
		t.Errorf("same-instance mean %.4f, paper 0.1472", c.MeanFracSameInstance)
	}
	// Paper: 30.68% of co-location is on mastodon.social.
	if c.MastodonSocialShareOfSame < 0.10 {
		t.Errorf("mastodon.social share of co-location %.4f, paper 0.3068", c.MastodonSocialShareOfSame)
	}
	// First/last movers exist on both ends (paper: 4.98% / 4.58%).
	if c.UserFirstFrac <= 0 {
		t.Error("no first movers in sample")
	}
}

func TestFig910Switching(t *testing.T) {
	res := pipeline(t)
	s := res.Switching
	within(t, "switcher share", s.SwitcherFrac, 0.0409, 0.025)
	if s.Switchers > 0 {
		if s.PostTakeoverFrac < 0.80 {
			t.Errorf("post-takeover switch share %.4f, paper 0.9722", s.PostTakeoverFrac)
		}
		if s.Chord.Total() != s.Switchers {
			t.Errorf("chord total %d != switchers %d", s.Chord.Total(), s.Switchers)
		}
	}
	if s.SwitchersWithEgo > 0 {
		// Paper: followees at second instance (46.98%) >> first (11.4%).
		if s.MeanFracSecond <= s.MeanFracFirst {
			t.Errorf("switch network effect missing: second %.4f <= first %.4f",
				s.MeanFracSecond, s.MeanFracFirst)
		}
		// Paper: 77.42% of followees reached the second instance first.
		if s.MeanFracSecondBefore < 0.4 {
			t.Errorf("followees-before-switch %.4f, paper 0.7742", s.MeanFracSecondBefore)
		}
	}
}

func TestFig11DailyActivity(t *testing.T) {
	res := pipeline(t)
	d := res.Daily
	takeover := vclock.Day(vclock.Takeover)
	var preS, postS int
	for i := 0; i < takeover; i++ {
		preS += d.Statuses[i]
	}
	for i := takeover; i < len(d.Statuses); i++ {
		postS += d.Statuses[i]
	}
	if postS <= preS*2 {
		t.Errorf("mastodon growth missing: pre %d post %d", preS, postS)
	}
	// Twitter activity does NOT collapse (paper's key Fig. 11 point).
	var preT, postT int
	for i := 0; i < takeover; i++ {
		preT += d.Tweets[i]
	}
	for i := takeover; i < len(d.Tweets); i++ {
		postT += d.Tweets[i]
	}
	perDayPre := float64(preT) / float64(takeover)
	perDayPost := float64(postT) / float64(len(d.Tweets)-takeover)
	if perDayPost < perDayPre*0.7 {
		t.Errorf("twitter activity collapsed: %.1f -> %.1f per day", perDayPre, perDayPost)
	}
}

func TestFig1213Crossposting(t *testing.T) {
	res := pipeline(t)
	s := res.Sources
	within(t, "crossposter users", s.CrossposterUserFrac, 0.0573, 0.03)
	if len(s.Top30) == 0 || s.Top30[0].Name != "Twitter Web App" {
		t.Errorf("top source: %+v", s.Top30[:1])
	}
	// Bridges grow enormously post-takeover (paper: ~11x and ~17x).
	for name, growth := range s.CrossposterGrowth {
		if growth < 2 {
			t.Errorf("bridge %s growth %.2f, paper >11x", name, growth)
		}
	}
	// Fig. 13: daily bridge users ramp after the takeover.
	takeover := vclock.Day(vclock.Takeover)
	pre, post := 0, 0
	for d, n := range s.DailyCrossposterUsers {
		if d < takeover {
			pre += n
		} else {
			post += n
		}
	}
	if post <= pre {
		t.Errorf("crossposter usage did not ramp: pre %d post %d", pre, post)
	}
}

func TestFig14ContentOverlap(t *testing.T) {
	res := pipeline(t)
	o := res.Overlap
	if o.UsersCompared == 0 {
		t.Fatal("no users compared")
	}
	within(t, "identical fraction mean", o.MeanIdentical, 0.0153, 0.025)
	// Paper: 16.57% similar on average; 84.45% post completely
	// different content.
	if o.MeanSimilar < 0.02 || o.MeanSimilar > 0.35 {
		t.Errorf("similar fraction mean %.4f, paper 0.1657", o.MeanSimilar)
	}
	if o.CompletelyDifferentFrac < 0.5 {
		t.Errorf("completely-different %.4f, paper 0.8445", o.CompletelyDifferentFrac)
	}
	if o.MeanIdentical >= o.MeanSimilar {
		t.Error("identical >= similar, impossible by construction")
	}
}

func TestFig15Hashtags(t *testing.T) {
	res := pipeline(t)
	h := res.Hashtags
	if len(h.Twitter) == 0 || len(h.Mastodon) == 0 {
		t.Fatal("empty hashtag tables")
	}
	// Mastodon is dominated by fediverse/migration tags.
	mTop := map[string]bool{}
	for i, row := range h.Mastodon {
		if i < 5 {
			mTop[row.Key] = true
		}
	}
	if !mTop["#fediverse"] && !mTop["#twittermigration"] && !mTop["#mastodon"] {
		t.Errorf("mastodon top-5 lacks migration tags: %v", h.Mastodon[:5])
	}
	// Twitter's table is more diverse: migration/fediverse tags must NOT
	// dominate its top 10.
	migTags := map[string]bool{
		"#fediverse": true, "#mastodon": true, "#twittermigration": true,
		"#mastodonmigration": true, "#byebyetwitter": true, "#goodbyetwitter": true,
		"#riptwitter": true, "#mastodonsocial": true, "#activitypub": true, "#newhere": true,
	}
	mig := 0
	for i, row := range h.Twitter {
		if i >= 10 {
			break
		}
		if migTags[row.Key] {
			mig++
		}
	}
	if mig > 5 {
		t.Errorf("twitter top-10 dominated by migration tags (%d/10): %v", mig, h.Twitter[:10])
	}
}

func TestFig16Toxicity(t *testing.T) {
	res := pipeline(t)
	x := res.Toxicity
	if x.ScoredTweets == 0 || x.ScoredStatuses == 0 {
		t.Fatal("nothing scored")
	}
	within(t, "overall tweet toxicity", x.OverallTweetToxic, 0.0549, 0.035)
	within(t, "overall status toxicity", x.OverallStatusToxic, 0.028, 0.025)
	if x.OverallStatusToxic >= x.OverallTweetToxic {
		t.Error("mastodon not less toxic than twitter")
	}
	within(t, "mean user tweet toxicity", x.MeanUserTweetToxic, 0.0402, 0.03)
	if x.BothPlatformsFrac <= 0 || x.BothPlatformsFrac > 0.5 {
		t.Errorf("both-platforms toxic %.4f, paper 0.1426", x.BothPlatformsFrac)
	}
}

func TestFig2Collection(t *testing.T) {
	res := pipeline(t)
	c := res.Collection
	takeover := vclock.Day(vclock.Takeover)
	pre, post := 0, 0
	for d := 0; d < len(c.Keywords); d++ {
		total := c.Keywords[d] + c.InstanceLinks[d]
		if d < takeover {
			pre += total
		} else {
			post += total
		}
	}
	if post <= pre {
		t.Errorf("collection spike missing: pre %d post %d", pre, post)
	}
}

func TestFig3ActivityAggregate(t *testing.T) {
	res := pipeline(t)
	a := res.Activity
	if len(a.Weeks) < 6 {
		t.Fatalf("only %d weeks", len(a.Weeks))
	}
	first, last := a.Registrations[0], a.Registrations[len(a.Registrations)-2]
	if last <= first {
		t.Errorf("registrations did not grow: first week %d, late week %d", first, last)
	}
}

func TestAnalyzeWithoutCrawlToxicity(t *testing.T) {
	// The local-scoring fallback path (ScoreToxicity=false).
	res := pipeline(t)
	cfg := DefaultConfig(0)
	cfg.ScoreToxicity = false
	res2 := Analyze(stripScores(res.Dataset), cfg)
	if res2.Toxicity.ScoredTweets == 0 {
		t.Fatal("local scoring fallback did not run")
	}
}

// stripScores deep-copies the dataset with toxicity scores removed.
func stripScores(ds *crawler.Dataset) *crawler.Dataset {
	out := *ds
	out.TwitterTimelines = map[string]*crawler.TwitterTimeline{}
	for id, tl := range ds.TwitterTimelines {
		cp := &crawler.TwitterTimeline{State: tl.State, Posts: append([]crawler.Post(nil), tl.Posts...)}
		for i := range cp.Posts {
			cp.Posts[i].Toxicity = -1
		}
		out.TwitterTimelines[id] = cp
	}
	out.MastodonTimelines = map[string]*crawler.MastodonTimeline{}
	for id, tl := range ds.MastodonTimelines {
		cp := &crawler.MastodonTimeline{State: tl.State, Posts: append([]crawler.Post(nil), tl.Posts...)}
		for i := range cp.Posts {
			cp.Posts[i].Toxicity = -1
		}
		out.MastodonTimelines[id] = cp
	}
	return &out
}
