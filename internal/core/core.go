// Package core wires the whole reproduction together: it generates a
// synthetic world, serves the simulated platforms over an in-memory
// network, runs the paper's crawl methodology against them, and computes
// every analysis in the evaluation. It is the public entry point used by
// the cmd tools, the examples and the benchmark harness.
//
// The one-call form:
//
//	res, err := core.Run(ctx, core.DefaultConfig(2000))
//
// gives a Result with the dataset and all figure-level analyses. For
// finer control (e.g. keeping the services alive to poke at them), use
// NewEnv + Env.Crawl + Analyze.
package core

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"flock/internal/analysis"
	"flock/internal/birdsite"
	"flock/internal/crawler"
	"flock/internal/fediverse"
	"flock/internal/httpkit"
	"flock/internal/indexsvc"
	"flock/internal/memnet"
	"flock/internal/parallel"
	"flock/internal/textsim"
	"flock/internal/toxsvc"
	"flock/internal/world"
)

// Config parameterizes a full pipeline run.
type Config struct {
	// World is the generative model configuration.
	World world.Config
	// Concurrency bounds the crawler's parallel fetches.
	Concurrency int
	// MaxSearchPages caps search pagination (0 = unlimited).
	MaxSearchPages int
	// ScoreToxicity runs the §6.3 Perspective pass over every post
	// during the crawl (HTTP per post; the faithful but slower path).
	ScoreToxicity bool
	// ApplyOutages takes the world's down instances offline between
	// mapping and timeline crawl, reproducing §3.2's 11.58% failure.
	ApplyOutages bool
	// OverlapMaxUsers caps the (quadratic) Fig. 14 comparison
	// (0 = all users).
	OverlapMaxUsers int
	// AnalysisWorkers bounds the analysis engine's worker pool
	// (<= 0: GOMAXPROCS). Results are byte-identical at any setting; the
	// knob only trades wall-clock for cores.
	AnalysisWorkers int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Hedge enables tail-latency hedging on the crawl's shared HTTP
	// client (zero value: off).
	Hedge httpkit.HedgePolicy
	// Adaptive sizes per-host concurrency windows from the crawl's
	// health taxonomy (zero value: global bound only).
	Adaptive crawler.AdaptivePolicy
}

// DefaultConfig returns a pipeline config for a world of nMigrants.
func DefaultConfig(nMigrants int) Config {
	return Config{
		World:         world.DefaultConfig(nMigrants),
		Concurrency:   8,
		ScoreToxicity: true,
		ApplyOutages:  true,
	}
}

// Env is a running simulated internet: world + services on a fabric.
type Env struct {
	World  *world.World
	Fabric *memnet.Fabric
	Fedi   *fediverse.Service
	Client *http.Client
	stops  []func()
}

// NewEnv generates the world and brings every service up. ctx is the
// parent lifecycle for service shutdown (see memnet.Fabric.Serve).
func NewEnv(ctx context.Context, cfg world.Config) (*Env, error) {
	w, err := world.Generate(cfg)
	if err != nil {
		return nil, err
	}
	fab := memnet.NewFabric()
	env := &Env{World: w, Fabric: fab, Client: fab.Client()}
	serve := func(host string, h http.Handler) error {
		stop, err := fab.Serve(ctx, host, h)
		if err != nil {
			return err
		}
		env.stops = append(env.stops, stop)
		return nil
	}
	if err := serve(birdsite.Host, birdsite.New(w).Handler()); err != nil {
		return nil, err
	}
	if err := serve(indexsvc.Host, indexsvc.New(w).Handler()); err != nil {
		return nil, err
	}
	if err := serve(toxsvc.Host, toxsvc.New(0).Handler()); err != nil {
		return nil, err
	}
	env.Fedi = fediverse.New(w)
	stop, err := env.Fedi.RegisterAll(ctx, fab)
	if err != nil {
		return nil, err
	}
	env.stops = append(env.stops, stop)
	return env, nil
}

// Close shuts every service down.
func (e *Env) Close() {
	for _, stop := range e.stops {
		stop()
	}
	e.Fabric.Close()
}

// Crawl runs the paper's §3 methodology against the environment.
func (e *Env) Crawl(ctx context.Context, cfg Config) (*crawler.Dataset, error) {
	c := crawler.New(crawler.Config{
		TwitterBase:     "https://" + birdsite.Host,
		IndexBase:       "https://" + indexsvc.Host,
		PerspectiveBase: "https://" + toxsvc.Host,
		Transport: crawler.Transport{
			HTTP:        e.Client,
			Concurrency: cfg.Concurrency,
			Hedge:       cfg.Hedge,
			Adaptive:    cfg.Adaptive,
		},
		MaxSearchPages: cfg.MaxSearchPages,
		ScoreToxicity:  cfg.ScoreToxicity,
		Logf:           cfg.Logf,
		BeforeTimelines: func() {
			if !cfg.ApplyOutages {
				return
			}
			e.Fedi.ApplyOutages(e.Fabric)
			// Outages only affect new dials; drop pooled connections the
			// way hours of real wall-clock time would.
			if tr, ok := e.Client.Transport.(*http.Transport); ok {
				tr.CloseIdleConnections()
			}
		},
	})
	return c.Run(ctx)
}

// Result bundles the dataset with every analysis in the evaluation.
type Result struct {
	World    *world.World
	Dataset  *crawler.Dataset
	Coverage crawler.CoverageStats

	RQ1        *analysis.Centralization   // Figs. 4-6
	Networks   *analysis.NetworkSizes     // Fig. 7
	Contagion  *analysis.Contagion        // Fig. 8
	Switching  *analysis.Switching        // Figs. 9-10
	Daily      *analysis.DailyActivity    // Fig. 11
	Sources    *analysis.Sources          // Figs. 12-13
	Overlap    *analysis.Overlap          // Fig. 14
	Hashtags   *analysis.HashtagTables    // Fig. 15
	Toxicity   *analysis.ToxicityResult   // Fig. 16
	Collection *analysis.CollectionSeries // Fig. 2
	Activity   *analysis.ActivitySeries   // Fig. 3
	Retention  *analysis.RetentionResult  // §8 future-work extension
}

// Analyze computes every analysis over a crawled dataset.
func Analyze(ds *crawler.Dataset, cfg Config) *Result {
	var scoreFn func(string) float64
	if !cfg.ScoreToxicity {
		// Posts were not scored during the crawl; fall back to scoring
		// locally with the same model the service uses.
		scoreFn = toxsvc.Score
	}
	// One engine (and one embedding cache) across all analyses: the
	// Fig. 14 texts recur between passes, so the cache pays off here.
	eng := analysis.Engine{Workers: cfg.AnalysisWorkers, Cache: textsim.NewCache()}
	res := &Result{Dataset: ds, Coverage: ds.Coverage()}
	// Each pass runs under a timer so cfg.Logf (cmd/figures -workers)
	// can report where analysis wall-clock goes.
	timed := func(name string, fn func()) {
		start := time.Now()
		fn()
		if cfg.Logf != nil {
			cfg.Logf("analysis %-10s %8s (workers=%d)", name, time.Since(start).Round(time.Microsecond), parallel.Workers(cfg.AnalysisWorkers))
		}
	}
	timed("rq1", func() { res.RQ1 = eng.RQ1(ds) })
	timed("networks", func() { res.Networks = eng.SocialNetworkSizes(ds) })
	timed("contagion", func() { res.Contagion = eng.RQ2Contagion(ds) })
	timed("switching", func() { res.Switching = eng.RQ2Switching(ds) })
	timed("daily", func() { res.Daily = eng.Timelines(ds) })
	timed("sources", func() { res.Sources = eng.RQ3Sources(ds) })
	timed("overlap", func() {
		res.Overlap = eng.RQ3Overlap(ds, analysis.OverlapOptions{MaxUsers: cfg.OverlapMaxUsers})
	})
	timed("hashtags", func() { res.Hashtags = eng.RQ3Hashtags(ds) })
	timed("toxicity", func() {
		res.Toxicity = eng.RQ3Toxicity(ds, analysis.ToxicityOptions{ScoreFn: scoreFn})
	})
	timed("collection", func() { res.Collection = eng.CollectionFigure(ds) })
	timed("activity", func() { res.Activity = eng.ActivityFigure(ds) })
	timed("retention", func() { res.Retention = eng.RQ4Retention(ds) })
	return res
}

// Run executes the full pipeline: world, services, crawl, analyses.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	env, err := NewEnv(ctx, cfg.World)
	if err != nil {
		return nil, fmt.Errorf("core: environment: %w", err)
	}
	defer env.Close()
	ds, err := env.Crawl(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: crawl: %w", err)
	}
	res := Analyze(ds, cfg)
	res.World = env.World
	return res, nil
}
