// Package core wires the whole reproduction together: it generates a
// synthetic world, serves the simulated platforms over an in-memory
// network, runs the paper's crawl methodology against them, and computes
// every analysis in the evaluation. It is the public entry point used by
// the cmd tools, the examples and the benchmark harness.
//
// The one-call form:
//
//	res, err := core.Run(ctx, core.DefaultConfig(2000))
//
// gives a Result with the dataset and all figure-level analyses. For
// finer control (e.g. keeping the services alive to poke at them), use
// NewEnv + Env.Crawl + Analyze.
package core

import (
	"context"
	"fmt"
	"net/http"

	"flock/internal/analysis"
	"flock/internal/birdsite"
	"flock/internal/crawler"
	"flock/internal/fediverse"
	"flock/internal/httpkit"
	"flock/internal/indexsvc"
	"flock/internal/memnet"
	"flock/internal/toxsvc"
	"flock/internal/world"
)

// Config parameterizes a full pipeline run.
type Config struct {
	// World is the generative model configuration.
	World world.Config
	// Concurrency bounds the crawler's parallel fetches.
	Concurrency int
	// MaxSearchPages caps search pagination (0 = unlimited).
	MaxSearchPages int
	// ScoreToxicity runs the §6.3 Perspective pass over every post
	// during the crawl (HTTP per post; the faithful but slower path).
	ScoreToxicity bool
	// ApplyOutages takes the world's down instances offline between
	// mapping and timeline crawl, reproducing §3.2's 11.58% failure.
	ApplyOutages bool
	// OverlapMaxUsers caps the (quadratic) Fig. 14 comparison
	// (0 = all users).
	OverlapMaxUsers int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Hedge enables tail-latency hedging on the crawl's shared HTTP
	// client (zero value: off).
	Hedge httpkit.HedgePolicy
	// Adaptive sizes per-host concurrency windows from the crawl's
	// health taxonomy (zero value: global bound only).
	Adaptive crawler.AdaptivePolicy
}

// DefaultConfig returns a pipeline config for a world of nMigrants.
func DefaultConfig(nMigrants int) Config {
	return Config{
		World:         world.DefaultConfig(nMigrants),
		Concurrency:   8,
		ScoreToxicity: true,
		ApplyOutages:  true,
	}
}

// Env is a running simulated internet: world + services on a fabric.
type Env struct {
	World  *world.World
	Fabric *memnet.Fabric
	Fedi   *fediverse.Service
	Client *http.Client
	stops  []func()
}

// NewEnv generates the world and brings every service up. ctx is the
// parent lifecycle for service shutdown (see memnet.Fabric.Serve).
func NewEnv(ctx context.Context, cfg world.Config) (*Env, error) {
	w, err := world.Generate(cfg)
	if err != nil {
		return nil, err
	}
	fab := memnet.NewFabric()
	env := &Env{World: w, Fabric: fab, Client: fab.Client()}
	serve := func(host string, h http.Handler) error {
		stop, err := fab.Serve(ctx, host, h)
		if err != nil {
			return err
		}
		env.stops = append(env.stops, stop)
		return nil
	}
	if err := serve(birdsite.Host, birdsite.New(w).Handler()); err != nil {
		return nil, err
	}
	if err := serve(indexsvc.Host, indexsvc.New(w).Handler()); err != nil {
		return nil, err
	}
	if err := serve(toxsvc.Host, toxsvc.New(0).Handler()); err != nil {
		return nil, err
	}
	env.Fedi = fediverse.New(w)
	stop, err := env.Fedi.RegisterAll(ctx, fab)
	if err != nil {
		return nil, err
	}
	env.stops = append(env.stops, stop)
	return env, nil
}

// Close shuts every service down.
func (e *Env) Close() {
	for _, stop := range e.stops {
		stop()
	}
	e.Fabric.Close()
}

// Crawl runs the paper's §3 methodology against the environment.
func (e *Env) Crawl(ctx context.Context, cfg Config) (*crawler.Dataset, error) {
	c := crawler.New(crawler.Config{
		TwitterBase:     "https://" + birdsite.Host,
		IndexBase:       "https://" + indexsvc.Host,
		PerspectiveBase: "https://" + toxsvc.Host,
		Transport: crawler.Transport{
			HTTP:        e.Client,
			Concurrency: cfg.Concurrency,
			Hedge:       cfg.Hedge,
			Adaptive:    cfg.Adaptive,
		},
		MaxSearchPages: cfg.MaxSearchPages,
		ScoreToxicity:  cfg.ScoreToxicity,
		Logf:           cfg.Logf,
		BeforeTimelines: func() {
			if !cfg.ApplyOutages {
				return
			}
			e.Fedi.ApplyOutages(e.Fabric)
			// Outages only affect new dials; drop pooled connections the
			// way hours of real wall-clock time would.
			if tr, ok := e.Client.Transport.(*http.Transport); ok {
				tr.CloseIdleConnections()
			}
		},
	})
	return c.Run(ctx)
}

// Result bundles the dataset with every analysis in the evaluation.
type Result struct {
	World    *world.World
	Dataset  *crawler.Dataset
	Coverage crawler.CoverageStats

	RQ1        *analysis.Centralization   // Figs. 4-6
	Networks   *analysis.NetworkSizes     // Fig. 7
	Contagion  *analysis.Contagion        // Fig. 8
	Switching  *analysis.Switching        // Figs. 9-10
	Daily      *analysis.DailyActivity    // Fig. 11
	Sources    *analysis.Sources          // Figs. 12-13
	Overlap    *analysis.Overlap          // Fig. 14
	Hashtags   *analysis.HashtagTables    // Fig. 15
	Toxicity   *analysis.ToxicityResult   // Fig. 16
	Collection *analysis.CollectionSeries // Fig. 2
	Activity   *analysis.ActivitySeries   // Fig. 3
	Retention  *analysis.RetentionResult  // §8 future-work extension
}

// Analyze computes every analysis over a crawled dataset.
func Analyze(ds *crawler.Dataset, cfg Config) *Result {
	var scoreFn func(string) float64
	if !cfg.ScoreToxicity {
		// Posts were not scored during the crawl; fall back to scoring
		// locally with the same model the service uses.
		scoreFn = toxsvc.Score
	}
	return &Result{
		Dataset:    ds,
		Coverage:   ds.Coverage(),
		RQ1:        analysis.RQ1(ds),
		Networks:   analysis.SocialNetworkSizes(ds),
		Contagion:  analysis.RQ2Contagion(ds),
		Switching:  analysis.RQ2Switching(ds),
		Daily:      analysis.Timelines(ds),
		Sources:    analysis.RQ3Sources(ds),
		Overlap:    analysis.RQ3Overlap(ds, analysis.OverlapOptions{MaxUsers: cfg.OverlapMaxUsers}),
		Hashtags:   analysis.RQ3Hashtags(ds),
		Toxicity:   analysis.RQ3Toxicity(ds, analysis.ToxicityOptions{ScoreFn: scoreFn}),
		Collection: analysis.CollectionFigure(ds),
		Activity:   analysis.ActivityFigure(ds),
		Retention:  analysis.RQ4Retention(ds),
	}
}

// Run executes the full pipeline: world, services, crawl, analyses.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	env, err := NewEnv(ctx, cfg.World)
	if err != nil {
		return nil, fmt.Errorf("core: environment: %w", err)
	}
	defer env.Close()
	ds, err := env.Crawl(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: crawl: %w", err)
	}
	res := Analyze(ds, cfg)
	res.World = env.World
	return res, nil
}
