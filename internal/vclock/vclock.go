// Package vclock anchors the simulation to the paper's study window.
//
// The paper measures activity between 2022-10-01 and 2022-11-30 and keys
// several analyses to dated events (Musk's takeover on 2022-10-27, the
// layoffs on 2022-11-04, the "extremely hardcore" ultimatum on
// 2022-11-17). vclock provides those anchors, day/week bucketing in UTC,
// and a Clock type the simulated services use instead of time.Now so that
// the entire universe is replayable at any speed.
package vclock

import (
	"fmt"
	"time"
)

// Event dates from the paper, all midnight UTC.
var (
	// StudyStart is the first day of timeline collection (§3.2).
	StudyStart = time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC)
	// CollectionStart is the first day of tweet collection, "a day before
	// Musk's takeover" (§3.1).
	CollectionStart = time.Date(2022, 10, 26, 0, 0, 0, 0, time.UTC)
	// Takeover is the acquisition date (Musk closed on 2022-10-27).
	Takeover = time.Date(2022, 10, 27, 0, 0, 0, 0, time.UTC)
	// Layoffs is the day half of Twitter's staff was fired.
	Layoffs = time.Date(2022, 11, 4, 0, 0, 0, 0, time.UTC)
	// Ultimatum is the "extremely hardcore" resignation wave.
	Ultimatum = time.Date(2022, 11, 17, 0, 0, 0, 0, time.UTC)
	// CollectionEnd is the last day of tweet collection (§3.1).
	CollectionEnd = time.Date(2022, 11, 21, 0, 0, 0, 0, time.UTC)
	// StudyEnd is the last day of timeline collection (§3.2), inclusive.
	StudyEnd = time.Date(2022, 11, 30, 0, 0, 0, 0, time.UTC)
	// CrawlTime is the notional moment the crawl itself runs, shortly
	// after the study window.
	CrawlTime = time.Date(2022, 12, 15, 12, 0, 0, 0, time.UTC)
)

// StudyDays is the number of days in [StudyStart, StudyEnd].
const StudyDays = 61

// Day returns the number of whole days from StudyStart to t. It may be
// negative for times before the window.
func Day(t time.Time) int {
	return int(t.Sub(StudyStart) / (24 * time.Hour))
}

// DayStart returns midnight UTC of day d of the study window.
func DayStart(d int) time.Time {
	return StudyStart.Add(time.Duration(d) * 24 * time.Hour)
}

// InStudy reports whether t falls within [StudyStart, StudyEnd+24h).
func InStudy(t time.Time) bool {
	return !t.Before(StudyStart) && t.Before(StudyEnd.Add(24*time.Hour))
}

// Week returns the ISO-like week index of t counted from the Monday on or
// before StudyStart. Mastodon's activity endpoint reports weekly buckets;
// we anchor weeks the same way so the crawler's numbers line up.
func Week(t time.Time) int {
	anchor := weekAnchor
	return int(t.Sub(anchor) / (7 * 24 * time.Hour))
}

// WeekStart returns the start of week w (see Week).
func WeekStart(w int) time.Time {
	return weekAnchor.Add(time.Duration(w) * 7 * 24 * time.Hour)
}

// weekAnchor is the Monday on or before StudyStart (2022-09-26).
var weekAnchor = time.Date(2022, 9, 26, 0, 0, 0, 0, time.UTC)

// PostTakeover reports whether t is at or after the takeover.
func PostTakeover(t time.Time) bool {
	return !t.Before(Takeover)
}

// NowFunc is a clock-reading function. Simulated services accept a
// NowFunc instead of calling time.Now directly (the walltime analyzer in
// internal/lint enforces this), so the same service runs on wall time
// (Wall) or on a virtual Clock (Clock.Now) without code changes.
type NowFunc func() time.Time

// Wall is the wall-clock NowFunc. It is the one sanctioned gateway to
// time.Now for simulated-service packages: services default to Wall so
// existing behavior under real time is unchanged, and tests or replays
// swap in a Clock.
func Wall() time.Time {
	return time.Now()
}

// Clock is a monotonically advancing virtual clock. Services read Now from
// it; generators advance it. The zero value starts at StudyStart.
type Clock struct {
	now time.Time
}

// NewClock returns a Clock positioned at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	if c.now.IsZero() {
		return StudyStart
	}
	return c.now
}

// Advance moves the clock forward by d. It panics on negative d to catch
// accidental time travel in generators.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: negative Advance")
	}
	c.now = c.Now().Add(d)
}

// SetAt jumps the clock to t, which must not be before the current time.
func (c *Clock) SetAt(t time.Time) {
	if t.Before(c.Now()) {
		panic(fmt.Sprintf("vclock: SetAt(%s) would move clock backwards from %s", t, c.Now()))
	}
	c.now = t
}

// FormatDay renders t as the paper's figures label days (e.g. "Oct 27").
func FormatDay(t time.Time) string {
	return t.UTC().Format("Jan 02")
}
