package vclock

import (
	"testing"
	"time"
)

func TestDayBuckets(t *testing.T) {
	if Day(StudyStart) != 0 {
		t.Fatalf("Day(StudyStart) = %d", Day(StudyStart))
	}
	if Day(StudyStart.Add(36*time.Hour)) != 1 {
		t.Fatal("36h after start should be day 1")
	}
	if Day(StudyEnd) != StudyDays-1 {
		t.Fatalf("Day(StudyEnd) = %d, want %d", Day(StudyEnd), StudyDays-1)
	}
}

func TestDayStartRoundTrip(t *testing.T) {
	for d := 0; d < StudyDays; d++ {
		if Day(DayStart(d)) != d {
			t.Fatalf("round trip failed for day %d", d)
		}
	}
}

func TestInStudy(t *testing.T) {
	cases := []struct {
		t    time.Time
		want bool
	}{
		{StudyStart, true},
		{StudyStart.Add(-time.Second), false},
		{StudyEnd.Add(23 * time.Hour), true},
		{StudyEnd.Add(25 * time.Hour), false},
		{Takeover, true},
	}
	for _, c := range cases {
		if got := InStudy(c.t); got != c.want {
			t.Errorf("InStudy(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestWeekAnchoredOnMonday(t *testing.T) {
	if WeekStart(0).Weekday() != time.Monday {
		t.Fatal("week anchor is not a Monday")
	}
	if Week(StudyStart) != 0 {
		t.Fatalf("Week(StudyStart) = %d", Week(StudyStart))
	}
	w := Week(Takeover)
	if WeekStart(w).After(Takeover) || !Takeover.Before(WeekStart(w+1)) {
		t.Fatal("Takeover not inside its own week bucket")
	}
}

func TestEventOrdering(t *testing.T) {
	order := []time.Time{StudyStart, CollectionStart, Takeover, Layoffs, Ultimatum, CollectionEnd, StudyEnd, CrawlTime}
	for i := 1; i < len(order); i++ {
		if !order[i-1].Before(order[i]) {
			t.Fatalf("event %d not after event %d", i, i-1)
		}
	}
}

func TestPostTakeover(t *testing.T) {
	if PostTakeover(Takeover.Add(-time.Minute)) {
		t.Fatal("minute before takeover flagged post-takeover")
	}
	if !PostTakeover(Takeover) {
		t.Fatal("takeover instant not post-takeover")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(StudyStart)
	c.Advance(2 * time.Hour)
	if got := c.Now(); !got.Equal(StudyStart.Add(2 * time.Hour)) {
		t.Fatalf("Now = %s", got)
	}
	c.SetAt(Takeover)
	if !c.Now().Equal(Takeover) {
		t.Fatal("SetAt failed")
	}
}

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if !c.Now().Equal(StudyStart) {
		t.Fatal("zero clock should start at StudyStart")
	}
}

func TestClockPanicsOnBackwards(t *testing.T) {
	c := NewClock(Takeover)
	defer func() {
		if recover() == nil {
			t.Fatal("SetAt backwards did not panic")
		}
	}()
	c.SetAt(StudyStart)
}

func TestClockPanicsOnNegativeAdvance(t *testing.T) {
	c := NewClock(StudyStart)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestFormatDay(t *testing.T) {
	if got := FormatDay(Takeover); got != "Oct 27" {
		t.Fatalf("FormatDay = %q", got)
	}
}
