package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("users")
	root2 := New(7)
	c2 := root2.Split("users")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not stable for equal parent state and label")
		}
	}
	// Different labels must give different streams.
	r := New(7)
	a := r.Split("a")
	r2 := New(7)
	b := r2.Split("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("Split streams for different labels collide immediately")
	}
}

func TestSplitNStable(t *testing.T) {
	mk := func(n int) uint64 {
		return New(9).SplitN("user", n).Uint64()
	}
	if mk(3) != mk(3) {
		t.Fatal("SplitN not stable")
	}
	if mk(3) == mk(4) {
		t.Fatal("SplitN adjacent streams collide")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBool(t *testing.T) {
	s := New(13)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.Bool(0.3) {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		if s.LogNormal(2, 1.5) <= 0 {
			t.Fatal("LogNormal returned non-positive value")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 80} {
		s := New(uint64(mean * 100))
		const n = 50000
		total := 0
		for i := 0; i < n; i++ {
			total += s.Poisson(mean)
		}
		got := float64(total) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if New(1).Poisson(-1) != 0 {
		t.Fatal("Poisson(-1) != 0")
	}
}

func TestExpMean(t *testing.T) {
	s := New(23)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	if math.Abs(sum/n-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want 0.5", sum/n)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		if v := s.Pareto(5, 2); v < 5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestGeometric(t *testing.T) {
	s := New(31)
	if s.Geometric(1) != 0 {
		t.Fatal("Geometric(1) != 0")
	}
	const n = 100000
	total := 0
	for i := 0; i < n; i++ {
		total += s.Geometric(0.25)
	}
	// Mean of failures before success is (1-p)/p = 3.
	got := float64(total) / n
	if math.Abs(got-3) > 0.1 {
		t.Fatalf("Geometric(0.25) mean = %v, want 3", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatal("Shuffle changed multiset of elements")
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	z := NewZipf(1000, 1.2)
	s := New(41)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("Zipf not head-heavy: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// Rank 0 should take a large share under alpha=1.2.
	if float64(counts[0])/n < 0.10 {
		t.Fatalf("Zipf rank-0 share too small: %v", float64(counts[0])/n)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(10, 1.0)
	s := New(43)
	for i := 0; i < 10000; i++ {
		if r := z.Sample(s); r < 0 || r >= 10 {
			t.Fatalf("Zipf sample out of range: %d", r)
		}
	}
	if z.N() != 10 {
		t.Fatalf("N() = %d", z.N())
	}
}

func TestWeighted(t *testing.T) {
	w := NewWeighted([]float64{1, 0, 3})
	s := New(47)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(s)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weighted ratio = %v, want about 3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	for _, ws := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWeighted(%v) did not panic", ws)
				}
			}()
			NewWeighted(ws)
		}()
	}
}

func TestPick(t *testing.T) {
	s := New(53)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(s, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick covered %d of 3 elements", len(seen))
	}
}

func TestSampleKDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 10 + int(seed%90)
		k := int(seed % uint64(n))
		got := SampleK(s, n, k)
		if k < n && len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKFull(t *testing.T) {
	got := SampleK(New(1), 5, 10)
	if len(got) != 5 {
		t.Fatalf("SampleK(k>=n) returned %d elements, want 5", len(got))
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(16000, 1.1)
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(s)
	}
}
