// Package randx provides a small, deterministic random toolkit used by the
// world generator and the simulated services.
//
// Everything in flock must be reproducible from a single 64-bit seed: the
// same seed yields byte-identical worlds, datasets and reports. To that end
// randx wraps a splitmix64 core (fast, well distributed, trivially
// splittable) and layers the distributions the generative model needs:
// Zipf (instance popularity), Poisson (post counts), lognormal (follower
// counts), power law (degree tails), Bernoulli and weighted choice.
//
// The package deliberately does not use math/rand's global state; each
// Source is an independent value and Sources can be split hierarchically
// (world -> per-user -> per-day) so that adding users does not perturb the
// random streams of existing ones.
package randx

import (
	"math"
)

// Source is a deterministic pseudo-random source based on splitmix64.
// The zero value is a valid source seeded with 0, but callers normally use
// New or Split.
type Source struct {
	state    uint64
	spare    float64 // cached second normal variate from Box-Muller
	hasSpare bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden gamma used by splitmix64.
const gamma = 0x9e3779b97f4a7c15

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child source from this source and a label.
// Splitting is stable: the same (state-at-call, label) pair always yields
// the same child. Use distinct labels for distinct sub-streams.
func (s *Source) Split(label string) *Source {
	h := s.Uint64()
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	return &Source{state: h}
}

// SplitN derives an independent child source keyed by an integer, useful
// for per-entity streams (user i, instance j).
func (s *Source) SplitN(label string, n int) *Source {
	c := s.Split(label)
	c.state ^= uint64(n) * gamma
	c.Uint64() // burn one to decorrelate adjacent n
	return c
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("randx: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. It consumes two uniforms per pair of calls.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// LogNormal returns a lognormal variate with the given location mu and
// scale sigma (parameters of the underlying normal).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Exp returns an exponential variate with rate lambda (> 0).
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("randx: Exp with non-positive lambda")
	}
	return -math.Log(1-s.Float64()) / lambda
}

// Poisson returns a Poisson variate with the given mean. For small means
// it uses Knuth's product method; for large means a normal approximation
// with continuity correction (adequate for workload generation).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*s.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Pareto returns a Pareto (type I) variate with minimum xm and shape alpha.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("randx: Pareto requires positive xm and alpha")
	}
	return xm / math.Pow(1-s.Float64(), 1/alpha)
}

// Geometric returns the number of failures before the first success for a
// Bernoulli(p) process, p in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("randx: Geometric with non-positive p")
	}
	return int(math.Floor(math.Log(1-s.Float64()) / math.Log(1-p)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples ranks in [0, n) following a Zipf distribution with exponent
// alpha > 0: P(rank k) proportional to 1/(k+1)^alpha. It precomputes the
// CDF so sampling is O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), alpha)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N()).
func (z *Zipf) Sample(s *Source) int {
	u := s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted samples indices proportionally to a fixed weight vector.
type Weighted struct {
	cdf []float64
}

// NewWeighted builds a weighted sampler. Weights must be non-negative and
// sum to a positive value.
func NewWeighted(weights []float64) *Weighted {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("randx: negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("randx: weights sum to zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf}
}

// Sample draws an index proportional to its weight.
func (w *Weighted) Sample(s *Source) int {
	u := s.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](s *Source, xs []T) T {
	return xs[s.Intn(len(xs))]
}

// SampleK returns k distinct indices drawn uniformly from [0, n) in
// selection order. If k >= n it returns a full permutation.
func SampleK(s *Source, n, k int) []int {
	if k >= n {
		return s.Perm(n)
	}
	// Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
