package toxsvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"flock/internal/randx"
	"flock/internal/textkit"
	"flock/internal/world"
)

func analyze(t *testing.T, url, text string) (float64, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"comment":             map[string]string{"text": text},
		"requestedAttributes": map[string]any{"TOXICITY": map[string]any{}},
	})
	resp, err := http.Post(url+"/v1alpha1/comments:analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return 0, resp.StatusCode
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return r.AttributeScores["TOXICITY"].SummaryScore.Value, 200
}

func TestScoreSeparatesToxicFromClean(t *testing.T) {
	gen := textkit.NewGenerator(randx.New(1))
	for i := 0; i < 50; i++ {
		clean := gen.Post(textkit.PostOpts{Topic: textkit.TopicTech, Hashtags: 1})
		toxic := gen.Post(textkit.PostOpts{Topic: textkit.TopicTech, Toxic: true})
		cs, ts := Score(clean), Score(toxic)
		if cs >= 0.5 {
			t.Fatalf("clean post scored %v: %q", cs, clean)
		}
		if ts <= 0.5 {
			t.Fatalf("toxic post scored %v: %q", ts, toxic)
		}
	}
}

func TestScoreBounds(t *testing.T) {
	texts := []string{"", "hello", "idiot moron trash garbage pathetic loser clown idiot moron"}
	for _, txt := range texts {
		s := Score(txt)
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of range for %q", s, txt)
		}
	}
}

func TestScoreDeterministic(t *testing.T) {
	if Score("some fixed text") != Score("some fixed text") {
		t.Fatal("score not deterministic")
	}
}

func TestGroundTruthRecovery(t *testing.T) {
	// Score every migrant tweet in a small world; thresholding at 0.5
	// must recover the planted toxicity labels with high agreement.
	cfg := world.DefaultConfig(100)
	cfg.Seed = 5
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, fn, tn int
	for _, u := range w.Migrants {
		for _, tweet := range w.TweetsByUser[u] {
			pred := Score(tweet.Text) > 0.5
			switch {
			case pred && tweet.Toxic:
				tp++
			case pred && !tweet.Toxic:
				fp++
			case !pred && tweet.Toxic:
				fn++
			default:
				tn++
			}
		}
	}
	total := tp + fp + fn + tn
	if total == 0 {
		t.Fatal("no tweets")
	}
	acc := float64(tp+tn) / float64(total)
	if acc < 0.95 {
		t.Fatalf("scorer accuracy %v (tp=%d fp=%d fn=%d tn=%d)", acc, tp, fp, fn, tn)
	}
	if tp == 0 {
		t.Fatal("no true positives: no toxic signal planted?")
	}
}

func TestHTTPAnalyze(t *testing.T) {
	srv := httptest.NewServer(New(0).Handler())
	defer srv.Close()
	score, code := analyze(t, srv.URL, "you are a complete idiot")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if score <= 0.5 {
		t.Fatalf("toxic text scored %v over HTTP", score)
	}
	score, _ = analyze(t, srv.URL, "lovely weather for a walk today")
	if score >= 0.5 {
		t.Fatalf("clean text scored %v over HTTP", score)
	}
}

func TestHTTPValidation(t *testing.T) {
	srv := httptest.NewServer(New(0).Handler())
	defer srv.Close()
	// Missing TOXICITY attribute.
	body, _ := json.Marshal(map[string]any{
		"comment":             map[string]string{"text": "x"},
		"requestedAttributes": map[string]any{"SEVERE_TOXICITY": map[string]any{}},
	})
	resp, err := http.Post(srv.URL+"/v1alpha1/comments:analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for missing attribute", resp.StatusCode)
	}
	// Empty text.
	if _, code := analyze(t, srv.URL, ""); code != http.StatusBadRequest {
		t.Fatalf("status %d for empty text", code)
	}
	// Bad JSON.
	resp, err = http.Post(srv.URL+"/v1alpha1/comments:analyze", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for bad json", resp.StatusCode)
	}
}

func TestQPSLimit(t *testing.T) {
	srv := httptest.NewServer(New(2).Handler())
	defer srv.Close()
	var last int
	for i := 0; i < 3; i++ {
		_, last = analyze(t, srv.URL, "hello world")
	}
	if last != http.StatusTooManyRequests {
		t.Fatalf("3rd call status %d, want 429", last)
	}
}

func BenchmarkScore(b *testing.B) {
	text := "thinking about the instance again: admins are volunteers here #fediverse"
	for i := 0; i < b.N; i++ {
		Score(text)
	}
}
