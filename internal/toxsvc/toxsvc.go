// Package toxsvc simulates Google Jigsaw's Perspective API, which the
// paper used to score every tweet and status for toxicity (§6.3). It
// exposes the same request/response shape (comments:analyze with a
// TOXICITY attribute returning a summary score in [0,1]) and a QPS
// limit, so the crawler-side client code matches real Perspective
// integrations.
//
// Scoring is a transparent lexicon model: the toxic phrases the world
// generator plants (see textkit.ToxicPhrases) decompose into a word
// lexicon; a post's score grows with lexicon hits and is stable and
// deterministic. Clean posts score low with a small text-hash jitter so
// CDFs look natural rather than two spikes. The model's agreement with
// the planted ground truth is measured in tests (it is intentionally not
// 100%: Perspective misclassifies too, and the analysis must tolerate
// that).
package toxsvc

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"flock/internal/textkit"
	"flock/internal/vclock"
)

// Host is the hostname the scorer binds on the fabric.
const Host = "perspective.test"

// Request is the comments:analyze request body subset.
type Request struct {
	Comment struct {
		Text string `json:"text"`
	} `json:"comment"`
	RequestedAttributes map[string]struct{} `json:"requestedAttributes"`
	Languages           []string            `json:"languages,omitempty"`
}

// Response is the comments:analyze response subset.
type Response struct {
	AttributeScores map[string]AttributeScore `json:"attributeScores"`
}

// AttributeScore carries the summary score of one attribute.
type AttributeScore struct {
	SummaryScore struct {
		Value float64 `json:"value"`
		Type  string  `json:"type"`
	} `json:"summaryScore"`
}

// lexicon maps toxic markers to weights. Built from the same phrase pool
// the generator injects, split into words, so the signal is recoverable
// but not by exact phrase matching.
var lexicon = buildLexicon()

func buildLexicon() map[string]float64 {
	lex := map[string]float64{}
	for _, phrase := range textkit.ToxicPhrases() {
		for _, w := range strings.Fields(strings.ToLower(phrase)) {
			w = strings.Trim(w, ".,!?")
			switch w {
			// Function words and common English words are excluded so
			// ordinary posts don't trip the lexicon.
			case "you", "are", "a", "is", "and", "so", "me", "this", "what",
				"nobody", "wants", "here", "take", "up", "complete", "absolute", "opinion":
				continue
			}
			lex[w] = 0.55
		}
	}
	// A few generic markers beyond the generator pool, so the service is
	// not a pure oracle.
	for _, w := range []string{"hate", "stupid", "awful", "worst"} {
		lex[w] = 0.25
	}
	return lex
}

// Score computes the toxicity of text in [0, 1]. Exported so analyses and
// tests can score without HTTP overhead when measuring the scorer itself.
func Score(text string) float64 {
	score := 0.03 + 0.04*jitter(text) // clean baseline
	for _, w := range strings.Fields(strings.ToLower(text)) {
		w = strings.Trim(w, ".,!?;:")
		if wt, ok := lexicon[w]; ok {
			score += wt
		}
	}
	if score > 0.98 {
		score = 0.98
	}
	return score
}

// jitter maps text to a stable value in [0,1).
func jitter(text string) float64 {
	h := uint32(2166136261)
	for i := 0; i < len(text); i++ {
		h = (h ^ uint32(text[i])) * 16777619
	}
	return float64(h%1000) / 1000
}

// Service is the HTTP scorer with a QPS limit.
type Service struct {
	mu       sync.Mutex
	qps      int
	winStart time.Time
	winCount int
	now      vclock.NowFunc
}

// New returns a scorer allowing qps requests per second (0 = unlimited).
func New(qps int) *Service {
	return &Service{qps: qps, now: vclock.Wall}
}

// SetClock replaces the service's clock (QPS windowing). nil restores the
// wall clock.
func (s *Service) SetClock(now vclock.NowFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now == nil {
		now = vclock.Wall
	}
	s.now = now
}

func (s *Service) allow() bool {
	if s.qps <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if now.Sub(s.winStart) >= time.Second {
		s.winStart = now
		s.winCount = 0
	}
	if s.winCount >= s.qps {
		return false
	}
	s.winCount++
	return true
}

// Handler returns the HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1alpha1/comments:analyze", func(w http.ResponseWriter, r *http.Request) {
		if !s.allow() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":{"code":429,"status":"RESOURCE_EXHAUSTED"}}`, http.StatusTooManyRequests)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, `{"error":{"code":400}}`, http.StatusBadRequest)
			return
		}
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, `{"error":{"code":400,"message":"invalid json"}}`, http.StatusBadRequest)
			return
		}
		if req.Comment.Text == "" {
			http.Error(w, `{"error":{"code":400,"message":"empty comment"}}`, http.StatusBadRequest)
			return
		}
		if _, ok := req.RequestedAttributes["TOXICITY"]; !ok {
			http.Error(w, `{"error":{"code":400,"message":"TOXICITY attribute required"}}`, http.StatusBadRequest)
			return
		}
		var resp Response
		score := AttributeScore{}
		score.SummaryScore.Value = Score(req.Comment.Text)
		score.SummaryScore.Type = "PROBABILITY"
		resp.AttributeScores = map[string]AttributeScore{"TOXICITY": score}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	return mux
}
