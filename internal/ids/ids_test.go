package ids

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMonotonicWithinMillisecond(t *testing.T) {
	g := NewGenerator(1)
	at := time.Date(2022, 10, 27, 12, 0, 0, 0, time.UTC)
	var prev Snowflake
	for i := 0; i < 5000; i++ {
		id := g.At(at)
		if id <= prev {
			t.Fatalf("ID not strictly increasing at i=%d: %d <= %d", i, id, prev)
		}
		prev = id
	}
}

func TestMonotonicAcrossTime(t *testing.T) {
	g := NewGenerator(2)
	at := time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC)
	var prev Snowflake
	for i := 0; i < 1000; i++ {
		id := g.At(at)
		if id <= prev {
			t.Fatalf("not monotonic at step %d", i)
		}
		prev = id
		at = at.Add(time.Duration(i%3) * time.Millisecond)
	}
}

func TestBackwardsClockStaysMonotonic(t *testing.T) {
	g := NewGenerator(3)
	late := time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)
	early := late.Add(-time.Hour)
	a := g.At(late)
	b := g.At(early)
	if b <= a {
		t.Fatalf("backwards clock broke monotonicity: %d <= %d", b, a)
	}
}

func TestTimeRecovery(t *testing.T) {
	g := NewGenerator(4)
	at := time.Date(2022, 11, 17, 8, 30, 15, 250_000_000, time.UTC)
	id := g.At(at)
	got := id.Time()
	if d := got.Sub(at); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("recovered time %s differs from %s by %s", got, at, d)
	}
}

func TestShardRecovery(t *testing.T) {
	for _, shard := range []int{0, 1, 511, 1023} {
		g := NewGenerator(shard)
		id := g.At(time.Date(2022, 10, 15, 0, 0, 0, 0, time.UTC))
		if id.Shard() != shard {
			t.Fatalf("shard %d recovered as %d", shard, id.Shard())
		}
	}
}

func TestShardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator(1024) did not panic")
		}
	}()
	NewGenerator(1024)
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := Snowflake(raw >> 1) // keep in 63-bit range
		got, err := Parse(s.String())
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "abc", "-5", "12.3"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}

func TestOrderingFollowsTime(t *testing.T) {
	g := NewGenerator(5)
	early := g.At(time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC))
	late := g.At(time.Date(2022, 11, 30, 0, 0, 0, 0, time.UTC))
	if early >= late {
		t.Fatal("earlier timestamp did not yield smaller ID")
	}
	if !early.Time().Before(late.Time()) {
		t.Fatal("embedded times out of order")
	}
}

func BenchmarkAt(b *testing.B) {
	g := NewGenerator(1)
	at := time.Date(2022, 10, 27, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		_ = g.At(at)
	}
}
