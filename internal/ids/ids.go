// Package ids generates the identifier formats the simulated platforms
// use: time-ordered snowflake-style numeric IDs for tweets and Mastodon
// statuses, and compact account IDs.
//
// Twitter's and Mastodon's real IDs are both snowflakes: a millisecond
// timestamp in the high bits plus worker/sequence low bits. Preserving
// that structure matters for the reproduction because the crawler relies
// on ID ordering for pagination (max_id / since_id semantics).
package ids

import (
	"fmt"
	"strconv"
	"time"
)

// epoch is the custom epoch for generated snowflakes (2010-01-01 UTC),
// early enough that pre-study account-creation times are representable.
var epoch = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// Snowflake is a 63-bit time-ordered identifier:
// 41 bits of milliseconds since epoch, 10 bits of shard, 12 bits sequence.
type Snowflake uint64

// Generator mints snowflakes for a single shard. It is not safe for
// concurrent use; the world generator is single-threaded by design
// (determinism), and each simulated service owns its own Generator.
type Generator struct {
	shard    uint64
	lastMs   int64
	sequence uint64
}

// NewGenerator returns a Generator for the given shard (0..1023).
func NewGenerator(shard int) *Generator {
	if shard < 0 || shard > 1023 {
		panic("ids: shard out of range")
	}
	return &Generator{shard: uint64(shard)}
}

// At mints a snowflake for virtual time t. Calls with non-decreasing t
// yield strictly increasing IDs; the per-millisecond sequence counter
// disambiguates bursts.
func (g *Generator) At(t time.Time) Snowflake {
	ms := t.Sub(epoch).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms == g.lastMs {
		g.sequence++
		if g.sequence >= 4096 {
			// Sequence exhausted within one millisecond: borrow the next.
			g.lastMs++
			g.sequence = 0
			ms = g.lastMs
		}
	} else if ms > g.lastMs {
		g.lastMs = ms
		g.sequence = 0
	} else {
		// Clock went backwards relative to the last mint; reuse lastMs to
		// preserve monotonicity.
		ms = g.lastMs
		g.sequence++
		if g.sequence >= 4096 {
			g.lastMs++
			g.sequence = 0
			ms = g.lastMs
		}
	}
	return Snowflake(uint64(ms)<<22 | g.shard<<12 | g.sequence)
}

// Time extracts the embedded timestamp.
func (s Snowflake) Time() time.Time {
	ms := int64(s >> 22)
	return epoch.Add(time.Duration(ms) * time.Millisecond)
}

// Shard extracts the shard bits.
func (s Snowflake) Shard() int {
	return int((s >> 12) & 0x3ff)
}

// String renders the ID as the decimal string used in API payloads.
func (s Snowflake) String() string {
	return strconv.FormatUint(uint64(s), 10)
}

// Parse parses a decimal snowflake string.
func Parse(str string) (Snowflake, error) {
	v, err := strconv.ParseUint(str, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ids: parse %q: %w", str, err)
	}
	return Snowflake(v), nil
}
