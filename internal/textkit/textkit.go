// Package textkit generates the synthetic post content for the simulated
// platforms.
//
// The paper's RQ3 analyses content: hashtags used on each platform
// (Fig. 15), similarity between a user's tweets and statuses (Fig. 14),
// tweet sources (Fig. 12) and toxicity (Fig. 16). textkit provides the
// generative side of all of that: a set of topics with vocabularies and
// hashtag pools, post templates, a paraphraser (for "similar but not
// identical" cross-platform posts), and a toxic-phrase injector that
// plants a recoverable toxicity signal for the scoring service to find.
//
// The topic mix mirrors the paper's observation: Twitter content spans
// Entertainment, Celebrities, Politics, Sports, Tech...; Mastodon content
// in the study window is dominated by Fediverse/Migration discussion.
package textkit

import (
	"strings"

	"flock/internal/randx"
)

// Topic identifies a content topic.
type Topic int

// The topic universe. TopicFediverse and TopicMigration dominate
// Mastodon; the others dominate Twitter, matching Fig. 15.
const (
	TopicFediverse Topic = iota
	TopicMigration
	TopicPolitics
	TopicEntertainment
	TopicCelebrities
	TopicSports
	TopicTech
	TopicAI
	TopicHistory
	TopicGameDev
	TopicPhotography
	TopicMusic
	numTopics
)

// NumTopics is the number of distinct topics.
const NumTopics = int(numTopics)

// String returns the topic name.
func (t Topic) String() string {
	names := [...]string{
		"fediverse", "migration", "politics", "entertainment", "celebrities",
		"sports", "tech", "ai", "history", "gamedev", "photography", "music",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return "unknown"
}

// topicData bundles a topic's vocabulary and hashtag pool.
type topicData struct {
	nouns    []string
	verbs    []string
	extras   []string
	hashtags []string
}

var topics = map[Topic]topicData{
	TopicFediverse: {
		nouns:    []string{"instance", "server", "federation", "timeline", "admin", "moderation", "activitypub", "community", "fediverse", "decentralization"},
		verbs:    []string{"federates", "boosts", "moderates", "hosts", "defederates", "welcomes"},
		extras:   []string{"the local timeline feels cozy", "open source all the way", "pick a server that fits you", "admins are volunteers here", "no algorithm just people"},
		hashtags: []string{"#fediverse", "#mastodon", "#activitypub", "#foss", "#decentralization"},
	},
	TopicMigration: {
		nouns:    []string{"migration", "birdsite", "account", "followers", "move", "alternative", "exodus", "takeover"},
		verbs:    []string{"migrates", "leaves", "joins", "switches", "quits", "arrives"},
		extras:   []string{"finally made the jump", "find me on my new account", "deleting the old app soon", "this place feels different", "bring your friends over"},
		hashtags: []string{"#twittermigration", "#mastodonmigration", "#byebyetwitter", "#goodbyetwitter", "#riptwitter", "#mastodonsocial", "#newhere"},
	},
	TopicPolitics: {
		nouns:    []string{"election", "parliament", "policy", "minister", "vote", "debate", "democracy", "ukraine"},
		verbs:    []string{"announces", "debates", "votes", "resigns", "campaigns", "protests"},
		extras:   []string{"watching the debate live", "this policy will not age well", "count every vote", "solidarity with the people"},
		hashtags: []string{"#standwithukraine", "#generalelectionnow", "#politics", "#ukpolitics", "#vote"},
	},
	TopicEntertainment: {
		nouns:    []string{"episode", "series", "film", "trailer", "season", "finale", "show", "premiere"},
		verbs:    []string{"premieres", "drops", "streams", "returns", "wraps", "surprises"},
		extras:   []string{"no spoilers please", "that finale broke me", "binge watched the whole thing", "the soundtrack is incredible"},
		hashtags: []string{"#nowwatching", "#tv", "#film", "#streaming", "#cinema"},
	},
	TopicCelebrities: {
		nouns:    []string{"interview", "red carpet", "album", "tour", "statement", "rumor", "award"},
		verbs:    []string{"confirms", "denies", "announces", "teases", "cancels", "reveals"},
		extras:   []string{"she looked stunning tonight", "the fans went wild", "what a comeback story", "press tour season again"},
		hashtags: []string{"#barbaraholzer", "#celebrity", "#redcarpet", "#awards"},
	},
	TopicSports: {
		nouns:    []string{"match", "goal", "league", "transfer", "keeper", "final", "derby", "squad"},
		verbs:    []string{"scores", "wins", "loses", "signs", "equalizes", "defends"},
		extras:   []string{"what a strike in the 89th minute", "the ref had a shocker", "cup run continues", "season of our lives"},
		hashtags: []string{"#worldcup2022", "#football", "#matchday", "#premierleague"},
	},
	TopicTech: {
		nouns:    []string{"release", "bug", "kernel", "library", "protocol", "compiler", "database", "outage"},
		verbs:    []string{"ships", "breaks", "patches", "deprecates", "scales", "refactors"},
		extras:   []string{"works on my machine", "read the changelog people", "cache invalidation strikes again", "rewrote it over the weekend"},
		hashtags: []string{"#opensource", "#programming", "#golang", "#linux", "#webdev"},
	},
	TopicAI: {
		nouns:    []string{"model", "dataset", "paper", "benchmark", "training run", "embedding", "transformer"},
		verbs:    []string{"trains", "overfits", "generalizes", "hallucinates", "converges", "scales"},
		extras:   []string{"the loss curve looks suspicious", "new sota on the benchmark", "data quality beats model size", "reviewers wanted more ablations"},
		hashtags: []string{"#machinelearning", "#ai", "#nlp", "#research"},
	},
	TopicHistory: {
		nouns:    []string{"archive", "manuscript", "empire", "treaty", "excavation", "dynasty", "chronicle"},
		verbs:    []string{"uncovers", "documents", "translates", "revisits", "preserves", "dates"},
		extras:   []string{"primary sources or it did not happen", "the archive smelled of dust and time", "a footnote changed the whole argument"},
		hashtags: []string{"#history", "#histodons", "#archives", "#medieval"},
	},
	TopicGameDev: {
		nouns:    []string{"engine", "shader", "sprite", "playtest", "gamejam", "build", "level", "physics"},
		verbs:    []string{"renders", "compiles", "ships", "crashes", "iterates", "polishes"},
		extras:   []string{"the jam deadline is tonight", "fixed the collision bug at 3am", "wishlist it on the store page", "devlog coming this weekend"},
		hashtags: []string{"#gamedev", "#indiedev", "#screenshotsaturday", "#unity"},
	},
	TopicPhotography: {
		nouns:    []string{"lens", "exposure", "print", "negative", "golden hour", "portrait", "landscape"},
		verbs:    []string{"captures", "develops", "frames", "exposes", "edits", "shoots"},
		extras:   []string{"shot on a thirty year old lens", "the light was perfect for ten seconds", "film is not dead"},
		hashtags: []string{"#photography", "#mastoart", "#filmphotography", "#landscape"},
	},
	TopicMusic: {
		nouns:    []string{"track", "vinyl", "setlist", "remix", "chorus", "bassline", "gig"},
		verbs:    []string{"drops", "spins", "samples", "mixes", "covers", "headlines"},
		extras:   []string{"this song has lived in my head all week", "the b side is better", "caught them live last night"},
		hashtags: []string{"#nowplaying", "#bbc6music", "#newmusic", "#vinyl"},
	},
}

// HashtagsFor returns the hashtag pool of a topic.
func HashtagsFor(t Topic) []string {
	return topics[t].hashtags
}

// toxicPhrases are appended to posts flagged toxic by the world model.
// They are deliberately mild but lexically distinctive so the scoring
// service (internal/toxsvc) can recover the signal; see that package for
// the matching lexicon.
var toxicPhrases = []string{
	"you are a complete idiot",
	"what a pathetic take, moron",
	"shut up, nobody wants you here",
	"this is garbage and so are you",
	"absolute trash opinion, loser",
	"you disgust me, clown",
}

// ToxicPhrases exposes the injector pool (the toxsvc lexicon is built
// from the same word list).
func ToxicPhrases() []string { return toxicPhrases }

// tailMoods and tailTimes give every post a compositional tail so two
// posts drawn from the same topic template pool are still lexically
// distinct. Without this, template collisions masquerade as
// cross-platform content mirroring and wreck the Fig. 14 calibration.
var tailMoods = []string{
	"no complaints", "what a day", "zero regrets", "pure chaos",
	"quietly thrilled", "mildly annoyed", "deeply satisfying", "oddly calming",
	"still processing", "worth it", "lesson learned", "progress anyway",
	"small victories", "big mood", "future me approves", "never again",
}

var tailTimes = []string{
	"this rainy tuesday", "early this morning", "past midnight", "at lunch",
	"after third coffee", "on the train", "mid-build", "between meetings",
	"this long weekend", "before the deadline", "way too late", "before dinner",
}

// tailMarkers widen the tail combination space (12x12x64); without them
// two posts drawing the same mood+time tail read as near-duplicates.
var tailMarkers = func() []string {
	adjs := []string{"small", "odd", "quiet", "bold", "slow", "fresh", "late", "rare"}
	nouns := []string{"win", "note", "thought", "update", "detour", "ritual", "habit", "experiment"}
	out := make([]string, 0, len(adjs)*len(nouns))
	for _, a := range adjs {
		for _, n := range nouns {
			out = append(out, "a "+a+" "+n)
		}
	}
	return out
}()

// neutralExtras is a topic-free phrase pool mixed into posts so that
// same-topic posts do not always draw from the same five stock phrases.
var neutralExtras = []string{
	"today went sideways fast", "the group chat agrees", "my notes are a disaster",
	"the plan survived contact", "everyone has opinions", "the draft is done",
	"i changed my mind twice", "the list keeps growing", "someone owes me lunch",
	"the shortcut cost an hour", "the backlog won today", "good news for once",
	"the weather ruined nothing", "the answer was obvious", "nobody saw that coming",
	"the second attempt landed",
}

// extraMods multiply the per-topic extras pools (5 phrases x 16 mods).
var extraMods = []string{
	"as usual", "once more", "against all odds", "for the record",
	"without a doubt", "in the best way", "to be fair", "all over again",
	"like clockwork", "by some miracle", "for better or worse", "no regrets",
	"with feeling", "in slow motion", "at full volume", "off the record",
}

// Generator produces post text deterministically from a randx source.
type Generator struct {
	rng *randx.Source
}

// NewGenerator returns a text generator drawing from rng.
func NewGenerator(rng *randx.Source) *Generator {
	return &Generator{rng: rng}
}

// PostOpts controls a generated post.
type PostOpts struct {
	Topic Topic
	// Hashtags is how many hashtags to append (drawn from the topic pool,
	// deduplicated).
	Hashtags int
	// Toxic plants a toxic phrase in the post.
	Toxic bool
	// MentionHandle, when non-empty, injects "@handle" into the text.
	MentionHandle string
	// URL, when non-empty, is appended (e.g. a Mastodon profile link in a
	// migration announcement tweet).
	URL string
}

// Post generates one post.
func (g *Generator) Post(o PostOpts) string {
	td := topics[o.Topic]
	var b strings.Builder
	// The stock extra is crossed with a modifier so the effective phrase
	// pool per topic is ~80, not ~5: a single shared stock phrase must
	// not be enough to push two unrelated posts over the similarity
	// threshold (see the Fig. 14 calibration notes in EXPERIMENTS.md).
	base := td.extras
	if g.rng.Bool(0.5) {
		base = neutralExtras
	}
	extra := randx.Pick(g.rng, base) + " " + randx.Pick(g.rng, extraMods)
	switch g.rng.Intn(3) {
	case 0:
		b.WriteString("the ")
		b.WriteString(randx.Pick(g.rng, td.nouns))
		b.WriteString(" ")
		b.WriteString(randx.Pick(g.rng, td.verbs))
		b.WriteString(" and ")
		b.WriteString(extra)
	case 1:
		b.WriteString(extra)
		b.WriteString(", the ")
		b.WriteString(randx.Pick(g.rng, td.nouns))
		b.WriteString(" ")
		b.WriteString(randx.Pick(g.rng, td.verbs))
	default:
		b.WriteString("thinking about the ")
		b.WriteString(randx.Pick(g.rng, td.nouns))
		b.WriteString(" again: ")
		b.WriteString(extra)
	}
	b.WriteString(", ")
	b.WriteString(randx.Pick(g.rng, tailMarkers))
	b.WriteString(" ")
	b.WriteString(randx.Pick(g.rng, tailTimes))
	b.WriteString(" ")
	b.WriteString(randx.Pick(g.rng, tailMoods))
	if o.MentionHandle != "" {
		b.WriteString(" @")
		b.WriteString(o.MentionHandle)
	}
	if o.Toxic {
		b.WriteString(". ")
		b.WriteString(randx.Pick(g.rng, toxicPhrases))
	}
	if o.Hashtags > 0 {
		seen := map[string]bool{}
		for i := 0; i < o.Hashtags && i < len(td.hashtags); i++ {
			tag := randx.Pick(g.rng, td.hashtags)
			if seen[tag] {
				continue
			}
			seen[tag] = true
			b.WriteString(" ")
			b.WriteString(tag)
		}
	}
	if o.URL != "" {
		b.WriteString(" ")
		b.WriteString(o.URL)
	}
	return b.String()
}

// Paraphrase lightly rewrites text: it swaps a few words for synonyms-ish
// fillers and may drop a trailing token, keeping most of the token
// multiset so hashed-embedding cosine stays above the similarity
// threshold, but breaking exact identity.
func (g *Generator) Paraphrase(text string) string {
	words := strings.Fields(text)
	if len(words) == 0 {
		return text
	}
	fillers := []string{"really", "honestly", "truly", "definitely"}
	// Insert one filler at a random position.
	pos := g.rng.Intn(len(words))
	out := make([]string, 0, len(words)+1)
	out = append(out, words[:pos]...)
	out = append(out, randx.Pick(g.rng, fillers))
	out = append(out, words[pos:]...)
	// Occasionally drop the final non-hashtag word.
	if len(out) > 6 && g.rng.Bool(0.3) && !strings.HasPrefix(out[len(out)-1], "#") {
		out = out[:len(out)-1]
	}
	return strings.Join(out, " ")
}

// MigrationAnnouncement generates the tweet a migrating user posts to
// advertise their new Mastodon account. style controls where the handle
// appears, mirroring §3.1's two match sources:
//
//	0: handle in tweet text as @user@host
//	1: profile URL in tweet text (https://host/@user)
//	2: plain farewell with keywords only (handle is in the bio instead)
func (g *Generator) MigrationAnnouncement(style int, username, host string) string {
	var b strings.Builder
	openers := []string{
		"that's it, i'm done with this place.",
		"good bye twitter, it was a ride.",
		"bye bye twitter — see you on the other side.",
		"moving to mastodon like everyone else.",
		"the takeover was the last straw for me.",
	}
	b.WriteString(randx.Pick(g.rng, openers))
	switch style {
	case 0:
		b.WriteString(" find me at @")
		b.WriteString(username)
		b.WriteString("@")
		b.WriteString(host)
	case 1:
		b.WriteString(" new home: https://")
		b.WriteString(host)
		b.WriteString("/@")
		b.WriteString(username)
	default:
		b.WriteString(" mastodon details in my bio.")
	}
	tags := []string{"#TwitterMigration", "#Mastodon", "#ByeByeTwitter", "#GoodByeTwitter", "#MastodonMigration", "#RIPTwitter", "#MastodonSocial"}
	b.WriteString(" ")
	b.WriteString(randx.Pick(g.rng, tags))
	if g.rng.Bool(0.4) {
		b.WriteString(" ")
		b.WriteString(randx.Pick(g.rng, tags))
	}
	return b.String()
}

// Bio generates an account bio; withHandle embeds the Mastodon handle in
// it (the §3.1 metadata match path).
func (g *Generator) Bio(topic Topic, username, host string, withHandle bool) string {
	td := topics[topic]
	var b strings.Builder
	b.WriteString("posting about ")
	b.WriteString(randx.Pick(g.rng, td.nouns))
	b.WriteString(" and ")
	b.WriteString(randx.Pick(g.rng, td.nouns))
	b.WriteString(". views my own.")
	if withHandle {
		if g.rng.Bool(0.5) {
			b.WriteString(" @")
			b.WriteString(username)
			b.WriteString("@")
			b.WriteString(host)
		} else {
			b.WriteString(" https://")
			b.WriteString(host)
			b.WriteString("/@")
			b.WriteString(username)
		}
	}
	return b.String()
}

// Hashtags extracts the lowercase hashtags from a post.
func Hashtags(text string) []string {
	var out []string
	for _, f := range strings.Fields(text) {
		if strings.HasPrefix(f, "#") && len(f) > 1 {
			tag := strings.ToLower(strings.TrimRight(f, ".,;:!?"))
			if len(tag) > 1 {
				out = append(out, tag)
			}
		}
	}
	return out
}
