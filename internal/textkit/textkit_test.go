package textkit

import (
	"strings"
	"testing"

	"flock/internal/randx"
	"flock/internal/textsim"
)

func gen(seed uint64) *Generator {
	return NewGenerator(randx.New(seed))
}

func TestPostNonEmptyAllTopics(t *testing.T) {
	g := gen(1)
	for topic := Topic(0); int(topic) < NumTopics; topic++ {
		p := g.Post(PostOpts{Topic: topic, Hashtags: 2})
		if len(p) < 10 {
			t.Fatalf("topic %s post too short: %q", topic, p)
		}
	}
}

func TestPostDeterministic(t *testing.T) {
	a := gen(5).Post(PostOpts{Topic: TopicTech, Hashtags: 1})
	b := gen(5).Post(PostOpts{Topic: TopicTech, Hashtags: 1})
	if a != b {
		t.Fatalf("non-deterministic: %q vs %q", a, b)
	}
}

func TestPostHashtagsFromTopicPool(t *testing.T) {
	g := gen(2)
	p := g.Post(PostOpts{Topic: TopicMigration, Hashtags: 3})
	tags := Hashtags(p)
	if len(tags) == 0 {
		t.Fatalf("no hashtags in %q", p)
	}
	pool := map[string]bool{}
	for _, h := range HashtagsFor(TopicMigration) {
		pool[h] = true
	}
	for _, tag := range tags {
		if !pool[tag] {
			t.Fatalf("hashtag %q not in migration pool", tag)
		}
	}
}

func TestPostToxicContainsPhrase(t *testing.T) {
	g := gen(3)
	p := g.Post(PostOpts{Topic: TopicPolitics, Toxic: true})
	found := false
	for _, phrase := range ToxicPhrases() {
		if strings.Contains(p, phrase) {
			found = true
		}
	}
	if !found {
		t.Fatalf("toxic post lacks toxic phrase: %q", p)
	}
}

func TestPostCleanLacksToxicPhrase(t *testing.T) {
	g := gen(4)
	for i := 0; i < 50; i++ {
		p := g.Post(PostOpts{Topic: TopicMusic})
		for _, phrase := range ToxicPhrases() {
			if strings.Contains(p, phrase) {
				t.Fatalf("clean post contains toxic phrase: %q", p)
			}
		}
	}
}

func TestPostMentionAndURL(t *testing.T) {
	g := gen(6)
	p := g.Post(PostOpts{Topic: TopicAI, MentionHandle: "alice", URL: "https://sigmoid.social/@alice"})
	if !strings.Contains(p, "@alice") || !strings.Contains(p, "https://sigmoid.social/@alice") {
		t.Fatalf("mention/url missing: %q", p)
	}
}

func TestParaphraseSimilarNotIdentical(t *testing.T) {
	g := gen(7)
	for i := 0; i < 30; i++ {
		orig := g.Post(PostOpts{Topic: TopicTech, Hashtags: 1})
		para := g.Paraphrase(orig)
		if para == orig {
			t.Fatalf("paraphrase identical to original: %q", orig)
		}
		if sim := textsim.Similarity(orig, para); sim < textsim.DefaultThreshold {
			t.Fatalf("paraphrase similarity %v below threshold\norig: %q\npara: %q", sim, orig, para)
		}
	}
}

func TestParaphraseEmpty(t *testing.T) {
	if got := gen(8).Paraphrase(""); got != "" {
		t.Fatalf("paraphrase of empty = %q", got)
	}
}

func TestMigrationAnnouncementStyles(t *testing.T) {
	g := gen(9)
	s0 := g.MigrationAnnouncement(0, "alice", "mastodon.social")
	if !strings.Contains(s0, "@alice@mastodon.social") {
		t.Fatalf("style 0 missing handle: %q", s0)
	}
	s1 := g.MigrationAnnouncement(1, "bob", "fosstodon.org")
	if !strings.Contains(s1, "https://fosstodon.org/@bob") {
		t.Fatalf("style 1 missing URL: %q", s1)
	}
	s2 := g.MigrationAnnouncement(2, "carol", "hachyderm.io")
	if strings.Contains(s2, "hachyderm.io") {
		t.Fatalf("style 2 leaked the host: %q", s2)
	}
	if !strings.Contains(s2, "#") {
		t.Fatalf("style 2 missing hashtags: %q", s2)
	}
}

func TestBioHandleEmbedding(t *testing.T) {
	g := gen(10)
	saw := map[bool]bool{}
	for i := 0; i < 20; i++ {
		bio := g.Bio(TopicHistory, "dana", "historians.social", true)
		hasAt := strings.Contains(bio, "@dana@historians.social")
		hasURL := strings.Contains(bio, "https://historians.social/@dana")
		if !hasAt && !hasURL {
			t.Fatalf("bio with handle lacks both forms: %q", bio)
		}
		saw[hasAt] = true
	}
	if !saw[true] || !saw[false] {
		t.Log("bio only produced one handle style in 20 draws (acceptable but unusual)")
	}
	plain := g.Bio(TopicHistory, "dana", "historians.social", false)
	if strings.Contains(plain, "historians.social") {
		t.Fatalf("handle leaked into plain bio: %q", plain)
	}
}

func TestHashtagsExtraction(t *testing.T) {
	tags := Hashtags("leaving now #TwitterMigration, hello #Fediverse! plain words #")
	if len(tags) != 2 {
		t.Fatalf("tags = %v", tags)
	}
	if tags[0] != "#twittermigration" || tags[1] != "#fediverse" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestTopicString(t *testing.T) {
	if TopicFediverse.String() != "fediverse" || TopicMusic.String() != "music" {
		t.Fatal("topic names")
	}
	if Topic(99).String() != "unknown" {
		t.Fatal("unknown topic name")
	}
}

func BenchmarkPost(b *testing.B) {
	g := gen(1)
	for i := 0; i < b.N; i++ {
		g.Post(PostOpts{Topic: Topic(i % NumTopics), Hashtags: 2})
	}
}
