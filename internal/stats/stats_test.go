package stats

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF misbehaves")
	}
	if pts := e.Points(10); pts != nil {
		t.Fatal("empty ECDF has points")
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		e := NewECDF(raw)
		prev := -1.0
		for _, x := range []float64{-1e9, -10, 0, 1, 42, 1e9} {
			y := e.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Median(); got != 30 {
		t.Fatalf("median = %v", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	if got := e.Quantile(0.2); got != 10 {
		t.Fatalf("q0.2 = %v", got)
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewECDF(nil).Quantile(0.5)
}

func TestPoints(t *testing.T) {
	var samples []float64
	for i := 1; i <= 100; i++ {
		samples = append(samples, float64(i))
	}
	pts := NewECDF(samples).Points(10)
	if len(pts) != 10 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[9].Y != 1 {
		t.Fatalf("last point y = %v", pts[9].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("points not monotone")
		}
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
}

func TestDescribeEmpty(t *testing.T) {
	if s := Describe(nil); s.N != 0 {
		t.Fatal("empty describe")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty helpers")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Median([]float64{1, 100, 3}) != 3 {
		t.Fatal("median")
	}
}

func TestTopShareConcentration(t *testing.T) {
	// One giant group and 99 singletons: top 1% (= the giant) holds
	// 901/1000 of the mass.
	counts := []int{901}
	for i := 0; i < 99; i++ {
		counts = append(counts, 1)
	}
	pts := TopShare(counts, 100)
	if len(pts) != 100 {
		t.Fatalf("%d points", len(pts))
	}
	if math.Abs(pts[0].Y-0.901) > 1e-9 {
		t.Fatalf("top 1%% share = %v", pts[0].Y)
	}
	if pts[99].Y != 1 {
		t.Fatalf("top 100%% share = %v", pts[99].Y)
	}
}

func TestTopShareMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		total := 0
		for i, v := range raw {
			counts[i] = int(v)
			total += int(v)
		}
		pts := TopShare(counts, 50)
		if total == 0 {
			return pts == nil
		}
		prev := 0.0
		for _, p := range pts {
			if p.Y < prev-1e-12 || p.Y > 1+1e-12 {
				return false
			}
			prev = p.Y
		}
		return math.Abs(pts[len(pts)-1].Y-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopShareBy(t *testing.T) {
	// Rank by size, accumulate migrants: the big-but-few-migrants group
	// still ranks first.
	rank := []int{1000, 10, 5, 1}
	mass := []int{50, 40, 5, 5}
	pts := TopShareBy(rank, mass, 4)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Y != 0.5 {
		t.Fatalf("top 25%% = %v, want 0.5", pts[0].Y)
	}
	if pts[1].Y != 0.9 {
		t.Fatalf("top 50%% = %v, want 0.9", pts[1].Y)
	}
	if pts[3].Y != 1 {
		t.Fatalf("top 100%% = %v", pts[3].Y)
	}
}

func TestTopShareByMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TopShareBy([]int{1}, []int{1, 2}, 10)
}

func TestShareOfTopFraction(t *testing.T) {
	counts := []int{96, 1, 1, 1} // top 25% of 4 groups = biggest group
	got := ShareOfTopFraction(counts, 0.25)
	if math.Abs(got-96.0/99.0) > 1e-9 {
		t.Fatalf("share = %v", got)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Fatalf("even gini = %v", g)
	}
	g := Gini([]int{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated gini = %v", g)
	}
	if Gini(nil) != 0 {
		t.Fatal("empty gini")
	}
}

func TestTopK(t *testing.T) {
	counts := map[string]int{"#fediverse": 50, "#mastodon": 50, "#nowplaying": 10, "#rare": 1}
	rows := TopK(counts, 3)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Tie between fediverse and mastodon broken alphabetically.
	if rows[0].Key != "#fediverse" || rows[1].Key != "#mastodon" {
		t.Fatalf("order %v", rows)
	}
	if rows[2].Key != "#nowplaying" {
		t.Fatalf("third %v", rows[2])
	}
}

func TestTopKAll(t *testing.T) {
	rows := TopK(map[string]int{"a": 1}, 0)
	if len(rows) != 1 {
		t.Fatal("k=0 should return all")
	}
}

func TestQuantileBuckets(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := QuantileBuckets(values, 4)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, b[i], want[i], b)
		}
	}
}

func TestQuantileBucketsUnsorted(t *testing.T) {
	values := []float64{8, 1, 5, 3}
	b := QuantileBuckets(values, 2)
	if b[0] != 1 || b[1] != 0 {
		t.Fatalf("buckets %v", b)
	}
}

func TestQuantileBucketsProperty(t *testing.T) {
	f := func(raw []uint8, nb uint8) bool {
		n := int(nb%8) + 1
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v)
		}
		b := QuantileBuckets(values, n)
		if len(b) != len(values) {
			return false
		}
		for _, v := range b {
			if v < 0 || v >= n {
				return false
			}
		}
		// Larger value never lands in a smaller bucket.
		for i := range values {
			for j := range values {
				if values[i] < values[j] && b[i] > b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChord(t *testing.T) {
	c := NewChord()
	c.Add("mastodon.social", "sigmoid.social", 3)
	c.Add("mastodon.social", "historians.social", 2)
	c.Add("mastodon.online", "sigmoid.social", 1)
	c.Add("mastodon.social", "sigmoid.social", 1)

	if got := c.Flow("mastodon.social", "sigmoid.social"); got != 4 {
		t.Fatalf("flow = %d", got)
	}
	if c.Total() != 7 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Outflow("mastodon.social") != 6 {
		t.Fatalf("outflow = %d", c.Outflow("mastodon.social"))
	}
	if c.Inflow("sigmoid.social") != 5 {
		t.Fatalf("inflow = %d", c.Inflow("sigmoid.social"))
	}
	top := c.TopFlows(2)
	if len(top) != 2 || top[0].Count != 4 || top[0].To != "sigmoid.social" {
		t.Fatalf("top flows %v", top)
	}
	if c.Flow("unknown", "x") != 0 || c.Outflow("unknown") != 0 || c.Inflow("unknown") != 0 {
		t.Fatal("unknown labels should be zero")
	}
}

func TestChordMatrixStaysSquare(t *testing.T) {
	c := NewChord()
	labels := []string{"a", "b", "c", "d", "e"}
	for i, from := range labels {
		for j, to := range labels {
			c.Add(from, to, i+j)
		}
	}
	if len(c.Flows) != 5 {
		t.Fatalf("%d rows", len(c.Flows))
	}
	for _, row := range c.Flows {
		if len(row) != 5 {
			t.Fatalf("row length %d", len(row))
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.9604); got != "96.04%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestInts(t *testing.T) {
	out := Ints([]int{1, 2})
	if len(out) != 2 || out[1] != 2.0 {
		t.Fatal("Ints")
	}
}

func TestTopShareRealistic(t *testing.T) {
	// Zipf-ish instance sizes: verify the "top 25% hold ~95%+" shape the
	// paper reports is measurable by this code.
	var counts []int
	for i := 1; i <= 100; i++ {
		counts = append(counts, int(10000/math.Pow(float64(i), 1.5))+1)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	share := ShareOfTopFraction(counts, 0.25)
	if share < 0.8 {
		t.Fatalf("top-25%% share of zipf sizes = %v, want > 0.8", share)
	}
}

func BenchmarkECDFBuild(b *testing.B) {
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = float64(i * 7 % 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewECDF(samples)
	}
}

func BenchmarkTopShare(b *testing.B) {
	counts := make([]int, 16000)
	for i := range counts {
		counts[i] = i % 500
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopShare(counts, 100)
	}
}

func TestECDFJSONRoundTrip(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1,2,2,3]" {
		t.Fatalf("marshalled ECDF = %s", b)
	}
	// Same multiset, different input order: identical bytes.
	b2, err := json.Marshal(NewECDF([]float64{2, 2, 3, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("order-dependent marshal: %s vs %s", b, b2)
	}
	var back ECDF
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.Median() != 2 {
		t.Fatalf("round-trip ECDF: n=%d median=%v", back.N(), back.Median())
	}
	var empty *ECDF = NewECDF(nil)
	if b, _ := json.Marshal(empty); string(b) != "[]" {
		t.Fatalf("empty ECDF = %s", b)
	}
}
