package stats

import "encoding/json"

// MarshalJSON encodes the ECDF as its sorted sample array, giving a
// stable byte representation: two ECDFs over the same multiset of
// samples marshal identically regardless of input order. The analysis
// determinism tests rely on this to compare whole reports byte-wise.
func (e *ECDF) MarshalJSON() ([]byte, error) {
	if e.sorted == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(e.sorted)
}

// UnmarshalJSON restores an ECDF marshalled by MarshalJSON. The decoded
// samples are re-sorted, so hand-edited inputs stay valid.
func (e *ECDF) UnmarshalJSON(b []byte) error {
	var samples []float64
	if err := json.Unmarshal(b, &samples); err != nil {
		return err
	}
	*e = *NewECDF(samples)
	return nil
}
