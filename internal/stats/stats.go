// Package stats implements the descriptive statistics the paper's
// analysis uses: empirical CDFs (most figures are CDF plots), quantiles
// and medians, top-share/Lorenz concentration curves (Fig. 5), histograms
// and frequency tables (Figs. 4, 12, 15), and the chord matrix behind the
// instance-switching plot (Fig. 9).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. It stores a sorted copy of the input.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples. The input slice is not modified.
// An empty input yields a valid ECDF whose At is always 0.
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method on the sorted samples. It panics on empty data.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Median is Quantile(0.5).
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF as the paper does. If the ECDF has fewer samples than
// n, one point per sample is returned.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 {
		return nil
	}
	if n <= 0 || n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(e.sorted) / n
		if idx > len(e.sorted) {
			idx = len(e.sorted)
		}
		x := e.sorted[idx-1]
		pts = append(pts, Point{X: x, Y: float64(idx) / float64(len(e.sorted))})
	}
	return pts
}

// Point is an (x, y) pair on a curve.
type Point struct {
	X, Y float64
}

// Describe summarizes a sample.
type Summary struct {
	N             int
	Mean, Median  float64
	Min, Max      float64
	P25, P75, P90 float64
	StdDev        float64
}

// Describe computes a Summary. An empty input returns the zero Summary.
func Describe(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	e := NewECDF(samples)
	var sum, sum2 float64
	for _, v := range samples {
		sum += v
		sum2 += v * v
	}
	n := float64(len(samples))
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(samples),
		Mean:   mean,
		Median: e.Median(),
		Min:    e.sorted[0],
		Max:    e.sorted[len(e.sorted)-1],
		P25:    e.Quantile(0.25),
		P75:    e.Quantile(0.75),
		P90:    e.Quantile(0.90),
		StdDev: math.Sqrt(variance),
	}
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Median returns the sample median (0 for empty input).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	return NewECDF(samples).Median()
}

// TopShare computes the paper's Fig. 5 curve: for each fraction p of the
// largest groups (by count, descending), the fraction of the total mass
// they hold. steps controls the curve resolution (e.g. 100 gives 1%
// increments). counts are per-group sizes (e.g. users per instance).
func TopShare(counts []int, steps int) []Point {
	if len(counts) == 0 || steps <= 0 {
		return nil
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, c := range sorted {
		total += c
	}
	if total == 0 {
		return nil
	}
	// Prefix sums.
	prefix := make([]int, len(sorted)+1)
	for i, c := range sorted {
		prefix[i+1] = prefix[i] + c
	}
	pts := make([]Point, 0, steps)
	for s := 1; s <= steps; s++ {
		frac := float64(s) / float64(steps)
		k := int(math.Ceil(frac * float64(len(sorted))))
		if k < 1 {
			k = 1
		}
		if k > len(sorted) {
			k = len(sorted)
		}
		pts = append(pts, Point{X: frac, Y: float64(prefix[k]) / float64(total)})
	}
	return pts
}

// TopShareBy generalizes TopShare: groups are ranked descending by a
// separate key (e.g. instance size from the index) while the curve
// accumulates a different mass (e.g. migrated users). Fig. 5 ranks
// instances by user count and plots the share of migrated users.
func TopShareBy(rank, mass []int, steps int) []Point {
	if len(rank) != len(mass) {
		panic("stats: TopShareBy length mismatch")
	}
	if len(rank) == 0 || steps <= 0 {
		return nil
	}
	idx := make([]int, len(rank))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rank[idx[a]] > rank[idx[b]] })
	total := 0
	for _, m := range mass {
		total += m
	}
	if total == 0 {
		return nil
	}
	prefix := make([]int, len(idx)+1)
	for i, j := range idx {
		prefix[i+1] = prefix[i] + mass[j]
	}
	pts := make([]Point, 0, steps)
	for s := 1; s <= steps; s++ {
		frac := float64(s) / float64(steps)
		k := int(math.Ceil(frac * float64(len(idx))))
		if k < 1 {
			k = 1
		}
		if k > len(idx) {
			k = len(idx)
		}
		pts = append(pts, Point{X: frac, Y: float64(prefix[k]) / float64(total)})
	}
	return pts
}

// ShareOfTopFraction returns the fraction of total mass held by the top
// frac of groups (frac in (0,1]).
func ShareOfTopFraction(counts []int, frac float64) float64 {
	pts := TopShare(counts, 1000)
	if pts == nil {
		return 0
	}
	idx := int(math.Ceil(frac*1000)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(pts) {
		idx = len(pts) - 1
	}
	return pts[idx].Y
}

// Gini computes the Gini coefficient of the counts (0 = perfectly even,
// ->1 = fully concentrated).
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, counts)
	sort.Ints(sorted)
	var total, weighted float64
	for i, c := range sorted {
		total += float64(c)
		weighted += float64(i+1) * float64(c)
	}
	if total == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*total) - float64(n+1)/float64(n)
}

// FreqCount is one row of a frequency table.
type FreqCount struct {
	Key   string
	Count int
}

// TopK returns the k most frequent keys in counts, ties broken
// alphabetically for determinism.
func TopK(counts map[string]int, k int) []FreqCount {
	rows := make([]FreqCount, 0, len(counts))
	for key, c := range counts {
		rows = append(rows, FreqCount{Key: key, Count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// QuantileBuckets assigns each value to one of nBuckets quantile buckets
// (0 = smallest values). Values are bucketed by their rank; ties share a
// bucket boundary deterministically. It returns the bucket index per
// input position.
func QuantileBuckets(values []float64, nBuckets int) []int {
	if nBuckets <= 0 {
		panic("stats: QuantileBuckets with non-positive bucket count")
	}
	n := len(values)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	for rank, i := range idx {
		b := rank * nBuckets / n
		if b >= nBuckets {
			b = nBuckets - 1
		}
		out[i] = b
	}
	return out
}

// Chord is a square flow matrix between labelled nodes, as used for the
// instance-switching plot (Fig. 9).
type Chord struct {
	Labels []string
	index  map[string]int
	Flows  [][]int
}

// NewChord creates an empty chord matrix; labels are added lazily by Add.
func NewChord() *Chord {
	return &Chord{index: make(map[string]int)}
}

func (c *Chord) idx(label string) int {
	if i, ok := c.index[label]; ok {
		return i
	}
	i := len(c.Labels)
	c.index[label] = i
	c.Labels = append(c.Labels, label)
	for j := range c.Flows {
		c.Flows[j] = append(c.Flows[j], 0)
	}
	c.Flows = append(c.Flows, make([]int, i+1))
	return i
}

// Add records n units of flow from -> to.
func (c *Chord) Add(from, to string, n int) {
	i, j := c.idx(from), c.idx(to)
	c.Flows[i][j] += n
}

// Flow returns the flow from -> to (0 if either label is unknown).
func (c *Chord) Flow(from, to string) int {
	i, ok1 := c.index[from]
	j, ok2 := c.index[to]
	if !ok1 || !ok2 {
		return 0
	}
	return c.Flows[i][j]
}

// Total returns the sum of all flows.
func (c *Chord) Total() int {
	t := 0
	for _, row := range c.Flows {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Outflow returns total flow leaving label.
func (c *Chord) Outflow(label string) int {
	i, ok := c.index[label]
	if !ok {
		return 0
	}
	t := 0
	for _, v := range c.Flows[i] {
		t += v
	}
	return t
}

// Inflow returns total flow entering label.
func (c *Chord) Inflow(label string) int {
	j, ok := c.index[label]
	if !ok {
		return 0
	}
	t := 0
	for _, row := range c.Flows {
		t += row[j]
	}
	return t
}

// TopFlows returns the k largest (from, to, count) edges, deterministic
// order (count desc, then labels).
func (c *Chord) TopFlows(k int) []ChordFlow {
	var out []ChordFlow
	for i, row := range c.Flows {
		for j, v := range row {
			if v > 0 {
				out = append(out, ChordFlow{From: c.Labels[i], To: c.Labels[j], Count: v})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ChordFlow is one directed edge of a chord matrix.
type ChordFlow struct {
	From, To string
	Count    int
}

// Percent formats a fraction as the paper prints them ("96.00%").
func Percent(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}

// Ints converts an int slice to float64 for the ECDF helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
