// Package report renders every figure and table of the paper as text:
// series as aligned columns with spark bars, CDFs as fixed-quantile
// tables, and the headline statistics as a paper-vs-measured comparison.
// The benchmark harness and the cmd tools print these, so a run of the
// reproduction regenerates the evaluation section in readable form.
package report

import (
	"fmt"
	"sort"
	"strings"

	"flock/internal/analysis"
	"flock/internal/core"
	"flock/internal/stats"
	"flock/internal/trendsvc"
	"flock/internal/vclock"
)

// bar renders a proportional bar of max width w.
func bar(v, max float64, w int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	n := int(v / max * float64(w))
	if n > w {
		n = w
	}
	return strings.Repeat("█", n)
}

// Fig1Trends renders Fig. 1: search interest series.
func Fig1Trends() string {
	var b strings.Builder
	b.WriteString("Figure 1: Google-Trends-style search interest (0-100)\n")
	for _, term := range trendsvc.Terms() {
		pts := trendsvc.Series(term)
		b.WriteString(fmt.Sprintf("\n  %q\n", term))
		for i := 0; i < len(pts); i += 4 {
			p := pts[i]
			b.WriteString(fmt.Sprintf("  %s  %3d %s\n", p.Date, p.Interest, bar(float64(p.Interest), 100, 40)))
		}
	}
	return b.String()
}

// Fig2Collection renders the collected-tweets time series.
func Fig2Collection(c *analysis.CollectionSeries) string {
	var b strings.Builder
	b.WriteString("Figure 2: collected tweets per day (instance links vs keywords)\n")
	max := 0.0
	for i := range c.Days {
		if v := float64(c.InstanceLinks[i] + c.Keywords[i]); v > max {
			max = v
		}
	}
	for i := range c.Days {
		total := c.InstanceLinks[i] + c.Keywords[i]
		if total == 0 && i%2 == 1 {
			continue
		}
		b.WriteString(fmt.Sprintf("  %s  links=%5d  keywords=%6d %s\n",
			c.Days[i], c.InstanceLinks[i], c.Keywords[i], bar(float64(total), max, 36)))
	}
	return b.String()
}

// Fig3Activity renders the weekly fediverse activity aggregate.
func Fig3Activity(a *analysis.ActivitySeries) string {
	var b strings.Builder
	b.WriteString("Figure 3: weekly activity on crawled instances\n")
	b.WriteString("  week        registrations   logins  statuses\n")
	for i := range a.Weeks {
		b.WriteString(fmt.Sprintf("  %s  %13d %8d %9d\n",
			a.Weeks[i], a.Registrations[i], a.Logins[i], a.Statuses[i]))
	}
	return b.String()
}

// Fig4TopInstances renders the top-30 instance histogram.
func Fig4TopInstances(c *analysis.Centralization) string {
	var b strings.Builder
	b.WriteString("Figure 4: top instances by migrated users (account created before/after acquisition)\n")
	max := 0.0
	for _, row := range c.TopInstances {
		if float64(row.Total()) > max {
			max = float64(row.Total())
		}
	}
	for _, row := range c.TopInstances {
		b.WriteString(fmt.Sprintf("  %-34s %6d (pre %4d / post %5d) %s\n",
			row.Domain, row.Total(), row.Pre, row.Post, bar(float64(row.Total()), max, 30)))
	}
	return b.String()
}

// Fig5TopShare renders the centralization curve.
func Fig5TopShare(c *analysis.Centralization) string {
	var b strings.Builder
	b.WriteString("Figure 5: % of migrated users on the top % of instances (by size)\n")
	for _, p := range c.TopShareCurve {
		pct := int(p.X * 100)
		if pct%5 != 0 {
			continue
		}
		b.WriteString(fmt.Sprintf("  top %3d%% of instances -> %6.2f%% of users %s\n",
			pct, p.Y*100, bar(p.Y, 1, 40)))
	}
	b.WriteString(fmt.Sprintf("  headline: top 25%% hold %s of users (paper: 96%%)\n", stats.Percent(c.Top25Share)))
	return b.String()
}

// cdfTable renders an ECDF at fixed quantiles.
func cdfTable(label string, e *stats.ECDF) string {
	if e == nil || e.N() == 0 {
		return fmt.Sprintf("  %-22s (no data)\n", label)
	}
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	var cells []string
	for _, q := range qs {
		cells = append(cells, fmt.Sprintf("p%02.0f=%.3g", q*100, e.Quantile(q)))
	}
	return fmt.Sprintf("  %-22s n=%-6d %s\n", label, e.N(), strings.Join(cells, "  "))
}

// Fig6SizeQuantiles renders the instance-size bucket CDFs.
func Fig6SizeQuantiles(c *analysis.Centralization) string {
	var b strings.Builder
	b.WriteString("Figure 6: users on different-sized instances (post-acquisition, 30-day-old cohort)\n")
	for _, bk := range c.Buckets {
		b.WriteString(fmt.Sprintf("  bucket %-14s instances=%-5d users=%d\n", bk.Label, bk.Instances, bk.Users))
		b.WriteString(cdfTable("    followers", bk.Followers))
		b.WriteString(cdfTable("    followees", bk.Followees))
		b.WriteString(cdfTable("    statuses", bk.Statuses))
	}
	sv := c.SingleVsLargest
	b.WriteString(fmt.Sprintf("  single-user vs largest: followers %+.1f%% followees %+.1f%% statuses %+.1f%%\n",
		sv.FollowerBoost*100, sv.FolloweeBoost*100, sv.StatusBoost*100))
	b.WriteString("  (paper: +64.88% followers, +99.04% followees, +121.14% statuses)\n")
	return b.String()
}

// Fig7Networks renders the platform network-size CDFs.
func Fig7Networks(n *analysis.NetworkSizes) string {
	var b strings.Builder
	b.WriteString("Figure 7: follower/followee counts of migrated users\n")
	b.WriteString(cdfTable("twitter followers", n.TwitterFollowers))
	b.WriteString(cdfTable("twitter followees", n.TwitterFollowees))
	b.WriteString(cdfTable("mastodon followers", n.MastodonFollowers))
	b.WriteString(cdfTable("mastodon followees", n.MastodonFollowees))
	b.WriteString(fmt.Sprintf("  medians: twitter %g/%g, mastodon %g/%g (paper: 744/787 vs 38/48)\n",
		n.MedianTwitterFollowers, n.MedianTwitterFollowees,
		n.MedianMastodonFollowers, n.MedianMastodonFollowees))
	b.WriteString(fmt.Sprintf("  no followers: twitter %s, mastodon %s (paper: 0.11%%, 6.01%%)\n",
		stats.Percent(n.NoTwitterFollowersFrac), stats.Percent(n.NoMastodonFollowersFrac)))
	return b.String()
}

// Fig8Contagion renders the followee-migration CDFs.
func Fig8Contagion(c *analysis.Contagion) string {
	var b strings.Builder
	b.WriteString("Figure 8: fraction of each user's Twitter followees that...\n")
	b.WriteString(cdfTable("migrated", c.FracMigrated))
	b.WriteString(cdfTable("migrated before user", c.FracBefore))
	b.WriteString(cdfTable("chose same instance", c.FracSameInstance))
	b.WriteString(fmt.Sprintf("  means: migrated %s (paper 5.99%%), before %s (45.76%%), same instance %s (14.72%%)\n",
		stats.Percent(c.MeanFracMigrated), stats.Percent(c.MeanFracBefore), stats.Percent(c.MeanFracSameInstance)))
	b.WriteString(fmt.Sprintf("  none migrated: %s (paper 3.94%%); user first: %s (4.98%%); user last: %s (4.58%%)\n",
		stats.Percent(c.NoneMigratedFrac), stats.Percent(c.UserFirstFrac), stats.Percent(c.UserLastFrac)))
	b.WriteString(fmt.Sprintf("  mastodon.social share of co-location: %s (paper 30.68%%)\n",
		stats.Percent(c.MastodonSocialShareOfSame)))
	return b.String()
}

// Fig9Chord renders the switching chord as its top flows.
func Fig9Chord(s *analysis.Switching) string {
	var b strings.Builder
	b.WriteString("Figure 9: instance switches (first -> second)\n")
	flows := s.Chord.TopFlows(20)
	if len(flows) == 0 {
		b.WriteString("  (no switches observed)\n")
		return b.String()
	}
	for _, f := range flows {
		b.WriteString(fmt.Sprintf("  %-30s -> %-30s %4d\n", f.From, f.To, f.Count))
	}
	b.WriteString(fmt.Sprintf("  switchers: %s of users (paper 4.09%%), %s post-takeover (97.22%%), %s leave flagship/general servers\n",
		stats.Percent(s.SwitcherFrac), stats.Percent(s.PostTakeoverFrac), stats.Percent(s.FlagshipToTopicalFrac)))
	return b.String()
}

// Fig10SwitchInfluence renders the switch ego-network CDFs.
func Fig10SwitchInfluence(s *analysis.Switching) string {
	var b strings.Builder
	b.WriteString("Figure 10: switchers' followees at first vs second instance\n")
	b.WriteString(cdfTable("joined first instance", s.FracFirst))
	b.WriteString(cdfTable("joined second instance", s.FracSecond))
	b.WriteString(cdfTable("reached second first", s.FracSecondBefore))
	b.WriteString(fmt.Sprintf("  means: first %s (paper 11.4%%), second %s (46.98%%), before-user %s (77.42%%)\n",
		stats.Percent(s.MeanFracFirst), stats.Percent(s.MeanFracSecond), stats.Percent(s.MeanFracSecondBefore)))
	return b.String()
}

// Fig11Daily renders the daily cross-platform activity.
func Fig11Daily(d *analysis.DailyActivity) string {
	var b strings.Builder
	b.WriteString("Figure 11: daily posts by migrated users\n")
	max := 0.0
	for i := range d.Days {
		if v := float64(d.Tweets[i]); v > max {
			max = v
		}
	}
	for i := range d.Days {
		if i%2 == 1 {
			continue
		}
		b.WriteString(fmt.Sprintf("  %s  tweets=%6d statuses=%6d %s\n",
			d.Days[i], d.Tweets[i], d.Statuses[i], bar(float64(d.Statuses[i]), max, 30)))
	}
	return b.String()
}

// Fig12Sources renders the tweet-source table.
func Fig12Sources(s *analysis.Sources) string {
	var b strings.Builder
	b.WriteString("Figure 12: top tweet sources before/after takeover\n")
	for _, row := range s.Top30 {
		marker := ""
		if analysis.CrossposterSources[row.Name] {
			marker = "  <- cross-poster"
		}
		b.WriteString(fmt.Sprintf("  %-32s pre=%7d post=%8d (%+.0f%%)%s\n",
			row.Name, row.Pre, row.Post, row.Growth()*100, marker))
	}
	names := make([]string, 0, len(s.CrossposterGrowth))
	for name := range s.CrossposterGrowth {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString(fmt.Sprintf("  growth %-32s %+.0f%% (paper: ~+1129%% and ~+1732%%)\n", name, s.CrossposterGrowth[name]*100))
	}
	return b.String()
}

// Fig13Crossposters renders the daily bridge-user series.
func Fig13Crossposters(s *analysis.Sources) string {
	var b strings.Builder
	b.WriteString("Figure 13: daily users of cross-posting tools\n")
	max := 0.0
	for _, n := range s.DailyCrossposterUsers {
		if float64(n) > max {
			max = float64(n)
		}
	}
	for d, n := range s.DailyCrossposterUsers {
		if d%2 == 1 {
			continue
		}
		b.WriteString(fmt.Sprintf("  %s  %5d %s\n", vclock.FormatDay(vclock.DayStart(d)), n, bar(float64(n), max, 30)))
	}
	b.WriteString(fmt.Sprintf("  bridge users: %s of migrants (paper 5.73%%)\n", stats.Percent(s.CrossposterUserFrac)))
	return b.String()
}

// Fig14Overlap renders the content-similarity CDFs.
func Fig14Overlap(o *analysis.Overlap) string {
	var b strings.Builder
	b.WriteString("Figure 14: fraction of each user's statuses identical/similar to their tweets\n")
	b.WriteString(cdfTable("identical", o.IdenticalFrac))
	b.WriteString(cdfTable("similar (cos>=0.7)", o.SimilarFrac))
	b.WriteString(fmt.Sprintf("  means: identical %s (paper 1.53%%), similar %s (16.57%%)\n",
		stats.Percent(o.MeanIdentical), stats.Percent(o.MeanSimilar)))
	b.WriteString(fmt.Sprintf("  completely different (<%s similar): %s of users (paper 84.45%%)\n",
		stats.Percent(analysis.DifferentFloor), stats.Percent(o.CompletelyDifferentFrac)))
	return b.String()
}

// Fig15Hashtags renders the side-by-side hashtag tables.
func Fig15Hashtags(h *analysis.HashtagTables) string {
	var b strings.Builder
	b.WriteString("Figure 15: top hashtags on each platform\n")
	b.WriteString(fmt.Sprintf("  %-4s %-28s %-10s %-28s %s\n", "rank", "twitter", "count", "mastodon", "count"))
	n := len(h.Twitter)
	if len(h.Mastodon) > n {
		n = len(h.Mastodon)
	}
	for i := 0; i < n && i < 30; i++ {
		tw, twc, ms, msc := "", "", "", ""
		if i < len(h.Twitter) {
			tw, twc = h.Twitter[i].Key, fmt.Sprint(h.Twitter[i].Count)
		}
		if i < len(h.Mastodon) {
			ms, msc = h.Mastodon[i].Key, fmt.Sprint(h.Mastodon[i].Count)
		}
		b.WriteString(fmt.Sprintf("  %-4d %-28s %-10s %-28s %s\n", i+1, tw, twc, ms, msc))
	}
	return b.String()
}

// Fig16Toxicity renders the toxicity CDFs and rates.
func Fig16Toxicity(x *analysis.ToxicityResult) string {
	var b strings.Builder
	b.WriteString("Figure 16: per-user toxic post fractions\n")
	b.WriteString(cdfTable("twitter", x.TweetToxicFrac))
	b.WriteString(cdfTable("mastodon", x.StatusToxicFrac))
	b.WriteString(fmt.Sprintf("  overall: %s of tweets toxic (paper 5.49%%), %s of statuses (2.80%%)\n",
		stats.Percent(x.OverallTweetToxic), stats.Percent(x.OverallStatusToxic)))
	b.WriteString(fmt.Sprintf("  per-user means: %s vs %s (paper 4.02%% vs 2.07%%)\n",
		stats.Percent(x.MeanUserTweetToxic), stats.Percent(x.MeanUserStatusToxic)))
	b.WriteString(fmt.Sprintf("  toxic on both platforms: %s of users (paper 14.26%%)\n",
		stats.Percent(x.BothPlatformsFrac)))
	return b.String()
}

// Retention renders the §8 future-work extension.
func Retention(r *analysis.RetentionResult) string {
	var b strings.Builder
	b.WriteString("Extension (paper §8 future work): retention at end of study window\n")
	b.WriteString(fmt.Sprintf("  classified users: %d (active Mastodon accounts)\n", r.Classified))
	b.WriteString(fmt.Sprintf("  retained on Mastodon (posted in last %d days): %s\n",
		analysis.RetentionWindow, stats.Percent(r.RetainedFrac)))
	b.WriteString(fmt.Sprintf("  returned to Twitter only: %s\n", stats.Percent(r.ReturnedFrac)))
	b.WriteString(fmt.Sprintf("  lapsed on both: %s\n", stats.Percent(r.LapsedFrac)))
	b.WriteString(cdfTable("days active on mastodon", r.DaysActive))
	return b.String()
}

// Row is one line of the paper-vs-measured summary.
type Row struct {
	Name     string
	Paper    float64
	Measured float64
	// Percentage indicates the values print as percentages.
	Percentage bool
}

// SummaryRows extracts the headline paper-vs-measured comparisons.
func SummaryRows(res *core.Result) []Row {
	pct := func(name string, paper, measured float64) Row {
		return Row{Name: name, Paper: paper, Measured: measured, Percentage: true}
	}
	cov := res.Coverage
	twOK := 0.0
	msOK := 0.0
	down := 0.0
	if cov.Pairs > 0 {
		twOK = float64(cov.TwitterOK) / float64(cov.Pairs)
		msOK = float64(cov.MastodonOK) / float64(cov.Pairs)
		down = float64(cov.MastodonDown) / float64(cov.Pairs)
	}
	return []Row{
		pct("same username (§3.1)", 0.72, res.RQ1.SameUsernameFrac),
		pct("verified migrants (§3.1)", 0.04, res.RQ1.VerifiedFrac),
		pct("accounts pre-takeover (§4)", 0.21, res.RQ1.PreTakeoverAccountFrac),
		pct("twitter timeline coverage (§3.2)", 0.9488, twOK),
		pct("mastodon timeline coverage (§3.2)", 0.7922, msOK),
		pct("instance down (§3.2)", 0.1158, down),
		pct("users on top-25% instances (Fig 5)", 0.96, res.RQ1.Top25Share),
		pct("single-user instances (§4)", 0.1316, res.RQ1.SingleUserInstanceFrac),
		pct("followees migrated, mean (Fig 8)", 0.0599, res.Contagion.MeanFracMigrated),
		pct("followees before user (§5.2)", 0.4576, res.Contagion.MeanFracBefore),
		pct("followees same instance (§5.2)", 0.1472, res.Contagion.MeanFracSameInstance),
		pct("co-location on mastodon.social", 0.3068, res.Contagion.MastodonSocialShareOfSame),
		pct("instance switchers (§5.3)", 0.0409, res.Switching.SwitcherFrac),
		pct("switches post-takeover (§5.3)", 0.9722, res.Switching.PostTakeoverFrac),
		pct("switchers' followees at 2nd instance", 0.4698, res.Switching.MeanFracSecond),
		pct("followees at 2nd before user", 0.7742, res.Switching.MeanFracSecondBefore),
		pct("identical statuses, mean (§6.1)", 0.0153, res.Overlap.MeanIdentical),
		pct("similar statuses, mean (§6.1)", 0.1657, res.Overlap.MeanSimilar),
		pct("completely different users (§6.1)", 0.8445, res.Overlap.CompletelyDifferentFrac),
		pct("cross-poster users (§6.1)", 0.0573, res.Sources.CrossposterUserFrac),
		pct("toxic tweets (§6.3)", 0.0549, res.Toxicity.OverallTweetToxic),
		pct("toxic statuses (§6.3)", 0.028, res.Toxicity.OverallStatusToxic),
		pct("mean user tweet toxicity (§6.3)", 0.0402, res.Toxicity.MeanUserTweetToxic),
		pct("mean user status toxicity (§6.3)", 0.0207, res.Toxicity.MeanUserStatusToxic),
		pct("toxic on both platforms (§6.3)", 0.1426, res.Toxicity.BothPlatformsFrac),
	}
}

// Summary renders the paper-vs-measured table.
func Summary(res *core.Result) string {
	var b strings.Builder
	b.WriteString("Paper vs measured (this run)\n")
	b.WriteString(fmt.Sprintf("  pairs=%d, instances indexed=%d receiving=%d, followee sample=%d users / %d edges\n",
		res.Coverage.Pairs, res.Coverage.InstancesIndexed, res.Coverage.InstancesReceived,
		res.Coverage.FolloweesSampled, res.Coverage.FolloweeEdges))
	b.WriteString(fmt.Sprintf("  %-42s %10s %10s\n", "statistic", "paper", "measured"))
	for _, row := range SummaryRows(res) {
		if row.Percentage {
			b.WriteString(fmt.Sprintf("  %-42s %9.2f%% %9.2f%%\n", row.Name, row.Paper*100, row.Measured*100))
		} else {
			b.WriteString(fmt.Sprintf("  %-42s %10.3g %10.3g\n", row.Name, row.Paper, row.Measured))
		}
	}
	return b.String()
}

// All renders every figure plus the summary.
func All(res *core.Result) string {
	sections := []string{
		Fig1Trends(),
		Fig2Collection(res.Collection),
		Fig3Activity(res.Activity),
		Fig4TopInstances(res.RQ1),
		Fig5TopShare(res.RQ1),
		Fig6SizeQuantiles(res.RQ1),
		Fig7Networks(res.Networks),
		Fig8Contagion(res.Contagion),
		Fig9Chord(res.Switching),
		Fig10SwitchInfluence(res.Switching),
		Fig11Daily(res.Daily),
		Fig12Sources(res.Sources),
		Fig13Crossposters(res.Sources),
		Fig14Overlap(res.Overlap),
		Fig15Hashtags(res.Hashtags),
		Fig16Toxicity(res.Toxicity),
		Retention(res.Retention),
		Summary(res),
	}
	return strings.Join(sections, "\n")
}

// Figure renders one numbered figure (1-16). Unknown numbers return "".
func Figure(res *core.Result, n int) string {
	switch n {
	case 1:
		return Fig1Trends()
	case 2:
		return Fig2Collection(res.Collection)
	case 3:
		return Fig3Activity(res.Activity)
	case 4:
		return Fig4TopInstances(res.RQ1)
	case 5:
		return Fig5TopShare(res.RQ1)
	case 6:
		return Fig6SizeQuantiles(res.RQ1)
	case 7:
		return Fig7Networks(res.Networks)
	case 8:
		return Fig8Contagion(res.Contagion)
	case 9:
		return Fig9Chord(res.Switching)
	case 10:
		return Fig10SwitchInfluence(res.Switching)
	case 11:
		return Fig11Daily(res.Daily)
	case 12:
		return Fig12Sources(res.Sources)
	case 13:
		return Fig13Crossposters(res.Sources)
	case 14:
		return Fig14Overlap(res.Overlap)
	case 15:
		return Fig15Hashtags(res.Hashtags)
	case 16:
		return Fig16Toxicity(res.Toxicity)
	}
	return ""
}
