package report

import (
	"context"
	"strings"
	"testing"

	"flock/internal/core"
)

var cached *core.Result

func result(t testing.TB) *core.Result {
	if cached != nil {
		return cached
	}
	cfg := core.DefaultConfig(150)
	cfg.World.Seed = 13
	cfg.ScoreToxicity = false // keep report tests quick; local scoring
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached = res
	return res
}

func TestAllFiguresRender(t *testing.T) {
	res := result(t)
	for n := 1; n <= 16; n++ {
		out := Figure(res, n)
		if len(out) < 40 {
			t.Errorf("figure %d rendered only %d bytes:\n%s", n, len(out), out)
		}
		if !strings.Contains(out, "Figure") {
			t.Errorf("figure %d missing caption", n)
		}
	}
	if Figure(res, 99) != "" {
		t.Error("unknown figure number rendered")
	}
}

func TestSummaryHasAllRows(t *testing.T) {
	res := result(t)
	rows := SummaryRows(res)
	if len(rows) < 20 {
		t.Fatalf("only %d summary rows", len(rows))
	}
	out := Summary(res)
	for _, row := range rows {
		if !strings.Contains(out, row.Name) {
			t.Errorf("summary missing row %q", row.Name)
		}
	}
	if !strings.Contains(out, "paper") || !strings.Contains(out, "measured") {
		t.Error("summary header missing")
	}
}

func TestAllIncludesEverySection(t *testing.T) {
	res := result(t)
	out := All(res)
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "Figure 13", "Figure 14", "Figure 15",
		"Figure 16", "Paper vs measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All() missing %q", want)
		}
	}
}

func TestFig5MentionsHeadline(t *testing.T) {
	res := result(t)
	out := Fig5TopShare(res.RQ1)
	if !strings.Contains(out, "top 25% hold") {
		t.Error("Fig5 headline missing")
	}
}

func TestFig12MarksCrossposters(t *testing.T) {
	res := result(t)
	out := Fig12Sources(res.Sources)
	if !strings.Contains(out, "cross-poster") {
		t.Error("Fig12 does not mark bridge sources")
	}
}

func TestBar(t *testing.T) {
	if bar(5, 10, 10) != "█████" {
		t.Fatalf("bar = %q", bar(5, 10, 10))
	}
	if bar(20, 10, 10) != "██████████" {
		t.Fatal("bar not clamped")
	}
	if bar(1, 0, 10) != "" {
		t.Fatal("bar with zero max")
	}
}
