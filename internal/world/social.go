package world

import (
	"sort"

	"flock/internal/randx"
	"flock/internal/vclock"
)

// genMastodonGraph builds each migrant's Mastodon ego network. Mastodon
// follows are mostly re-established Twitter edges between migrants —
// which is exactly why Fig. 7's Mastodon medians sit at roughly the
// followee-migration rate times the Twitter medians — plus a
// dedication-driven sprinkle of native follows.
func (w *World) genMastodonGraph(rng *randx.Source) {
	for _, u := range w.Migrants {
		user := w.Users[u]
		r := rng.SplitN("mfollow", u)
		// Re-follow migrated Twitter followees. Dedicated users rebuild
		// more of their network.
		p := 0.45 + 0.4*user.Dedication
		for _, f := range w.Graph.Followees(u) {
			fu := w.Users[int(f)]
			if !fu.Migrated {
				continue
			}
			if r.Bool(p) {
				user.MastodonFollowees = append(user.MastodonFollowees, int(f))
				fu.MastodonFollowers = append(fu.MastodonFollowers, u)
			}
		}
		// Native follows: local-timeline discovery. Scales with
		// dedication, boosting small-instance users' networks (Fig. 6).
		user.NativeFollowees = r.Poisson(2 + 28*user.Dedication)
		user.NativeFollowers = r.Poisson(1 + 22*user.Dedication)
		if user.Silent {
			user.NativeFollowees /= 4
			user.NativeFollowers /= 6
		}
	}
	for _, u := range w.Migrants {
		sort.Ints(w.Users[u].MastodonFollowees)
		sort.Ints(w.Users[u].MastodonFollowers)
	}
}

// genActivity composes each instance's weekly activity series
// (registrations, logins, statuses) from three layers: the native
// baseline, the unmapped newcomer wave (Mastodon reported 1M+ sign-ups;
// we map only a fraction), and the mapped migrants' actual events.
func (w *World) genActivity(rng *randx.Source) {
	firstWeek := vclock.Week(vclock.StudyStart)
	lastWeek := vclock.Week(vclock.StudyEnd)
	nWeeks := lastWeek - firstWeek + 1
	takeoverWeek := vclock.Week(vclock.Takeover) - firstWeek

	// Mapped migrant events per (instance, week).
	regs := make([][]int, len(w.Instances))
	stats := make([][]int, len(w.Instances))
	logins := make([][]int, len(w.Instances))
	for i := range w.Instances {
		regs[i] = make([]int, nWeeks)
		stats[i] = make([]int, nWeeks)
		logins[i] = make([]int, nWeeks)
	}
	for _, u := range w.Migrants {
		user := w.Users[u]
		if wk := vclock.Week(user.MastodonCreatedAt) - firstWeek; wk >= 0 && wk < nWeeks {
			regs[user.FirstInstance][wk]++
		}
		if user.SecondInstance >= 0 {
			if wk := vclock.Week(user.SwitchedAt) - firstWeek; wk >= 0 && wk < nWeeks {
				regs[user.SecondInstance][wk]++
			}
		}
		seen := map[[2]int]bool{}
		for _, s := range w.StatusesByUser[u] {
			if wk := vclock.Week(s.Time) - firstWeek; wk >= 0 && wk < nWeeks {
				stats[s.InstanceID][wk]++
				key := [2]int{s.InstanceID, wk}
				if !seen[key] {
					seen[key] = true
					logins[s.InstanceID][wk]++
				}
			}
		}
	}

	// Newcomer wave shape: zero before takeover, then the migration
	// curve re-aggregated by week.
	curve := migrationCurve()
	weekCurve := make([]float64, nWeeks)
	for d := 0; d < vclock.StudyDays; d++ {
		if wk := vclock.Week(vclock.DayStart(d)) - firstWeek; wk >= 0 && wk < nWeeks && d >= vclock.Day(vclock.Takeover) {
			weekCurve[wk] += curve[d]
		}
	}

	w.Activity = make([][]WeeklyActivity, len(w.Instances))
	for i, inst := range w.Instances {
		r := rng.SplitN("act", i)
		// Newcomers total ~3x the mapped migrants of the instance, plus
		// popularity-proportional drift.
		migrantsHere := 0
		for _, u := range w.Migrants {
			if w.Users[u].FirstInstance == i {
				migrantsHere++
			}
		}
		// Mapped migrants are ~14% of the real newcomer wave (136k of
		// 1M+), so size growth tracks migrant inflow at ~6x plus an
		// organic component.
		inst.NewcomerUsers = int(6.0*float64(migrantsHere)) + r.Poisson(float64(inst.NativeUsers)*0.08)

		series := make([]WeeklyActivity, nWeeks)
		cumNew := 0.0
		for wk := 0; wk < nWeeks; wk++ {
			// Native baseline.
			baseReg := r.Poisson(float64(inst.NativeUsers) * 0.004)
			baseLogin := r.Poisson(float64(inst.NativeUsers) * 0.45)
			baseStat := r.Poisson(float64(inst.NativeUsers) * 2.4)
			// Newcomer layer.
			newReg := int(float64(inst.NewcomerUsers) * weekCurve[wk])
			cumNew += float64(newReg)
			newLogin := int(cumNew * 0.7)
			newStat := int(cumNew * 2.0)
			if wk < takeoverWeek {
				newReg, newLogin, newStat = 0, 0, 0
			}
			series[wk] = WeeklyActivity{
				WeekStart:     vclock.WeekStart(firstWeek + wk),
				Registrations: baseReg + newReg + regs[i][wk],
				Logins:        baseLogin + newLogin + logins[i][wk],
				Statuses:      baseStat + newStat + stats[i][wk],
			}
		}
		w.Activity[i] = series
	}
}

// markDownInstances takes instances offline at crawl time until the
// configured share of migrants is unreachable (§3.2: 11.58%), skipping
// the biggest servers (which were up) and preferring the long tail.
func (w *World) markDownInstances(rng *randx.Source) {
	if w.Cfg.DownCoverage <= 0 || len(w.Migrants) == 0 {
		return
	}
	migrantsOn := make([]int, len(w.Instances))
	for _, u := range w.Migrants {
		migrantsOn[w.Users[u].FinalInstance()]++
	}
	// Rank instances by migrant count; protect the head of the
	// distribution (top 5 by migrants).
	order := make([]int, len(w.Instances))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if migrantsOn[order[a]] != migrantsOn[order[b]] {
			return migrantsOn[order[a]] > migrantsOn[order[b]]
		}
		return order[a] < order[b]
	})
	protected := map[int]bool{}
	for i := 0; i < 5 && i < len(order); i++ {
		protected[order[i]] = true
	}
	target := int(w.Cfg.DownCoverage * float64(len(w.Migrants)))
	covered := 0
	// Walk candidates in a deterministic shuffled order.
	cand := make([]int, 0, len(w.Instances))
	cand = append(cand, order[min(5, len(order)):]...)
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	for _, i := range cand {
		if covered >= target {
			break
		}
		if protected[i] || migrantsOn[i] == 0 {
			continue
		}
		if migrantsOn[i] > (target-covered)*2 {
			continue // too big a bite; keep looking
		}
		w.Instances[i].Down = true
		covered += migrantsOn[i]
	}
}
