package world

import (
	"math"
	"strings"
	"testing"

	"flock/internal/stats"
	"flock/internal/vclock"
)

// testWorld caches one mid-size world across tests; generation is the
// expensive part.
var testW *World

func getWorld(t testing.TB) *World {
	if testW != nil {
		return testW
	}
	cfg := DefaultConfig(800)
	cfg.Seed = 42
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	testW = w
	return w
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(120)
	cfg.Seed = 7
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Migrants) != len(w2.Migrants) {
		t.Fatalf("migrant counts differ: %d vs %d", len(w1.Migrants), len(w2.Migrants))
	}
	if w1.TweetCount() != w2.TweetCount() || w1.StatusCount() != w2.StatusCount() {
		t.Fatal("post counts differ between identical seeds")
	}
	for i := range w1.Migrants {
		a, b := w1.Users[w1.Migrants[i]], w2.Users[w2.Migrants[i]]
		if a.ID != b.ID || a.FirstInstance != b.FirstInstance || !a.MigratedAt.Equal(b.MigratedAt) {
			t.Fatalf("migrant %d differs", i)
		}
	}
}

func TestMigrantCountNearTarget(t *testing.T) {
	w := getWorld(t)
	got := len(w.Migrants)
	want := w.Cfg.NMigrants
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("migrants = %d, want about %d", got, want)
	}
}

func TestMigrationTimingShape(t *testing.T) {
	w := getWorld(t)
	pre, post := 0, 0
	for _, u := range w.Migrants {
		if vclock.PostTakeover(w.Users[u].MigratedAt) {
			post++
		} else {
			pre++
		}
	}
	frac := float64(post) / float64(pre+post)
	if frac < 0.80 {
		t.Fatalf("post-takeover migration fraction = %v, want dominant", frac)
	}
}

func TestPreTakeoverAccountsShare(t *testing.T) {
	w := getWorld(t)
	pre := 0
	for _, u := range w.Migrants {
		if w.Users[u].MastodonCreatedAt.Before(vclock.Takeover) {
			pre++
		}
	}
	frac := float64(pre) / float64(len(w.Migrants))
	// Paper: 21% of accounts predate the takeover. The pre-takeover
	// migration trickle adds a little on top of the 21% coin flips.
	if frac < 0.15 || frac > 0.40 {
		t.Fatalf("pre-takeover account share = %v, want around 0.21-0.35", frac)
	}
}

func TestSameUsernameShare(t *testing.T) {
	w := getWorld(t)
	same := 0
	for _, u := range w.Migrants {
		user := w.Users[u]
		if user.MastodonUsername == user.Username {
			same++
		}
	}
	frac := float64(same) / float64(len(w.Migrants))
	// The world prior is 0.615; the §3.1 mapping funnel inflates the
	// measured share to the paper's 72% (see DefaultConfig).
	if math.Abs(frac-w.Cfg.SameUsernameProb) > 0.06 {
		t.Fatalf("same-username share = %v, want about %v", frac, w.Cfg.SameUsernameProb)
	}
}

func TestCentralizationTop25(t *testing.T) {
	// Paper Fig. 5: rank receiving instances by size (user count), plot
	// the share of migrated users on the top 25%.
	w := getWorld(t)
	var rank, mass []int
	for i, c := range w.MigrantsPerInstance {
		if w.Instances[i].Domain == "" {
			continue // unclaimed personal slot: not a real server
		}
		rank = append(rank, w.Instances[i].TotalUsers(c))
		mass = append(mass, c)
	}
	pts := stats.TopShareBy(rank, mass, 100)
	share := pts[24].Y
	if share < 0.85 {
		t.Fatalf("top-25%% instance share = %v, want >= 0.85 (paper: 0.96)", share)
	}
}

func TestMastodonSocialIsLargest(t *testing.T) {
	w := getWorld(t)
	ms := w.InstanceByDomain("mastodon.social")
	if ms == nil {
		t.Fatal("mastodon.social missing")
	}
	for i, c := range w.MigrantsPerInstance {
		if c > w.MigrantsPerInstance[ms.ID] {
			t.Fatalf("instance %s (%d migrants) beats mastodon.social (%d)",
				w.Instances[i].Domain, c, w.MigrantsPerInstance[ms.ID])
		}
	}
}

func TestPersonalInstancesSingleUser(t *testing.T) {
	w := getWorld(t)
	personal := 0
	for _, inst := range w.Instances {
		if inst.Category != CatPersonal {
			continue
		}
		if inst.OwnerUser >= 0 {
			personal++
			if got := w.MigrantsPerInstance[inst.ID]; got != 1 {
				t.Fatalf("personal instance %q has %d migrants", inst.Domain, got)
			}
			if inst.NativeUsers != 0 {
				t.Fatal("personal instance has natives")
			}
			if !strings.HasSuffix(inst.Domain, ".page") {
				t.Fatalf("personal domain %q", inst.Domain)
			}
		}
	}
	if personal == 0 {
		t.Fatal("no personal instances claimed")
	}
}

func TestActivityParadox(t *testing.T) {
	// Users on single-user instances must post more than users on the
	// biggest instances (paper: +121%).
	w := getWorld(t)
	var small, big []float64
	for _, u := range w.Migrants {
		user := w.Users[u]
		inst := w.Instances[user.FinalInstance()]
		n := len(w.StatusesByUser[u])
		if inst.Category == CatPersonal {
			small = append(small, float64(n))
		} else if inst.Category == CatFlagship {
			big = append(big, float64(n))
		}
	}
	if len(small) < 3 || len(big) < 10 {
		t.Skipf("not enough samples: %d personal, %d flagship", len(small), len(big))
	}
	ms, mb := stats.Mean(small), stats.Mean(big)
	if ms <= mb {
		t.Fatalf("personal-instance mean statuses %v <= flagship mean %v", ms, mb)
	}
}

func TestSwitchingShare(t *testing.T) {
	w := getWorld(t)
	sw := 0
	postTakeover := 0
	for _, u := range w.Migrants {
		user := w.Users[u]
		if user.SecondInstance >= 0 {
			sw++
			if vclock.PostTakeover(user.SwitchedAt) {
				postTakeover++
			}
			if user.SecondInstance == user.FirstInstance {
				t.Fatal("switched to the same instance")
			}
			if user.SwitchedAt.Before(user.MigratedAt) {
				t.Fatal("switched before migrating")
			}
		}
	}
	frac := float64(sw) / float64(len(w.Migrants))
	if math.Abs(frac-0.0409) > 0.02 {
		t.Fatalf("switcher share = %v, want about 0.0409", frac)
	}
	if sw > 0 && float64(postTakeover)/float64(sw) < 0.85 {
		t.Fatalf("only %d/%d switches post-takeover", postTakeover, sw)
	}
}

func TestAccountStates(t *testing.T) {
	w := getWorld(t)
	var susp, del, prot, silent int
	for _, u := range w.Migrants {
		user := w.Users[u]
		if user.Suspended {
			susp++
		}
		if user.Deleted {
			del++
		}
		if user.Protected {
			prot++
		}
		if user.Silent {
			silent++
		}
	}
	n := float64(len(w.Migrants))
	if d := float64(del) / n; math.Abs(d-0.0226) > 0.015 {
		t.Fatalf("deleted share = %v", d)
	}
	if s := float64(silent) / n; math.Abs(s-0.092) > 0.03 {
		t.Fatalf("silent share = %v", s)
	}
	_ = susp
	if p := float64(prot) / n; p > 0.06 {
		t.Fatalf("protected share = %v", p)
	}
}

func TestSilentUsersHaveNoStatuses(t *testing.T) {
	w := getWorld(t)
	for _, u := range w.Migrants {
		if w.Users[u].Silent && len(w.StatusesByUser[u]) != 0 {
			t.Fatalf("silent user %d has %d statuses", u, len(w.StatusesByUser[u]))
		}
	}
}

func TestTimelinesSortedAndOwned(t *testing.T) {
	w := getWorld(t)
	for u, tweets := range w.TweetsByUser {
		for i := range tweets {
			if tweets[i].UserID != u {
				t.Fatal("tweet owner mismatch")
			}
			if i > 0 && tweets[i].Time.Before(tweets[i-1].Time) {
				t.Fatal("tweets not time-sorted")
			}
			if i > 0 && tweets[i].ID <= tweets[i-1].ID {
				t.Fatal("tweet IDs not increasing")
			}
		}
	}
	for u, ss := range w.StatusesByUser {
		for i := range ss {
			if ss[i].UserID != u {
				t.Fatal("status owner mismatch")
			}
			if i > 0 && ss[i].Time.Before(ss[i-1].Time) {
				t.Fatal("statuses not time-sorted")
			}
		}
	}
}

func TestCrossposterToolsPresent(t *testing.T) {
	w := getWorld(t)
	tools := 0
	bridged := 0
	for _, u := range w.Migrants {
		user := w.Users[u]
		if user.Tool == NoTool {
			continue
		}
		tools++
		for _, tw := range w.TweetsByUser[u] {
			if tw.Source == user.Tool.SourceName() {
				bridged++
			}
		}
	}
	frac := float64(tools) / float64(len(w.Migrants))
	if math.Abs(frac-0.0573) > 0.025 {
		t.Fatalf("crossposter share = %v, want about 0.0573", frac)
	}
	if tools > 0 && bridged == 0 {
		t.Fatal("tool users produced no bridged tweets")
	}
}

func TestAnnouncementsDiscoverable(t *testing.T) {
	w := getWorld(t)
	for _, u := range w.Migrants {
		user := w.Users[u]
		hasAnn := false
		for _, tw := range w.TweetsByUser[u] {
			if tw.Kind == KindAnnouncement {
				hasAnn = true
				break
			}
		}
		if !hasAnn {
			t.Fatalf("migrant %d has no announcement tweet", u)
		}
		if !user.HandleInBio && user.AnnounceStyle == 2 {
			t.Fatalf("migrant %d is undiscoverable (no bio handle, bio-only style)", u)
		}
	}
}

func TestToxicityRates(t *testing.T) {
	w := getWorld(t)
	var tox, all int
	for _, u := range w.Migrants {
		for _, tw := range w.TweetsByUser[u] {
			all++
			if tw.Toxic {
				tox++
			}
		}
	}
	rate := float64(tox) / float64(all)
	if rate < 0.015 || rate > 0.09 {
		t.Fatalf("tweet toxicity rate = %v, want a few percent", rate)
	}
	var stox, sall int
	for _, u := range w.Migrants {
		for _, s := range w.StatusesByUser[u] {
			sall++
			if s.Toxic {
				stox++
			}
		}
	}
	srate := float64(stox) / float64(sall)
	if srate >= rate {
		t.Fatalf("status toxicity %v not lower than tweet toxicity %v", srate, rate)
	}
}

func TestMastodonNetworkSmallerThanTwitter(t *testing.T) {
	w := getWorld(t)
	var twF, mF []float64
	for _, u := range w.Migrants {
		user := w.Users[u]
		twF = append(twF, float64(w.Graph.OutDegree(u)))
		mF = append(mF, float64(len(user.MastodonFollowees)+user.NativeFollowees))
	}
	twMed, mMed := stats.Median(twF), stats.Median(mF)
	if mMed >= twMed {
		t.Fatalf("mastodon median followees %v >= twitter %v", mMed, twMed)
	}
}

func TestActivitySeries(t *testing.T) {
	w := getWorld(t)
	ms := w.InstanceByDomain("mastodon.social")
	series := w.Activity[ms.ID]
	if len(series) < 8 {
		t.Fatalf("only %d weeks of activity", len(series))
	}
	// Registrations after takeover must dwarf the pre-takeover baseline.
	// The takeover lands mid-week, so bucket by week index: the takeover
	// week itself counts as "post".
	takeoverWeekStart := vclock.WeekStart(vclock.Week(vclock.Takeover))
	var pre, post int
	for _, wk := range series {
		if wk.WeekStart.Before(takeoverWeekStart) {
			pre += wk.Registrations
		} else {
			post += wk.Registrations
		}
	}
	if post <= pre*2 {
		t.Fatalf("registration wave missing: pre=%d post=%d", pre, post)
	}
	for _, wk := range series {
		if wk.Registrations < 0 || wk.Logins < 0 || wk.Statuses < 0 {
			t.Fatal("negative activity")
		}
	}
}

func TestDownCoverage(t *testing.T) {
	w := getWorld(t)
	down := 0
	for _, u := range w.Migrants {
		if w.Instances[w.Users[u].FinalInstance()].Down {
			down++
		}
	}
	frac := float64(down) / float64(len(w.Migrants))
	if math.Abs(frac-w.Cfg.DownCoverage) > 0.05 {
		t.Fatalf("down coverage = %v, want about %v", frac, w.Cfg.DownCoverage)
	}
	if w.InstanceByDomain("mastodon.social").Down {
		t.Fatal("flagship marked down")
	}
}

func TestContagionSignal(t *testing.T) {
	// Migrants' followees should migrate at a higher rate than the
	// population baseline: that is the social-contagion ground truth.
	w := getWorld(t)
	var fracs []float64
	for _, u := range w.Migrants {
		st := w.Graph.Ego(u, func(v int) bool { return w.Users[v].Migrated })
		if st.Followees > 0 {
			fracs = append(fracs, st.Fraction())
		}
	}
	mean := stats.Mean(fracs)
	base := float64(len(w.Migrants)) / float64(len(w.Users))
	if mean <= base {
		t.Fatalf("mean migrated-followee fraction %v <= base rate %v: no contagion", mean, base)
	}
}

func TestMirroredContentExists(t *testing.T) {
	w := getWorld(t)
	mirrored := 0
	for _, u := range w.Migrants {
		for _, s := range w.StatusesByUser[u] {
			if s.MirroredFrom >= 0 {
				mirrored++
			}
		}
	}
	if mirrored == 0 {
		t.Fatal("no mirrored statuses in the world")
	}
}

func TestInstanceDomainsUnique(t *testing.T) {
	w := getWorld(t)
	seen := map[string]bool{}
	for _, inst := range w.Instances {
		if inst.Domain == "" {
			continue // unclaimed personal slot
		}
		if seen[inst.Domain] {
			t.Fatalf("duplicate domain %q", inst.Domain)
		}
		seen[inst.Domain] = true
	}
}

func TestMigrantUsersHelper(t *testing.T) {
	w := getWorld(t)
	mu := w.MigrantUsers()
	if len(mu) != len(w.Migrants) {
		t.Fatal("MigrantUsers length mismatch")
	}
	for _, u := range mu {
		if !u.Migrated {
			t.Fatal("non-migrant in MigrantUsers")
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := DefaultConfig(200)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
