package world

import (
	"math"
	"sort"
	"time"

	"flock/internal/randx"
	"flock/internal/vclock"
)

// migrationCurve returns, per study day, the fraction of all migrations
// that happen that day. The shape mirrors Fig. 2/Fig. 3: a trickle before
// the takeover, a dominant spike right after it, secondary waves at the
// layoffs and the ultimatum, and a decaying tail.
func migrationCurve() []float64 {
	curve := make([]float64, vclock.StudyDays)
	day := func(t time.Time) int { return vclock.Day(t) }
	takeover, layoffs, ultimatum := day(vclock.Takeover), day(vclock.Layoffs), day(vclock.Ultimatum)

	for d := 0; d < vclock.StudyDays; d++ {
		switch {
		case d < takeover:
			curve[d] = 0.10 / float64(takeover) // 10% pre-takeover trickle
		case d < layoffs:
			// Takeover spike decaying over the week.
			curve[d] = 0.38 * decay(d-takeover, 2.5, layoffs-takeover)
		case d < ultimatum:
			curve[d] = 0.27 * decay(d-layoffs, 3.5, ultimatum-layoffs)
		default:
			curve[d] = 0.25 * decay(d-ultimatum, 4.0, vclock.StudyDays-ultimatum)
		}
	}
	// Normalize to exactly 1.
	var sum float64
	for _, v := range curve {
		sum += v
	}
	for d := range curve {
		curve[d] /= sum
	}
	return curve
}

// decay is a normalized exponential over a window of length n days.
func decay(i int, tau float64, n int) float64 {
	var z float64
	for k := 0; k < n; k++ {
		z += math.Exp(-float64(k) / tau)
	}
	return math.Exp(-float64(i)/tau) / z
}

// runMigration picks which users migrate and when, with social contagion:
// each day the configured share of migrations happens, and users whose
// followees already migrated are proportionally likelier to be picked.
// This is the ground truth RQ2 (Figs. 8, 10) measures.
func (w *World) runMigration(rng *randx.Source) {
	target := w.Cfg.NMigrants
	curve := migrationCurve()
	n := len(w.Users)

	migratedFollowees := make([]int, n) // per-user count of migrated followees
	migrated := make([]bool, n)

	// weight is a user's selection propensity for migration on a given
	// day: a base term (ideological migration, §5's reason i) plus a
	// contagion term proportional to the migrated share of their ego
	// network (reason ii), plus a small dedication pull.
	weight := func(u int) float64 {
		out := w.Graph.OutDegree(u)
		frac := 0.0
		if out > 0 {
			frac = float64(migratedFollowees[u]) / float64(out)
		}
		return 0.25 + 4.5*frac + 0.35*w.Users[u].Dedication
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}

	total := 0
	carry := 0.0
	for d := 0; d < vclock.StudyDays && total < target; d++ {
		exact := curve[d]*float64(target) + carry
		todays := int(exact)
		carry = exact - float64(todays)
		if todays == 0 {
			continue
		}
		if todays > len(remaining) {
			todays = len(remaining)
		}
		dayStart := vclock.DayStart(d)
		for k := 0; k < todays && total < target && len(remaining) > 0; k++ {
			// Weighted sample without replacement over remaining users.
			weights := make([]float64, len(remaining))
			var sum float64
			for i, u := range remaining {
				weights[i] = weight(u)
				sum += weights[i]
			}
			pick := rng.Float64() * sum
			idx := 0
			for i, wt := range weights {
				pick -= wt
				if pick <= 0 {
					idx = i
					break
				}
			}
			u := remaining[idx]
			remaining[idx] = remaining[len(remaining)-1]
			remaining = remaining[:len(remaining)-1]

			user := w.Users[u]
			user.Migrated = true
			migrated[u] = true
			// Spread migration moments through the day.
			user.MigratedAt = dayStart.Add(time.Duration(rng.Intn(24*3600)) * time.Second)
			total++
			for _, f := range w.Graph.Followers(u) {
				migratedFollowees[f]++
			}
		}
	}

	// Fill migrant bookkeeping: usernames, account ages, announce styles,
	// account states, bystanders.
	for u, user := range w.Users {
		r := rng.SplitN("detail", u)
		if user.Migrated {
			w.Migrants = append(w.Migrants, u)
			if r.Bool(w.Cfg.SameUsernameProb) {
				user.MastodonUsername = user.Username
			} else {
				user.MastodonUsername = user.Username + randx.Pick(r, []string{"_m", "_fedi", "2", "_masto", "xyz"})
			}
			if r.Bool(w.Cfg.PreTakeoverAccountProb) {
				// Early adopters created accounts months before the
				// takeover (previous migration waves).
				daysBefore := 30 + r.Intn(500)
				user.MastodonCreatedAt = vclock.Takeover.Add(-time.Duration(daysBefore*24) * time.Hour)
			} else {
				user.MastodonCreatedAt = user.MigratedAt
			}
			// §3.1 match paths: most put the handle in their bio; the
			// rest only announce in tweet text.
			user.HandleInBio = r.Bool(0.62)
			switch {
			case r.Bool(0.55):
				user.AnnounceStyle = 0 // @user@host in tweet
			case r.Bool(0.5):
				user.AnnounceStyle = 1 // profile URL in tweet
			default:
				user.AnnounceStyle = 2 // bio only
			}
			if !user.HandleInBio && user.AnnounceStyle == 2 {
				// Unreachable by the methodology otherwise; nudge the
				// handle into the tweet, mirroring that the 136k mapped
				// users are by construction the discoverable ones.
				user.AnnounceStyle = 0
			}
			// Cross-posting tool adoption (§6.1).
			if r.Bool(w.Cfg.CrossposterProb) {
				if r.Bool(0.45) {
					user.Tool = ToolCrossposter
				} else {
					user.Tool = ToolMoa
				}
			} else if r.Bool(0.12) {
				// Manual mirrorers: occasionally post the same thing on
				// both platforms.
				user.MirrorRate = 0.2 + 0.4*r.Float64()
			}
			user.Silent = r.Bool(w.Cfg.SilentProb)
			// Twitter account states at crawl time (§3.2).
			switch {
			case r.Bool(w.Cfg.SuspendedProb):
				user.Suspended = true
			case r.Bool(w.Cfg.DeletedProb):
				user.Deleted = true
			case r.Bool(w.Cfg.ProtectedProb):
				user.Protected = true
			}
		} else if r.Bool(w.Cfg.BystanderFraction * w.Cfg.migrationTarget / (1 - w.Cfg.migrationTarget) * 5) {
			// Bystanders: tweet about the migration without migrating.
			// Scaled so bystanders ~= a small multiple of migrants.
			user.Bystander = true
		}
	}
	sort.Ints(w.Migrants)
}

// assignInstances picks each migrant's first instance at migration time,
// in migration order so the social term sees earlier movers. The mixture
// reproduces RQ1+RQ2: flagship pull (centralization), social pull
// (followee co-location, 14.72% same-instance mean), topical matching and
// personal servers for the most dedicated.
func (w *World) assignInstances(rng *randx.Source) {
	// Migration order.
	order := make([]int, len(w.Migrants))
	copy(order, w.Migrants)
	sort.Slice(order, func(i, j int) bool {
		return w.Users[order[i]].MigratedAt.Before(w.Users[order[j]].MigratedAt)
	})

	// Regular (non-personal) instances, Zipf-ranked by roster position so
	// mastodon.social is rank 0.
	var regular []int
	personalFree := []int{}
	byTopic := map[int][]int{}
	for _, inst := range w.Instances {
		if inst.Category == CatPersonal {
			personalFree = append(personalFree, inst.ID)
			continue
		}
		regular = append(regular, inst.ID)
		byTopic[int(inst.Topic)] = append(byTopic[int(inst.Topic)], inst.ID)
	}
	// Zipf rank = size rank: discoverability follows size.
	sort.Slice(regular, func(a, b int) bool {
		na, nb := w.Instances[regular[a]].NativeUsers, w.Instances[regular[b]].NativeUsers
		if na != nb {
			return na > nb
		}
		return regular[a] < regular[b]
	})
	zipf := randx.NewZipf(len(regular), 2.4)

	// Personal-instance owners: the most dedicated migrants claim the
	// reserved slots (one slot each).
	type cand struct {
		user       int
		dedication float64
	}
	cands := make([]cand, 0, len(order))
	for _, u := range order {
		cands = append(cands, cand{u, w.Users[u].Dedication})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dedication != cands[j].dedication {
			return cands[i].dedication > cands[j].dedication
		}
		return cands[i].user < cands[j].user
	})
	personalOwner := map[int]bool{}
	for i := 0; i < len(personalFree) && i < len(cands); i++ {
		personalOwner[cands[i].user] = true
	}

	for _, u := range order {
		user := w.Users[u]
		r := rng.SplitN("choice", u)
		if personalOwner[u] && len(personalFree) > 0 {
			instID := personalFree[0]
			personalFree = personalFree[1:]
			inst := w.Instances[instID]
			inst.Domain = user.MastodonUsername + ".page"
			inst.Topic = user.Topic
			inst.OwnerUser = u
			user.FirstInstance = instID
			continue
		}
		// Social pull: follow your followees' instances.
		migratedHere := map[int]int{}
		for _, f := range w.Graph.Followees(u) {
			fu := w.Users[int(f)]
			// Assignment runs in migration order, so earlier movers
			// already have an instance. Personal servers are excluded:
			// you cannot register on someone's single-user instance.
			if fu.Migrated && fu.FirstInstance >= 0 && fu.MigratedAt.Before(user.MigratedAt) {
				inst := fu.CurrentInstance(user.MigratedAt)
				if w.Instances[inst].Category != CatPersonal {
					migratedHere[inst]++
				}
			}
		}
		socialProb := 0.0
		if len(migratedHere) > 0 {
			socialProb = 0.40
		}
		switch {
		case r.Bool(socialProb):
			// Proportional to followee presence.
			keys := make([]int, 0, len(migratedHere))
			for k := range migratedHere {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			weights := make([]float64, len(keys))
			for i, k := range keys {
				weights[i] = float64(migratedHere[k])
			}
			user.FirstInstance = keys[randx.NewWeighted(weights).Sample(r)]
		case r.Bool(0.72 * (1.15 - user.Dedication)):
			// Popularity pull, stronger for casual users: Zipf over the
			// regular roster. This is the centralization engine (RQ1).
			user.FirstInstance = regular[zipf.Sample(r)]
		default:
			// Topic match: a topical instance for the user's interest.
			// Users find topic servers through directories that surface
			// the established ones, so only the topic's head is in play;
			// the long tail of tiny servers is reached socially, if at
			// all.
			pool := byTopic[int(user.Topic)]
			if len(pool) > 3 {
				pool = pool[:3]
			}
			if len(pool) == 0 {
				user.FirstInstance = regular[zipf.Sample(r)]
			} else {
				tz := randx.NewZipf(len(pool), 1.4)
				user.FirstInstance = pool[tz.Sample(r)]
			}
		}
	}
}

// assignSwitching selects the ~4.09% of migrants who move instances and
// routes them to where their ego network settled (the strong network
// effect in Fig. 10).
func (w *World) assignSwitching(rng *randx.Source) {
	type swCand struct {
		user  int
		score float64
		modal int
	}
	var cands []swCand
	for _, u := range w.Migrants {
		user := w.Users[u]
		if w.Instances[user.FirstInstance].Category == CatPersonal {
			continue
		}
		// Modal instance of migrated followees (excluding current).
		counts := map[int]int{}
		migrated := 0
		for _, f := range w.Graph.Followees(u) {
			fu := w.Users[int(f)]
			if fu.Migrated {
				migrated++
				counts[fu.FirstInstance]++
			}
		}
		if migrated < 3 {
			continue
		}
		best, bestC := -1, 0
		for inst, c := range counts {
			if inst == user.FirstInstance || w.Instances[inst].Category == CatPersonal {
				continue
			}
			if c > bestC || (c == bestC && inst < best) {
				best, bestC = inst, c
			}
		}
		if best < 0 {
			continue
		}
		frac := float64(bestC) / float64(migrated)
		// Prefer users stranded on flagship/general servers away from
		// their community.
		bonus := 0.0
		if cat := w.Instances[user.FirstInstance].Category; cat == CatFlagship || cat == CatGeneral {
			bonus = 0.25
		}
		cands = append(cands, swCand{user: u, score: frac + bonus, modal: best})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].user < cands[j].user
	})
	nSwitch := int(math.Round(w.Cfg.SwitchProb * float64(len(w.Migrants))))
	if nSwitch > len(cands) {
		nSwitch = len(cands)
	}
	for i := 0; i < nSwitch; i++ {
		u := cands[i].user
		user := w.Users[u]
		user.SecondInstance = cands[i].modal
		delay := time.Duration(5+rng.Intn(20)) * 24 * time.Hour
		at := user.MigratedAt.Add(delay)
		end := vclock.StudyEnd.Add(20 * time.Hour)
		if at.After(end) {
			at = end
		}
		user.SwitchedAt = at
	}
}
