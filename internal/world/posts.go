package world

import (
	"sort"
	"time"

	"flock/internal/ids"
	"flock/internal/randx"
	"flock/internal/textkit"
	"flock/internal/vclock"
)

// tweetSources is the official-client mix behind Fig. 12. Weights are
// relative; cross-poster sources are attached to tool users separately.
var tweetSources = []struct {
	name   string
	weight float64
}{
	{"Twitter Web App", 34},
	{"Twitter for iPhone", 29},
	{"Twitter for Android", 22},
	{"TweetDeck", 5},
	{"Twitter for iPad", 3},
	{"Hootsuite Inc.", 1.6},
	{"Buffer", 1.2},
	{"IFTTT", 0.9},
	{"Tweetbot for iOS", 0.8},
	{"Echofon", 0.5},
	{"SocialFlow", 0.5},
	{"Sprout Social", 0.5},
	{"dlvr.it", 0.4},
	{"Twitter Media Studio", 0.3},
	{"Fenix 2", 0.3},
}

// keywordChatter is the migration-talk hazard per study day for
// bystanders and migrants alike (Fig. 2's shape): quiet before the
// takeover, a big spike after, waves at layoffs and ultimatum.
func keywordChatter(day int) float64 {
	takeover, layoffs, ultimatum := vclock.Day(vclock.Takeover), vclock.Day(vclock.Layoffs), vclock.Day(vclock.Ultimatum)
	switch {
	case day < takeover:
		return 0.012
	case day < layoffs:
		return 0.30 * decay(day-takeover, 3.0, layoffs-takeover) * 8
	case day < ultimatum:
		return 0.22 * decay(day-layoffs, 4.0, ultimatum-layoffs) * 13
	default:
		return 0.20 * decay(day-ultimatum, 4.5, vclock.StudyDays-ultimatum) * 14
	}
}

// genPosts builds every tweet and status in the world.
func (w *World) genPosts(rng *randx.Source) {
	w.TweetsByUser = make([][]Tweet, len(w.Users))
	w.StatusesByUser = make([][]Status, len(w.Users))

	srcWeights := make([]float64, len(tweetSources))
	for i, s := range tweetSources {
		srcWeights[i] = s.weight
	}
	srcPick := randx.NewWeighted(srcWeights)

	tweetGen := ids.NewGenerator(2)
	statusGen := ids.NewGenerator(3)

	for u, user := range w.Users {
		r := rng.SplitN("posts", u)
		tg := textkit.NewGenerator(r.Split("text"))
		switch {
		case user.Migrated:
			w.genMigrantPosts(user, r, tg, srcPick, tweetGen, statusGen)
		case user.Bystander:
			w.genBystanderPosts(user, r, tg, srcPick, tweetGen)
		}
	}
}

// pickSource draws an official client name.
func pickSource(r *randx.Source, srcPick *randx.Weighted) string {
	return tweetSources[srcPick.Sample(r)].name
}

// genMigrantPosts generates a migrant's full two-platform history.
func (w *World) genMigrantPosts(user *User, r *randx.Source, tg *textkit.Generator,
	srcPick *randx.Weighted, tweetGen, statusGen *ids.Generator) {

	// Personal posting rates: heavy-tailed across users.
	tweetRate := w.Cfg.TweetsPerDay * (0.3 + r.LogNormal(0, 0.5))
	// Status rate scales with dedication: the Fig. 6 activity paradox —
	// dedicated users (who pick small/personal servers) post much more.
	statusRate := w.Cfg.StatusesPerDay * (0.25 + 2.6*user.Dedication) * (0.5 + r.Float64())
	if user.Silent {
		statusRate = 0
	}

	var tweets []Tweet
	var statuses []Status

	// The user's favourite client stays fixed; a minority rotates.
	mainSource := pickSource(r, srcPick)

	for d := 0; d < vclock.StudyDays; d++ {
		dayStart := vclock.DayStart(d)
		// --- Tweets: the paper finds Twitter activity does NOT drop
		// after migration (Fig. 11), so the rate is flat. Deleted or
		// suspended accounts stop tweeting at their exit moment; we
		// approximate exit as uniformly late in the window.
		nT := r.Poisson(tweetRate)
		for k := 0; k < nT; k++ {
			at := dayStart.Add(time.Duration(r.Intn(24*3600)) * time.Second)
			toxic := r.Bool(user.ToxicTweetP)
			src := mainSource
			if r.Bool(0.15) {
				src = pickSource(r, srcPick)
			}
			text := tg.Post(textkit.PostOpts{
				Topic:    tweetTopic(r, user),
				Hashtags: r.Intn(3),
				Toxic:    toxic,
			})
			tweets = append(tweets, Tweet{
				UserID: user.ID, Time: at, Text: text, Source: src,
				Kind: KindNormal, Toxic: toxic,
			})
		}
		// --- Keyword chatter about the migration.
		if r.Bool(keywordChatter(d) * 0.35) {
			at := dayStart.Add(time.Duration(r.Intn(24*3600)) * time.Second)
			text := tg.Post(textkit.PostOpts{Topic: textkit.TopicMigration, Hashtags: 1 + r.Intn(2)})
			tweets = append(tweets, Tweet{
				UserID: user.ID, Time: at, Text: text, Source: mainSource,
				Kind: KindKeyword, Toxic: false,
			})
		}
	}

	// --- Announcement tweet(s) on migration day.
	annTime := user.MigratedAt
	domain := w.Instances[user.FirstInstance].Domain
	ann := tg.MigrationAnnouncement(user.AnnounceStyle, user.MastodonUsername, domain)
	tweets = append(tweets, Tweet{
		UserID: user.ID, Time: annTime, Text: ann, Source: mainSource,
		Kind: KindAnnouncement, Toxic: false,
	})
	if r.Bool(0.3) {
		// A reminder announcement days later.
		later := annTime.Add(time.Duration(1+r.Intn(10)) * 24 * time.Hour)
		if later.Before(vclock.StudyEnd.Add(24 * time.Hour)) {
			style := user.AnnounceStyle
			tweets = append(tweets, Tweet{
				UserID: user.ID, Time: later,
				Text:   tg.MigrationAnnouncement(style, user.MastodonUsername, domain),
				Source: mainSource, Kind: KindAnnouncement, Toxic: false,
			})
		}
	}
	// A switch announcement if the user moved instance.
	if user.SecondInstance >= 0 && user.SwitchedAt.Before(vclock.StudyEnd.Add(24*time.Hour)) {
		tweets = append(tweets, Tweet{
			UserID: user.ID, Time: user.SwitchedAt,
			Text:   tg.MigrationAnnouncement(user.AnnounceStyle%2, user.MastodonUsername, w.Instances[user.SecondInstance].Domain),
			Source: mainSource, Kind: KindAnnouncement, Toxic: false,
		})
	}

	// --- Statuses. Activity starts at account creation for early
	// adopters (low pre-takeover rate) and ramps at migration.
	if !user.Silent {
		statusStart := user.MastodonCreatedAt
		if statusStart.Before(vclock.StudyStart) {
			statusStart = vclock.StudyStart
		}
		for d := vclock.Day(statusStart); d < vclock.StudyDays; d++ {
			if d < 0 {
				continue
			}
			dayStart := vclock.DayStart(d)
			rate := statusRate
			if dayStart.Before(user.MigratedAt) {
				rate *= 0.15 // pre-announcement lurking period
			}
			nS := r.Poisson(rate)
			for k := 0; k < nS; k++ {
				at := dayStart.Add(time.Duration(r.Intn(24*3600)) * time.Second)
				if at.Before(user.MastodonCreatedAt) {
					continue
				}
				inst := user.CurrentInstance(at)
				toxic := r.Bool(user.ToxicStatusP)
				// Mastodon content in the window is dominated by
				// fediverse/migration talk (Fig. 15).
				topic := statusTopic(r, user)
				text := tg.Post(textkit.PostOpts{Topic: topic, Hashtags: r.Intn(3), Toxic: toxic})
				statuses = append(statuses, Status{
					UserID: user.ID, InstanceID: inst, Time: at, Text: text,
					MirroredFrom: -1, Toxic: toxic,
				})
			}
		}
	}

	// --- Cross-posting: tool users bridge Mastodon statuses to Twitter
	// (Fig. 12/13); the bridged tweet's source is the tool. Bridges
	// mostly preserve text exactly; long posts get truncated (similar,
	// not identical).
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Time.Before(statuses[j].Time) })

	if user.Tool != NoTool {
		// Twitter revoked the posting limits of the bridges around
		// Nov 25 (§6.1, [21]): bridged tweets stop then.
		bridgeCutoff := vclock.StudyEnd.Add(-5 * 24 * time.Hour)
		for si := range statuses {
			s := &statuses[si]
			if s.Time.Before(user.MigratedAt) || s.Time.After(bridgeCutoff) {
				continue
			}
			if !r.Bool(0.8) {
				continue
			}
			text := s.Text
			identical := r.Bool(0.35)
			if !identical {
				text = tg.Paraphrase(text)
			}
			tweets = append(tweets, Tweet{
				UserID: user.ID, Time: s.Time.Add(time.Duration(30+r.Intn(90)) * time.Second),
				Text: text, Source: user.Tool.SourceName(),
				Kind: KindNormal, Toxic: s.Toxic,
			})
		}
	}

	// Final ordering + ID minting: exactly once, after every tweet
	// exists, so IDs are strictly increasing in time order.
	sort.Slice(tweets, func(i, j int) bool { return tweets[i].Time.Before(tweets[j].Time) })
	for i := range tweets {
		tweets[i].ID = tweetGen.At(tweets[i].Time)
	}

	switch {
	case user.Tool != NoTool:
		markMirrors(tweets, statuses)
	case user.MirrorRate > 0:
		// Manual mirrorers: some statuses repeat a same-day tweet.
		for si := range statuses {
			s := &statuses[si]
			if !r.Bool(user.MirrorRate) {
				continue
			}
			ti := sameDayTweet(tweets, s.Time)
			if ti < 0 {
				continue
			}
			if r.Bool(0.12) {
				s.Text = tweets[ti].Text // identical
			} else {
				s.Text = tg.Paraphrase(tweets[ti].Text) // similar
			}
			s.Toxic = tweets[ti].Toxic
			s.MirroredFrom = ti
		}
	}

	for i := range statuses {
		statuses[i].ID = statusGen.At(statuses[i].Time)
	}
	w.TweetsByUser[user.ID] = tweets
	w.StatusesByUser[user.ID] = statuses
}

// markMirrors links bridged tweets back to their source statuses.
func markMirrors(tweets []Tweet, statuses []Status) {
	// Bridged tweets carry the tool source; match them to the closest
	// preceding status.
	for ti := range tweets {
		if tweets[ti].Source != ToolCrossposter.SourceName() && tweets[ti].Source != ToolMoa.SourceName() {
			continue
		}
		for si := len(statuses) - 1; si >= 0; si-- {
			if !statuses[si].Time.After(tweets[ti].Time) {
				if statuses[si].MirroredFrom < 0 {
					statuses[si].MirroredFrom = ti
				}
				break
			}
		}
	}
}

// sameDayTweet returns the index of a normal tweet on the same study day
// as t, or -1.
func sameDayTweet(tweets []Tweet, t time.Time) int {
	day := vclock.Day(t)
	for i := range tweets {
		if tweets[i].Kind == KindNormal && vclock.Day(tweets[i].Time) == day {
			return i
		}
	}
	return -1
}

// tweetTopic draws a tweet topic: mostly the user's interest, spread over
// the diverse Twitter topic mix (Fig. 15 left).
func tweetTopic(r *randx.Source, user *User) textkit.Topic {
	if r.Bool(0.55) {
		return user.Topic
	}
	// Anything but the fediverse topics, which are rare on Twitter
	// outside keyword tweets.
	t := textkit.Topic(2 + r.Intn(textkit.NumTopics-2))
	return t
}

// statusTopic draws a Mastodon status topic: fediverse/migration heavy
// (Fig. 15 right) with the user's interest mixed in.
func statusTopic(r *randx.Source, user *User) textkit.Topic {
	switch {
	case r.Bool(0.30):
		return textkit.TopicFediverse
	case r.Bool(0.30):
		return textkit.TopicMigration
	case r.Bool(0.6):
		return user.Topic
	default:
		return textkit.Topic(r.Intn(textkit.NumTopics))
	}
}

// genBystanderPosts generates keyword-only chatter for non-migrants.
func (w *World) genBystanderPosts(user *User, r *randx.Source, tg *textkit.Generator,
	srcPick *randx.Weighted, tweetGen *ids.Generator) {
	var tweets []Tweet
	mainSource := pickSource(r, srcPick)
	for d := 0; d < vclock.StudyDays; d++ {
		if !r.Bool(keywordChatter(d) * 0.8) {
			continue
		}
		at := vclock.DayStart(d).Add(time.Duration(r.Intn(24*3600)) * time.Second)
		toxic := r.Bool(user.ToxicTweetP * 0.5)
		text := tg.Post(textkit.PostOpts{Topic: textkit.TopicMigration, Hashtags: 1 + r.Intn(2), Toxic: toxic})
		tweets = append(tweets, Tweet{
			UserID: user.ID, Time: at, Text: text, Source: mainSource,
			Kind: KindKeyword, Toxic: toxic,
		})
	}
	for i := range tweets {
		tweets[i].ID = tweetGen.At(tweets[i].Time)
	}
	w.TweetsByUser[user.ID] = tweets
}
