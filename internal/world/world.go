// Package world generates the synthetic universe the measurement pipeline
// is run against: a Twitter-like population with a follow graph, a set of
// Mastodon instances, a migration process with social contagion, posting
// activity on both platforms, cross-posting tools, instance switching and
// toxicity ground truth.
//
// The paper measured a real, closed dataset (§3: 136,009 migrated users,
// 2,879 instances, 16.1M tweets, 5.7M statuses). world replaces it with a
// parameterised generative model whose behavioural knobs are calibrated
// to the paper's reported statistics, scaled down by Config.NMigrants.
// The pipeline then *measures* this world exclusively through the
// simulated HTTP services (internal/birdsite, internal/fediverse, ...) —
// the analysis never reads world state directly, so methodological errors
// in the crawler show up as paper-vs-measured divergence, exactly as they
// would have for the authors.
//
// Everything is deterministic in Config.Seed.
package world

import (
	"time"

	"flock/internal/graph"
	"flock/internal/ids"
	"flock/internal/textkit"
	"flock/internal/vclock"
)

// Config parameterizes world generation. The zero value is unusable; use
// DefaultConfig and override.
type Config struct {
	// Seed drives all randomness.
	Seed uint64

	// NMigrants is the approximate number of Twitter users who migrate to
	// Mastodon during the study (the paper's 136,009, scaled).
	NMigrants int

	// PopulationFactor scales the total Twitter population relative to
	// NMigrants. Non-migrants matter: they are the reluctant majority of
	// each migrant's ego network (§5.2 finds only 5.99% of followees
	// migrate).
	PopulationFactor int

	// BystanderFraction is the fraction of non-migrants who tweet
	// migration keywords without migrating (the paper collected tweets
	// from 1.02M users but mapped only 136k).
	BystanderFraction float64

	// NInstances is the number of Mastodon instances that exist. The
	// index service knows all of them; migrants reach a subset.
	NInstances int

	// MeanOutDegree is the Twitter graph's mean out-degree. Real medians
	// (744 followers / 787 followees) are scaled down; the ratio between
	// Twitter and Mastodon network sizes is what Fig. 7 preserves.
	MeanOutDegree float64

	// Calibration constants, defaulted to the paper's findings.

	// SameUsernameProb: 72% of migrants reuse their Twitter username.
	SameUsernameProb float64
	// VerifiedProb: 4% of migrants are legacy-verified.
	VerifiedProb float64
	// PreTakeoverAccountProb: 21% of discovered Mastodon accounts predate
	// the takeover.
	PreTakeoverAccountProb float64
	// SwitchProb: 4.09% of migrants switch instance.
	SwitchProb float64
	// CrossposterProb: 5.73% of migrants use a cross-posting tool.
	CrossposterProb float64
	// SuspendedProb / DeletedProb / ProtectedProb: Twitter timeline crawl
	// failure taxonomy (§3.2: 0.08% / 2.26% / 2.78%).
	SuspendedProb float64
	DeletedProb   float64
	ProtectedProb float64
	// SilentProb: 9.20% of migrants never post a status.
	SilentProb float64
	// DownCoverage: fraction of migrants whose instance is down at crawl
	// time (11.58%).
	DownCoverage float64
	// TweetsPerDay / StatusesPerDay are mean posting rates.
	TweetsPerDay    float64
	StatusesPerDay  float64
	// ToxicTweetRate / ToxicStatusRate are the target mean per-user toxic
	// post fractions (4.02% / 2.07%).
	ToxicTweetRate  float64
	ToxicStatusRate float64
	// MigrationTarget is the fraction of the population that migrates
	// (NMigrants / population, derived; kept for hazard calibration).
	migrationTarget float64
}

// DefaultConfig returns a world sized around nMigrants migrated users
// with all behavioural constants set to the paper's reported values.
func DefaultConfig(nMigrants int) Config {
	if nMigrants < 50 {
		nMigrants = 50
	}
	nInst := nMigrants / 5
	if nInst < 40 {
		nInst = 40
	}
	if nInst > 2879 {
		nInst = 2879
	}
	return Config{
		Seed:                   1,
		NMigrants:              nMigrants,
		PopulationFactor:       8,
		BystanderFraction:      0.35,
		NInstances:             nInst,
		MeanOutDegree:          35,
		// The paper's 72% is measured over the *mapped* population, and
		// the tweet-text match path only accepts identical usernames, so
		// mapping inflates the share. A 61.5% prior measures as ~72%
		// through the §3.1 funnel.
		SameUsernameProb:       0.615,
		VerifiedProb:           0.04,
		PreTakeoverAccountProb: 0.21,
		SwitchProb:             0.0409,
		CrossposterProb:        0.0573,
		SuspendedProb:          0.0008,
		DeletedProb:            0.0226,
		ProtectedProb:          0.0278,
		SilentProb:             0.092,
		DownCoverage:           0.1158,
		TweetsPerDay:           2.0,
		StatusesPerDay:         1.4,
		ToxicTweetRate:         0.0402,
		ToxicStatusRate:        0.0207,
	}
}

// InstanceCategory classifies instances.
type InstanceCategory int

const (
	// CatFlagship: mastodon.social and the other giant general servers.
	CatFlagship InstanceCategory = iota
	// CatGeneral: mid-size general-purpose servers.
	CatGeneral
	// CatTopical: topic-specific servers (sigmoid.social, historians.social, ...).
	CatTopical
	// CatPersonal: single-user instances run by their only member.
	CatPersonal
)

// String names the category.
func (c InstanceCategory) String() string {
	switch c {
	case CatFlagship:
		return "flagship"
	case CatGeneral:
		return "general"
	case CatTopical:
		return "topical"
	case CatPersonal:
		return "personal"
	}
	return "unknown"
}

// Instance is one Mastodon server.
type Instance struct {
	ID       int
	Domain   string
	Category InstanceCategory
	// Topic applies to topical and personal instances.
	Topic textkit.Topic
	// NativeUsers is the pre-takeover local population (never crawled
	// individually; drives baseline weekly activity and instance size).
	NativeUsers int
	// NewcomerUsers is the post-takeover registration wave beyond the
	// mapped migrants (Mastodon reported 1M+ sign-ups; we map only some).
	NewcomerUsers int
	// Down marks the instance unreachable at crawl time.
	Down bool
	// OwnerUser is the migrant who runs this personal instance (-1 for
	// non-personal instances).
	OwnerUser int
}

// TotalUsers is the instance population visible to the index/activity
// endpoints at crawl time: natives + newcomers + mapped migrants.
func (inst *Instance) TotalUsers(migrantsHere int) int {
	return inst.NativeUsers + inst.NewcomerUsers + migrantsHere
}

// CrossposterTool identifies a cross-posting bridge.
type CrossposterTool int

const (
	// NoTool: the user does not cross-post.
	NoTool CrossposterTool = iota
	// ToolCrossposter is the "Mastodon Twitter Crossposter".
	ToolCrossposter
	// ToolMoa is the "Moa Bridge".
	ToolMoa
)

// SourceName returns the tweet "source" string of the tool.
func (t CrossposterTool) SourceName() string {
	switch t {
	case ToolCrossposter:
		return "Mastodon Twitter Crossposter"
	case ToolMoa:
		return "Moa Bridge"
	}
	return ""
}

// User is one member of the Twitter population. Migration fields are only
// meaningful when Migrated is true.
type User struct {
	ID          int
	TwitterID   ids.Snowflake
	Username    string
	DisplayName string
	Topic       textkit.Topic
	Verified    bool
	// TwitterCreatedAt is the account age anchor (median ~11.5 years).
	TwitterCreatedAt time.Time

	// Account states at crawl time (§3.2 failure taxonomy).
	Suspended bool
	Deleted   bool
	Protected bool

	// Bystander users tweet migration keywords but never migrate.
	Bystander bool

	// Dedication in (0, 1] expresses how invested the user is in the new
	// platform; it drives status rate, Mastodon networking and the choice
	// of small/personal instances (the Fig. 6 activity paradox).
	Dedication float64

	// toxicity propensity per platform (probability a post is toxic).
	ToxicTweetP  float64
	ToxicStatusP float64

	// Migration.
	Migrated bool
	// MigratedAt is the day the user started using Mastodon (announced).
	MigratedAt time.Time
	// MastodonCreatedAt is the account creation time; for 21% of migrants
	// this predates the takeover.
	MastodonCreatedAt time.Time
	MastodonUsername  string
	// FirstInstance / SecondInstance index into World.Instances;
	// SecondInstance is -1 unless the user switched.
	FirstInstance  int
	SecondInstance int
	SwitchedAt     time.Time
	// AnnounceStyle: 0 handle in tweet text, 1 profile URL in tweet text,
	// 2 handle only in bio (§3.1's hierarchical match paths).
	AnnounceStyle int
	// HandleInBio mirrors §3.1: most migrants put the handle in their
	// profile metadata.
	HandleInBio bool
	// Tool is the cross-posting bridge, if any.
	Tool CrossposterTool
	// MirrorRate is the fraction of statuses mirrored from tweets for
	// manual mirrorers (crossposters mirror via Tool instead).
	MirrorRate float64
	// Silent users created an account but never posted.
	Silent bool

	// Mastodon ego network (indices into World.Users, migrants only) plus
	// native followers/followees not individually modelled.
	MastodonFollowees []int
	MastodonFollowers []int
	NativeFollowers   int
	NativeFollowees   int
}

// CurrentInstance returns the instance the user is on at time t,
// accounting for switching.
func (u *User) CurrentInstance(t time.Time) int {
	if !u.Migrated {
		return -1
	}
	if u.SecondInstance >= 0 && !t.Before(u.SwitchedAt) {
		return u.SecondInstance
	}
	return u.FirstInstance
}

// FinalInstance is the instance at crawl time.
func (u *User) FinalInstance() int {
	return u.CurrentInstance(vclock.CrawlTime)
}

// Handle returns the canonical @user@host handle on instance inst.
func (u *User) Handle(domain string) string {
	return "@" + u.MastodonUsername + "@" + domain
}

// TweetKind labels generated tweets for ground-truth bookkeeping (the
// crawler never sees it).
type TweetKind int

const (
	// KindNormal is ordinary topical content.
	KindNormal TweetKind = iota
	// KindAnnouncement advertises the user's Mastodon account.
	KindAnnouncement
	// KindKeyword discusses the migration (keywords, no handle).
	KindKeyword
)

// Tweet is one Twitter post.
type Tweet struct {
	ID     ids.Snowflake
	UserID int
	Time   time.Time
	Text   string
	Source string
	Kind   TweetKind
	Toxic  bool // ground truth; the scorer recovers it from the text
}

// Status is one Mastodon post.
type Status struct {
	ID         ids.Snowflake
	UserID     int
	InstanceID int
	Time       time.Time
	Text       string
	// MirroredFrom is the index into the user's tweet slice when this
	// status is a bridge/manual mirror, else -1.
	MirroredFrom int
	Toxic        bool
}

// WeeklyActivity is one bucket of the Mastodon activity endpoint.
type WeeklyActivity struct {
	WeekStart     time.Time
	Statuses      int
	Logins        int
	Registrations int
}

// World is the fully generated universe.
type World struct {
	Cfg       Config
	Users     []*User
	Migrants  []int // indices of migrated users, ascending
	Instances []*Instance
	Graph     *graph.Graph // Twitter follow graph over Users

	// TweetsByUser[u] is u's timeline, ascending in time. Non-posting
	// users have nil slices.
	TweetsByUser [][]Tweet
	// StatusesByUser[u] is the Mastodon timeline of migrant u.
	StatusesByUser [][]Status

	// Activity[i] is instance i's weekly activity series.
	Activity [][]WeeklyActivity

	// MigrantsPerInstance[i] counts mapped migrants whose final account
	// is on instance i.
	MigrantsPerInstance []int
}

// MigrantUsers returns the migrated *User values.
func (w *World) MigrantUsers() []*User {
	out := make([]*User, len(w.Migrants))
	for i, idx := range w.Migrants {
		out[i] = w.Users[idx]
	}
	return out
}

// InstanceByDomain finds an instance by domain (nil if unknown).
func (w *World) InstanceByDomain(domain string) *Instance {
	for _, inst := range w.Instances {
		if inst.Domain == domain {
			return inst
		}
	}
	return nil
}

// TweetCount returns the total number of tweets.
func (w *World) TweetCount() int {
	n := 0
	for _, ts := range w.TweetsByUser {
		n += len(ts)
	}
	return n
}

// StatusCount returns the total number of statuses.
func (w *World) StatusCount() int {
	n := 0
	for _, ss := range w.StatusesByUser {
		n += len(ss)
	}
	return n
}
