package world

import (
	"fmt"
	"math"
	"time"

	"flock/internal/graph"
	"flock/internal/ids"
	"flock/internal/randx"
	"flock/internal/textkit"
	"flock/internal/vclock"
)

// Generate builds the full world from cfg. It is deterministic in
// cfg.Seed: equal configs yield identical worlds.
func Generate(cfg Config) (*World, error) {
	if cfg.NMigrants <= 0 {
		return nil, fmt.Errorf("world: NMigrants must be positive, got %d", cfg.NMigrants)
	}
	if cfg.PopulationFactor < 2 {
		cfg.PopulationFactor = 2
	}
	if cfg.NInstances < 10 {
		cfg.NInstances = 10
	}
	cfg.migrationTarget = 1.0 / float64(cfg.PopulationFactor)

	root := randx.New(cfg.Seed)
	w := &World{Cfg: cfg}

	w.genInstances(root.Split("instances"))
	if err := w.genUsers(root.Split("users")); err != nil {
		return nil, err
	}
	w.runMigration(root.Split("migration"))
	w.assignInstances(root.Split("instances-choice"))
	w.assignSwitching(root.Split("switching"))
	w.genPosts(root.Split("posts"))
	w.genMastodonGraph(root.Split("mastograph"))
	w.genActivity(root.Split("activity"))
	w.markDownInstances(root.Split("down"))
	w.finalize()
	return w, nil
}

// wellKnown are real instances anchoring the top of the popularity
// distribution, with their category and topic. mastodon.social must stay
// first: several paper statistics single it out.
var wellKnown = []struct {
	domain   string
	cat      InstanceCategory
	topic    textkit.Topic
	natives  int // relative native population weight
}{
	{"mastodon.social", CatFlagship, textkit.TopicFediverse, 1000},
	{"mastodon.online", CatFlagship, textkit.TopicFediverse, 350},
	{"mstdn.social", CatFlagship, textkit.TopicFediverse, 300},
	{"mas.to", CatGeneral, textkit.TopicFediverse, 180},
	{"fosstodon.org", CatTopical, textkit.TopicTech, 150},
	{"hachyderm.io", CatTopical, textkit.TopicTech, 140},
	{"sigmoid.social", CatTopical, textkit.TopicAI, 90},
	{"mastodon.gamedev.place", CatTopical, textkit.TopicGameDev, 85},
	{"historians.social", CatTopical, textkit.TopicHistory, 50},
	{"photog.social", CatTopical, textkit.TopicPhotography, 45},
	{"metalhead.club", CatTopical, textkit.TopicMusic, 45},
	{"journa.host", CatTopical, textkit.TopicPolitics, 40},
	{"mastodonapp.uk", CatGeneral, textkit.TopicFediverse, 120},
	{"techhub.social", CatTopical, textkit.TopicTech, 70},
	{"mastodon.world", CatGeneral, textkit.TopicFediverse, 110},
	{"mastodon.art", CatTopical, textkit.TopicPhotography, 60},
	{"kolektiva.social", CatTopical, textkit.TopicPolitics, 35},
	{"indieweb.social", CatTopical, textkit.TopicTech, 40},
	{"mindly.social", CatGeneral, textkit.TopicFediverse, 60},
	{"universeodon.com", CatGeneral, textkit.TopicFediverse, 55},
}

// genInstances creates the instance roster: well-known heads, a Zipf tail
// of generated general/topical servers, and a reserved pool of personal
// instance slots bound to owners during migration.
func (w *World) genInstances(rng *randx.Source) {
	n := w.Cfg.NInstances
	// The paper's 13.16% single-user share is over instances that
	// RECEIVED migrants (~1/3 of the roster ends up receiving at this
	// scale), so personal slots are sized against that subset.
	nPersonal := int(math.Round(0.045 * float64(n)))
	if nPersonal < 3 {
		nPersonal = 3
	}
	nRegular := n - nPersonal
	if nRegular < len(wellKnown) {
		nRegular = len(wellKnown)
	}

	for i, wk := range wellKnown {
		if i >= nRegular {
			break
		}
		w.Instances = append(w.Instances, &Instance{
			ID:          i,
			Domain:      wk.domain,
			Category:    wk.cat,
			Topic:       wk.topic,
			NativeUsers: wk.natives * 3,
			OwnerUser:   -1,
		})
	}
	suffixes := []string{"social", "online", "club", "space", "town", "zone", "community", "place"}
	for i := len(w.Instances); i < nRegular; i++ {
		topic := textkit.Topic(rng.Intn(textkit.NumTopics))
		cat := CatTopical
		if rng.Bool(0.35) {
			cat = CatGeneral
			topic = textkit.TopicFediverse
		}
		domain := fmt.Sprintf("%s-%s-%d.%s", topic.String(), randx.Pick(rng, []string{"hub", "den", "nest", "haven", "corner"}), i, randx.Pick(rng, suffixes))
		// Native populations decay with roster position (plus noise), so
		// instance size correlates with the popularity rank used for
		// migrant placement — as it does in reality, where size and
		// discoverability feed each other.
		natives := int(2500/math.Pow(float64(i+4), 1.1)*rng.LogNormal(0, 0.35)) + 1
		w.Instances = append(w.Instances, &Instance{
			ID:          i,
			Domain:      domain,
			Category:    cat,
			Topic:       topic,
			NativeUsers: natives,
			OwnerUser:   -1,
		})
	}
	// Personal slots: domain assigned when an owner claims one.
	for i := len(w.Instances); i < nRegular+nPersonal; i++ {
		w.Instances = append(w.Instances, &Instance{
			ID:        i,
			Category:  CatPersonal,
			OwnerUser: -1,
			// Personal servers have no other users by definition.
			NativeUsers: 0,
		})
	}
}

// usernameFor builds a deterministic plausible username.
func usernameFor(rng *randx.Source, id int) string {
	first := []string{"alex", "sam", "kai", "noor", "lena", "remy", "juno", "mara", "theo", "ivy",
		"owen", "zara", "finn", "nova", "eli", "wren", "ada", "hugo", "mina", "arlo"}
	second := []string{"writes", "codes", "draws", "reads", "runs", "maps", "bakes", "films", "sings", "hikes",
		"studies", "builds", "paints", "plays", "thinks", "travels", "teaches", "photographs", "dreams", "games"}
	name := randx.Pick(rng, first) + "_" + randx.Pick(rng, second)
	return fmt.Sprintf("%s%d", name, id)
}

// genUsers creates the population, the Twitter graph, personas and
// account-state flags.
func (w *World) genUsers(rng *randx.Source) error {
	n := w.Cfg.NMigrants * w.Cfg.PopulationFactor
	g, comm, err := graph.Generate(graph.Config{
		N:           n,
		Communities: textkit.NumTopics,
		MeanOut:     w.Cfg.MeanOutDegree,
		IntraBias:   0.78,
		Reciprocity: 0.25,
	}, rng.Split("graph"))
	if err != nil {
		return err
	}
	w.Graph = g

	gen := ids.NewGenerator(1)
	urng := rng.Split("personas")
	w.Users = make([]*User, n)
	for i := 0; i < n; i++ {
		r := urng.SplitN("user", i)
		// Twitter account ages: lognormal around ~11.5 years (median),
		// in days before the study start.
		ageDays := r.LogNormal(math.Log(11.5*365), 0.6)
		if ageDays < 30 {
			ageDays = 30
		}
		if ageDays > 16.5*365 { // Twitter launched 2006
			ageDays = 16.5 * 365
		}
		created := vclock.StudyStart.Add(-time.Duration(ageDays*24) * time.Hour)
		username := usernameFor(r, i)
		// Dedication: Beta-shaped via min of uniforms; most users casual,
		// a committed tail.
		d := r.Float64()
		d = d * d // skew low
		dedication := 0.08 + 0.92*d
		// Toxicity propensity: exponential with the configured mean,
		// clipped. Status propensity is proportionally lower (§6.3).
		tp := r.Exp(1 / w.Cfg.ToxicTweetRate)
		if tp > 0.5 {
			tp = 0.5
		}
		sp := tp * (w.Cfg.ToxicStatusRate / w.Cfg.ToxicTweetRate)
		w.Users[i] = &User{
			ID:               i,
			TwitterID:        gen.At(created),
			Username:         username,
			DisplayName:      username,
			Topic:            textkit.Topic(comm[i] % textkit.NumTopics),
			Verified:         r.Bool(w.Cfg.VerifiedProb),
			TwitterCreatedAt: created,
			Dedication:       dedication,
			ToxicTweetP:      tp,
			ToxicStatusP:     sp,
			FirstInstance:    -1,
			SecondInstance:   -1,
		}
	}
	return nil
}

// finalize computes derived aggregates.
func (w *World) finalize() {
	w.MigrantsPerInstance = make([]int, len(w.Instances))
	for _, idx := range w.Migrants {
		u := w.Users[idx]
		w.MigrantsPerInstance[u.FinalInstance()]++
	}
}
