package textsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! Check https://mastodon.social/@alice. #TwitterMigration @bob@example.com")
	join := strings.Join(got, "|")
	for _, want := range []string{"hello", "world", "https://mastodon.social/@alice", "#twittermigration", "@bob@example"} {
		if !strings.Contains(join, want) {
			t.Fatalf("tokens %v missing %q", got, want)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if toks := Tokenize("   \n\t "); len(toks) != 0 {
		t.Fatalf("tokens of whitespace: %v", toks)
	}
}

func TestEmbedNormalized(t *testing.T) {
	v := Embed("the quick brown fox jumps over the lazy dog")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("norm = %v", norm)
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	v := Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text embedding not zero")
		}
	}
	if Cosine(v, v) != 0 {
		t.Fatal("zero-vector cosine should be 0")
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	texts := []string{
		"Leaving the birdsite for good, find me at @alice@mastodon.social #TwitterMigration",
		"just posted a new blog about decentralized moderation",
	}
	for _, txt := range texts {
		if s := Similarity(txt, txt); math.Abs(s-1) > 1e-5 {
			t.Fatalf("self similarity = %v", s)
		}
	}
}

func TestNearDuplicateScoresHigh(t *testing.T) {
	a := "So excited to announce my new project on decentralized social networks, check it out!"
	b := "So excited to announce my new project on decentralized social networks, check it out"
	if s := Similarity(a, b); s < 0.9 {
		t.Fatalf("near-duplicate similarity = %v", s)
	}
	c := "Very excited to announce my brand new project on decentralized social networks today"
	if s := Similarity(a, c); s < DefaultThreshold {
		t.Fatalf("paraphrase similarity = %v, want >= %v", s, DefaultThreshold)
	}
}

func TestUnrelatedScoresLow(t *testing.T) {
	a := "Watching the football game tonight with friends at the pub"
	b := "New paper on quantum error correction published in Nature this morning"
	if s := Similarity(a, b); s > 0.35 {
		t.Fatalf("unrelated similarity = %v, want low", s)
	}
}

func TestCosineSymmetricProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1 := Similarity(a, b)
		s2 := Similarity(b, a)
		return math.Abs(s1-s2) < 1e-9 && s1 >= -1 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentical(t *testing.T) {
	if !Identical("same post", "same post") {
		t.Fatal("exact match not identical")
	}
	if !Identical("truncated by bridge…", "truncated by bridge") {
		t.Fatal("ellipsis canonicalization failed")
	}
	if !Identical("  padded  ", "padded") {
		t.Fatal("whitespace canonicalization failed")
	}
	if Identical("a", "b") {
		t.Fatal("different texts identical")
	}
}

func TestClassify(t *testing.T) {
	tweet := "Excited to share our new measurement study of the fediverse migration!"
	if c := Classify(tweet, tweet, DefaultThreshold); c != IdenticalClass {
		t.Fatalf("class = %v", c)
	}
	para := "Excited to share our brand new measurement study of the big fediverse migration"
	if c := Classify(para, tweet, DefaultThreshold); c != Similar {
		t.Fatalf("paraphrase class = %v (sim=%v)", c, Similarity(para, tweet))
	}
	other := "Good morning everyone, coffee time"
	if c := Classify(other, tweet, DefaultThreshold); c != Different {
		t.Fatalf("unrelated class = %v", c)
	}
}

func TestClassifyThresholdSweep(t *testing.T) {
	a := "the migration to mastodon is accelerating rapidly this month"
	b := "the migration to mastodon is accelerating very rapidly"
	s := Similarity(a, b)
	if Classify(a, b, s+0.01) != Different {
		t.Fatal("above-similarity threshold should classify Different")
	}
	if Classify(a, b, s-0.01) != Similar {
		t.Fatal("below-similarity threshold should classify Similar")
	}
}

func TestIndexBestMatch(t *testing.T) {
	texts := []string{
		"announcing my move to mastodon, follow me there",
		"what a goal in the match tonight",
		"new photos from my trip to iceland",
	}
	ix := NewIndex(texts)
	q := Embed("announcing my big move to mastodon, please follow me there")
	i, sim := ix.BestMatch(q)
	if i != 0 {
		t.Fatalf("best match index = %d (sim %v)", i, sim)
	}
	if sim < DefaultThreshold {
		t.Fatalf("best match sim = %v", sim)
	}
}

func TestIndexEmpty(t *testing.T) {
	ix := NewIndex(nil)
	if i, s := ix.BestMatch(Embed("x")); i != -1 || s != 0 {
		t.Fatalf("empty index match = %d, %v", i, s)
	}
}

func TestDeterministicEmbedding(t *testing.T) {
	a := Embed("determinism matters for reproduction")
	b := Embed("determinism matters for reproduction")
	if a != b {
		t.Fatal("embedding not deterministic")
	}
}

func BenchmarkEmbed(b *testing.B) {
	text := "Leaving Twitter after 12 years. You can find me at @user@mastodon.social — let's build the fediverse together! #TwitterMigration #Mastodon"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Embed(text)
	}
}

func BenchmarkCosine(b *testing.B) {
	x := Embed("some example post about the migration")
	y := Embed("another example post about the migration")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(x, y)
	}
}
