package textsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! Check https://mastodon.social/@alice. #TwitterMigration @bob@example.com")
	join := strings.Join(got, "|")
	for _, want := range []string{"hello", "world", "https://mastodon.social/@alice", "#twittermigration", "@bob@example"} {
		if !strings.Contains(join, want) {
			t.Fatalf("tokens %v missing %q", got, want)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if toks := Tokenize("   \n\t "); len(toks) != 0 {
		t.Fatalf("tokens of whitespace: %v", toks)
	}
}

func TestEmbedNormalized(t *testing.T) {
	v := Embed("the quick brown fox jumps over the lazy dog")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("norm = %v", norm)
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	v := Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text embedding not zero")
		}
	}
	if Cosine(v, v) != 0 {
		t.Fatal("zero-vector cosine should be 0")
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	texts := []string{
		"Leaving the birdsite for good, find me at @alice@mastodon.social #TwitterMigration",
		"just posted a new blog about decentralized moderation",
	}
	for _, txt := range texts {
		if s := Similarity(txt, txt); math.Abs(s-1) > 1e-5 {
			t.Fatalf("self similarity = %v", s)
		}
	}
}

func TestNearDuplicateScoresHigh(t *testing.T) {
	a := "So excited to announce my new project on decentralized social networks, check it out!"
	b := "So excited to announce my new project on decentralized social networks, check it out"
	if s := Similarity(a, b); s < 0.9 {
		t.Fatalf("near-duplicate similarity = %v", s)
	}
	c := "Very excited to announce my brand new project on decentralized social networks today"
	if s := Similarity(a, c); s < DefaultThreshold {
		t.Fatalf("paraphrase similarity = %v, want >= %v", s, DefaultThreshold)
	}
}

func TestUnrelatedScoresLow(t *testing.T) {
	a := "Watching the football game tonight with friends at the pub"
	b := "New paper on quantum error correction published in Nature this morning"
	if s := Similarity(a, b); s > 0.35 {
		t.Fatalf("unrelated similarity = %v, want low", s)
	}
}

func TestCosineSymmetricProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1 := Similarity(a, b)
		s2 := Similarity(b, a)
		return math.Abs(s1-s2) < 1e-9 && s1 >= -1 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentical(t *testing.T) {
	if !Identical("same post", "same post") {
		t.Fatal("exact match not identical")
	}
	if !Identical("truncated by bridge…", "truncated by bridge") {
		t.Fatal("ellipsis canonicalization failed")
	}
	if !Identical("  padded  ", "padded") {
		t.Fatal("whitespace canonicalization failed")
	}
	if Identical("a", "b") {
		t.Fatal("different texts identical")
	}
}

func TestClassify(t *testing.T) {
	tweet := "Excited to share our new measurement study of the fediverse migration!"
	if c := Classify(tweet, tweet, DefaultThreshold); c != IdenticalClass {
		t.Fatalf("class = %v", c)
	}
	para := "Excited to share our brand new measurement study of the big fediverse migration"
	if c := Classify(para, tweet, DefaultThreshold); c != Similar {
		t.Fatalf("paraphrase class = %v (sim=%v)", c, Similarity(para, tweet))
	}
	other := "Good morning everyone, coffee time"
	if c := Classify(other, tweet, DefaultThreshold); c != Different {
		t.Fatalf("unrelated class = %v", c)
	}
}

func TestClassifyThresholdSweep(t *testing.T) {
	a := "the migration to mastodon is accelerating rapidly this month"
	b := "the migration to mastodon is accelerating very rapidly"
	s := Similarity(a, b)
	if Classify(a, b, s+0.01) != Different {
		t.Fatal("above-similarity threshold should classify Different")
	}
	if Classify(a, b, s-0.01) != Similar {
		t.Fatal("below-similarity threshold should classify Similar")
	}
}

func TestIndexBestMatch(t *testing.T) {
	texts := []string{
		"announcing my move to mastodon, follow me there",
		"what a goal in the match tonight",
		"new photos from my trip to iceland",
	}
	ix := NewIndex(texts)
	q := Embed("announcing my big move to mastodon, please follow me there")
	i, sim := ix.BestMatch(q)
	if i != 0 {
		t.Fatalf("best match index = %d (sim %v)", i, sim)
	}
	if sim < DefaultThreshold {
		t.Fatalf("best match sim = %v", sim)
	}
}

func TestIndexEmpty(t *testing.T) {
	ix := NewIndex(nil)
	if i, s := ix.BestMatch(Embed("x")); i != -1 || s != 0 {
		t.Fatalf("empty index match = %d, %v", i, s)
	}
}

func TestDeterministicEmbedding(t *testing.T) {
	a := Embed("determinism matters for reproduction")
	b := Embed("determinism matters for reproduction")
	if a != b {
		t.Fatal("embedding not deterministic")
	}
}

func TestIndexSingleElement(t *testing.T) {
	ix := NewIndex([]string{"only one post here"})
	i, s := ix.BestMatch(Embed("only one post here"))
	if i != 0 || math.Abs(s-1) > 1e-5 {
		t.Fatalf("single-element match = %d, %v", i, s)
	}
	// Even a zero-vector query must land on index 0 (the only candidate).
	if i, s := ix.BestMatch(Embed("")); i != 0 || s != 0 {
		t.Fatalf("zero query against single element = %d, %v", i, s)
	}
}

func TestIndexAllZeroVectors(t *testing.T) {
	// Texts with no tokens embed to the zero vector; every cosine is 0
	// and the lowest index must win.
	ix := NewIndex([]string{"", "   ", "\t\n"})
	i, s := ix.BestMatch(Embed("anything at all"))
	if i != 0 || s != 0 {
		t.Fatalf("all-zero index match = %d, %v", i, s)
	}
}

func TestBestMatchTieBreaksLowestIndex(t *testing.T) {
	// Duplicate texts give exactly equal cosines; the lowest index must
	// be picked, and identically so by the sharded scan at every worker
	// count.
	texts := []string{
		"completely unrelated filler words",
		"announcing my move to mastodon today",
		"announcing my move to mastodon today",
		"announcing my move to mastodon today",
	}
	ix := NewIndex(texts)
	q := Embed("announcing my move to mastodon today")
	i, s := ix.BestMatch(q)
	if i != 1 {
		t.Fatalf("serial tie-break picked %d (sim %v)", i, s)
	}
	for _, w := range []int{1, 2, 4, 8} {
		pi, ps := ix.BestMatchParallel(q, w)
		if pi != i || math.Float64bits(ps) != math.Float64bits(s) {
			t.Fatalf("workers=%d parallel scan = (%d, %v), serial = (%d, %v)", w, pi, ps, i, s)
		}
	}
}

func TestBestMatchParallelMatchesSerial(t *testing.T) {
	texts := make([]string, 300)
	for i := range texts {
		texts[i] = strings.Repeat("word ", i%17+1) + Tokenize("unique filler")[0]
	}
	ix := NewIndex(texts)
	q := Embed("word word word unique")
	si, ss := ix.BestMatch(q)
	for _, w := range []int{1, 2, 3, 8} {
		pi, ps := ix.BestMatchParallel(q, w)
		if pi != si || math.Float64bits(ps) != math.Float64bits(ss) {
			t.Fatalf("workers=%d: (%d, %v) != serial (%d, %v)", w, pi, ps, si, ss)
		}
	}
	if i, s := (&Index{}).BestMatchParallel(q, 4); i != -1 || s != 0 {
		t.Fatalf("empty parallel scan = %d, %v", i, s)
	}
}

func TestCacheEmbedMatchesDirect(t *testing.T) {
	c := NewCache()
	texts := []string{
		"Leaving the birdsite, find me at @a@mastodon.social",
		"Leaving the birdsite, find me at @a@mastodon.social",    // repeat
		"  Leaving the birdsite, find me at @a@mastodon.social…", // canonicalizes to the first
		"something else entirely",
		"",
	}
	for _, txt := range texts {
		if got, want := c.Embed(txt), Embed(txt); got != want {
			t.Fatalf("cache embedding differs for %q", txt)
		}
	}
	// The first three share a canonical form; with the empty string and
	// the distinct text that makes 3 entries.
	if c.Len() != 3 {
		t.Fatalf("cache size = %d, want 3", c.Len())
	}
	var nilCache *Cache
	if got, want := nilCache.Embed("nil cache path"), Embed("nil cache path"); got != want {
		t.Fatal("nil cache embedding differs")
	}
	if nilCache.Len() != 0 {
		t.Fatal("nil cache length")
	}
}

func TestEmbedAllMatchesSerial(t *testing.T) {
	texts := []string{"one post", "two posts", "", "one post", "three posts about mastodon"}
	want := make([]Vector, len(texts))
	for i, txt := range texts {
		want[i] = Embed(txt)
	}
	for _, w := range []int{1, 2, 8} {
		for _, cache := range []*Cache{nil, NewCache()} {
			got := EmbedAll(texts, w, cache)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d cache=%v slot %d differs", w, cache != nil, i)
				}
			}
		}
	}
	if EmbedAll(nil, 4, nil) != nil {
		t.Fatal("empty EmbedAll should return nil")
	}
}

func TestNewIndexParallelMatchesSerial(t *testing.T) {
	texts := []string{"alpha beta", "gamma delta", "epsilon"}
	a := NewIndex(texts)
	b := NewIndexParallel(texts, 4, NewCache())
	for i := range a.Vectors {
		if a.Vectors[i] != b.Vectors[i] {
			t.Fatalf("vector %d differs", i)
		}
	}
}

func BenchmarkEmbed(b *testing.B) {
	text := "Leaving Twitter after 12 years. You can find me at @user@mastodon.social — let's build the fediverse together! #TwitterMigration #Mastodon"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Embed(text)
	}
}

func BenchmarkEmbedCached(b *testing.B) {
	text := "Leaving Twitter after 12 years. You can find me at @user@mastodon.social — let's build the fediverse together! #TwitterMigration #Mastodon"
	c := NewCache()
	c.Embed(text)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Embed(text)
	}
}

func BenchmarkCosine(b *testing.B) {
	x := Embed("some example post about the migration")
	y := Embed("another example post about the migration")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(x, y)
	}
}
