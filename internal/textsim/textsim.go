// Package textsim measures content similarity between posts.
//
// The paper (§6.1) declares a Mastodon status "similar" to a tweet when
// the cosine similarity of their SBERT sentence embeddings exceeds 0.7,
// and "identical" when the texts match exactly. SBERT is a closed,
// non-Go ML dependency, so textsim substitutes a deterministic hashed
// n-gram embedding: texts are tokenized, word unigrams/bigrams and
// character trigrams are feature-hashed into a fixed-size vector, and
// similarity is the cosine of those vectors.
//
// The substitution preserves the only property the analysis relies on:
// near-duplicate texts (cross-posted content, light edits, re-phrasings
// sharing most tokens) score high, and independent texts score low. The
// absolute scale differs from SBERT, so the default threshold is
// recalibrated (see DefaultThreshold) rather than copied blindly.
package textsim

import (
	"math"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"flock/internal/parallel"
)

// Dim is the embedding dimensionality. 256 buckets keeps vectors small
// while making random collisions rare for post-length texts.
const Dim = 256

// DefaultThreshold is the cosine above which two posts count as
// "similar". The paper uses 0.7 on SBERT embeddings; hashed n-gram
// cosines for paraphrases land in a comparable band, so we keep 0.7.
const DefaultThreshold = 0.7

// Vector is an embedding.
type Vector [Dim]float32

// span is one token's byte range inside a scratch buffer.
type span struct{ lo, hi int32 }

// scratch holds the tokenizer's reusable working set: all tokens of one
// text, lowercased, packed back to back in buf with their spans. Pooled
// so the Embed hot path performs no per-token allocations.
type scratch struct {
	buf   []byte
	spans []span
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) reset() {
	s.buf = s.buf[:0]
	s.spans = s.spans[:0]
}

// endToken closes the token started at byte offset start, dropping empty
// tokens.
func (s *scratch) endToken(start int) {
	if len(s.buf) > start {
		s.spans = append(s.spans, span{int32(start), int32(len(s.buf))})
	}
}

// token returns the i-th token's bytes.
func (s *scratch) token(i int) []byte {
	sp := s.spans[i]
	return s.buf[sp.lo:sp.hi]
}

// urlTrimSet is the trailing punctuation stripped from URL tokens.
const urlTrimSet = ".,;:!?)"

// hasPrefixFold reports whether s starts with prefix under ASCII case
// folding (prefix must be lowercase ASCII).
func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != prefix[i] {
			return false
		}
	}
	return true
}

// tokenize splits text into the scratch buffer: fields are lowercased
// rune by rune; URLs are kept whole minus trailing punctuation; letters,
// digits, '#', '@' and '\” continue a token, anything else ends it.
func (s *scratch) tokenize(text string) {
	s.reset()
	field := func(f string) {
		if hasPrefixFold(f, "http://") || hasPrefixFold(f, "https://") {
			start := len(s.buf)
			for _, r := range f {
				s.buf = utf8.AppendRune(s.buf, unicode.ToLower(r))
			}
			for len(s.buf) > start && strings.IndexByte(urlTrimSet, s.buf[len(s.buf)-1]) >= 0 {
				s.buf = s.buf[:len(s.buf)-1]
			}
			s.endToken(start)
			return
		}
		start := len(s.buf)
		for _, r := range f {
			r = unicode.ToLower(r)
			switch {
			case unicode.IsLetter(r) || unicode.IsDigit(r):
				s.buf = utf8.AppendRune(s.buf, r)
			case r == '#' || r == '@' || r == '\'':
				s.buf = utf8.AppendRune(s.buf, r)
			default:
				s.endToken(start)
				start = len(s.buf)
			}
		}
		s.endToken(start)
	}
	// Manual field walk: strings.Fields would allocate the field slice.
	fieldStart := -1
	for i, r := range text {
		if unicode.IsSpace(r) {
			if fieldStart >= 0 {
				field(text[fieldStart:i])
				fieldStart = -1
			}
		} else if fieldStart < 0 {
			fieldStart = i
		}
	}
	if fieldStart >= 0 {
		field(text[fieldStart:])
	}
}

// Tokenize lowercases text and splits it into word tokens, folding
// punctuation. URLs are kept whole (cross-posters mirror links verbatim,
// which is a strong identity signal); @mentions keep their handle; #tags
// keep the tag.
func Tokenize(text string) []string {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.tokenize(text)
	if len(sc.spans) == 0 {
		return nil
	}
	tokens := make([]string, len(sc.spans))
	for i := range sc.spans {
		tokens[i] = string(sc.token(i))
	}
	return tokens
}

// FNV-1a constants; features hash incrementally over their byte parts so
// the hot path never materializes "u:"+tok style feature strings.
const (
	fnvOffset uint32 = 2166136261
	fnvPrime  uint32 = 16777619
)

func fnvBytes(h uint32, s []byte) uint32 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime
	}
	return h
}

func fnvString(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime
	}
	return h
}

// sign maps a hash to +1/-1 so collisions cancel rather than pile up
// (signed feature hashing).
func sign(h uint32) float32 {
	if h&0x80000000 != 0 {
		return -1
	}
	return 1
}

// Embed converts text to its hashed n-gram embedding. The vector is L2
// normalized; a text with no tokens yields the zero vector. The hot path
// reuses pooled tokenizer scratch and hashes features incrementally, so
// embedding allocates nothing beyond the returned value.
func Embed(text string) Vector {
	var v Vector
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.tokenize(text)
	add := func(h uint32, weight float32) {
		v[h%Dim] += sign(h>>8) * weight
	}
	n := len(sc.spans)
	for i := 0; i < n; i++ {
		tok := sc.token(i)
		// Unigram: hash of "u:"+tok.
		add(fnvBytes(fnvString(fnvOffset, "u:"), tok), 1)
		// Bigram: hash of "b:"+tok+" "+next.
		if i+1 < n {
			h := fnvBytes(fnvString(fnvOffset, "b:"), tok)
			h = (h ^ uint32(' ')) * fnvPrime
			add(fnvBytes(h, sc.token(i+1)), 1.5)
		}
		// Character trigrams catch inflection and small edits: "c:"+tri.
		if len(tok) >= 3 {
			for j := 0; j+3 <= len(tok); j++ {
				add(fnvBytes(fnvString(fnvOffset, "c:"), tok[j:j+3]), 0.4)
			}
		}
	}
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// Cache is a concurrency-safe embedding memo keyed by canonicalized
// text. Profiles and timelines repeat texts heavily across the RQ passes
// (cross-posted content appears once per platform per analysis), so a
// shared Cache turns the second and later embeddings of a text into a
// map read. Canonicalization is safe as a key because it only strips
// bytes the tokenizer ignores (surrounding whitespace, a trailing
// truncation ellipsis), so Embed(text) == Embed(canonicalize(text)).
//
// A nil *Cache is valid and simply embeds without memoization, so code
// paths can thread an optional cache unconditionally.
type Cache struct {
	mu sync.RWMutex
	m  map[string]Vector
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]Vector)}
}

// Embed returns the embedding of text, computing and memoizing it on
// first sight of its canonical form.
func (c *Cache) Embed(text string) Vector {
	if c == nil {
		return Embed(text)
	}
	key := canonicalize(text)
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = Embed(key)
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
	return v
}

// Len returns the number of cached embeddings.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// EmbedAll embeds every text on a bounded worker pool, result slots in
// input order (deterministic regardless of scheduling; see
// internal/parallel). cache may be nil.
func EmbedAll(texts []string, workers int, cache *Cache) []Vector {
	return parallel.MapSlice(workers, len(texts), func(i int) Vector {
		return cache.Embed(texts[i])
	})
}

// Cosine returns the cosine similarity of two embeddings in [-1, 1].
// Zero vectors yield 0.
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	// Vectors are normalized at Embed time; clamp for float drift.
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}

// Similarity is a convenience: Cosine(Embed(a), Embed(b)).
func Similarity(a, b string) float64 {
	return Cosine(Embed(a), Embed(b))
}

// canonicalize strips the variance cross-posting bridges introduce
// (trailing ellipsis truncation marker, surrounding whitespace) without
// touching meaningful content.
func canonicalize(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "…")
	return strings.TrimSpace(s)
}

// Identical reports whether two posts carry exactly the same content
// after canonicalization, the paper's "identical" test.
func Identical(a, b string) bool {
	return canonicalize(a) == canonicalize(b)
}

// Class is the paper's three-way post relationship (§6.1, Fig. 14).
type Class int

const (
	// Different: cosine below threshold.
	Different Class = iota
	// Similar: cosine at or above threshold but not identical.
	Similar
	// IdenticalClass: exact content match.
	IdenticalClass
)

// Classify labels the relationship between a Mastodon status and a tweet
// using threshold (pass DefaultThreshold for the paper's setting).
func Classify(status, tweet string, threshold float64) Class {
	if Identical(status, tweet) {
		return IdenticalClass
	}
	if Similarity(status, tweet) >= threshold {
		return Similar
	}
	return Different
}

// Index precomputes embeddings for a set of texts so a user's full
// timeline can be compared pairwise without re-embedding (the Fig. 14
// computation is quadratic per user).
type Index struct {
	Texts   []string
	Vectors []Vector
}

// NewIndex embeds all texts serially.
func NewIndex(texts []string) *Index {
	return NewIndexParallel(texts, 1, nil)
}

// NewIndexParallel embeds all texts on a bounded worker pool, optionally
// reading through a shared embedding cache. Output is identical to
// NewIndex for any worker count.
func NewIndexParallel(texts []string, workers int, cache *Cache) *Index {
	idx := &Index{Texts: texts, Vectors: make([]Vector, len(texts))}
	parallel.ForEach(workers, len(texts), func(i int) {
		idx.Vectors[i] = cache.Embed(texts[i])
	})
	return idx
}

// BestMatch returns the index and cosine of the closest text to the
// query embedding, or (-1, 0) on an empty index. Ties break to the
// lowest index, deterministically.
func (ix *Index) BestMatch(q Vector) (int, float64) {
	best, bestSim := -1, math.Inf(-1)
	for i, v := range ix.Vectors {
		if s := Cosine(q, v); s > bestSim {
			best, bestSim = i, s
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSim
}

// BestMatchParallel shards the BestMatch scan over a bounded worker
// pool. Shard boundaries depend only on the index size and partial
// winners merge in ascending shard order with a strictly-greater
// comparison, so the result — including lowest-index tie-breaking — is
// bit-identical to the serial BestMatch at every worker count.
func (ix *Index) BestMatchParallel(q Vector, workers int) (int, float64) {
	if len(ix.Vectors) == 0 {
		return -1, 0
	}
	type cand struct {
		idx int
		sim float64
	}
	best := parallel.ReduceSharded(workers, len(ix.Vectors),
		func(lo, hi int) cand {
			b := cand{idx: -1, sim: math.Inf(-1)}
			for i := lo; i < hi; i++ {
				if s := Cosine(q, ix.Vectors[i]); s > b.sim {
					b = cand{idx: i, sim: s}
				}
			}
			return b
		},
		func(a, b cand) cand {
			// a is the lower shard: keeping it on ties preserves the
			// lowest-index rule.
			if b.sim > a.sim {
				return b
			}
			return a
		})
	return best.idx, best.sim
}
