// Package textsim measures content similarity between posts.
//
// The paper (§6.1) declares a Mastodon status "similar" to a tweet when
// the cosine similarity of their SBERT sentence embeddings exceeds 0.7,
// and "identical" when the texts match exactly. SBERT is a closed,
// non-Go ML dependency, so textsim substitutes a deterministic hashed
// n-gram embedding: texts are tokenized, word unigrams/bigrams and
// character trigrams are feature-hashed into a fixed-size vector, and
// similarity is the cosine of those vectors.
//
// The substitution preserves the only property the analysis relies on:
// near-duplicate texts (cross-posted content, light edits, re-phrasings
// sharing most tokens) score high, and independent texts score low. The
// absolute scale differs from SBERT, so the default threshold is
// recalibrated (see DefaultThreshold) rather than copied blindly.
package textsim

import (
	"math"
	"strings"
	"unicode"
)

// Dim is the embedding dimensionality. 256 buckets keeps vectors small
// while making random collisions rare for post-length texts.
const Dim = 256

// DefaultThreshold is the cosine above which two posts count as
// "similar". The paper uses 0.7 on SBERT embeddings; hashed n-gram
// cosines for paraphrases land in a comparable band, so we keep 0.7.
const DefaultThreshold = 0.7

// Vector is an embedding.
type Vector [Dim]float32

// Tokenize lowercases text and splits it into word tokens, folding
// punctuation. URLs are kept whole (cross-posters mirror links verbatim,
// which is a strong identity signal); @mentions keep their handle; #tags
// keep the tag.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, field := range strings.Fields(text) {
		lf := strings.ToLower(field)
		if strings.HasPrefix(lf, "http://") || strings.HasPrefix(lf, "https://") {
			tokens = append(tokens, strings.TrimRight(lf, ".,;:!?)"))
			continue
		}
		for _, r := range lf {
			switch {
			case unicode.IsLetter(r) || unicode.IsDigit(r):
				b.WriteRune(r)
			case r == '#' || r == '@' || r == '\'':
				b.WriteRune(r)
			default:
				flush()
			}
		}
		flush()
	}
	return tokens
}

// fnv1a hashes a string to a bucket.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// sign maps a hash to +1/-1 so collisions cancel rather than pile up
// (signed feature hashing).
func sign(h uint32) float32 {
	if h&0x80000000 != 0 {
		return -1
	}
	return 1
}

// Embed converts text to its hashed n-gram embedding. The vector is L2
// normalized; a text with no tokens yields the zero vector.
func Embed(text string) Vector {
	var v Vector
	tokens := Tokenize(text)
	add := func(feature string, weight float32) {
		h := fnv1a(feature)
		v[h%Dim] += sign(h>>8) * weight
	}
	for i, tok := range tokens {
		add("u:"+tok, 1)
		if i+1 < len(tokens) {
			add("b:"+tok+" "+tokens[i+1], 1.5)
		}
		// Character trigrams catch inflection and small edits.
		if len(tok) >= 3 {
			for j := 0; j+3 <= len(tok); j++ {
				add("c:"+tok[j:j+3], 0.4)
			}
		}
	}
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// Cosine returns the cosine similarity of two embeddings in [-1, 1].
// Zero vectors yield 0.
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	// Vectors are normalized at Embed time; clamp for float drift.
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}

// Similarity is a convenience: Cosine(Embed(a), Embed(b)).
func Similarity(a, b string) float64 {
	return Cosine(Embed(a), Embed(b))
}

// canonicalize strips the variance cross-posting bridges introduce
// (trailing ellipsis truncation marker, surrounding whitespace) without
// touching meaningful content.
func canonicalize(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "…")
	return strings.TrimSpace(s)
}

// Identical reports whether two posts carry exactly the same content
// after canonicalization, the paper's "identical" test.
func Identical(a, b string) bool {
	return canonicalize(a) == canonicalize(b)
}

// Class is the paper's three-way post relationship (§6.1, Fig. 14).
type Class int

const (
	// Different: cosine below threshold.
	Different Class = iota
	// Similar: cosine at or above threshold but not identical.
	Similar
	// IdenticalClass: exact content match.
	IdenticalClass
)

// Classify labels the relationship between a Mastodon status and a tweet
// using threshold (pass DefaultThreshold for the paper's setting).
func Classify(status, tweet string, threshold float64) Class {
	if Identical(status, tweet) {
		return IdenticalClass
	}
	if Similarity(status, tweet) >= threshold {
		return Similar
	}
	return Different
}

// Index precomputes embeddings for a set of texts so a user's full
// timeline can be compared pairwise without re-embedding (the Fig. 14
// computation is quadratic per user).
type Index struct {
	Texts   []string
	Vectors []Vector
}

// NewIndex embeds all texts.
func NewIndex(texts []string) *Index {
	idx := &Index{Texts: texts, Vectors: make([]Vector, len(texts))}
	for i, t := range texts {
		idx.Vectors[i] = Embed(t)
	}
	return idx
}

// BestMatch returns the index and cosine of the closest text to the
// query embedding, or (-1, 0) on an empty index.
func (ix *Index) BestMatch(q Vector) (int, float64) {
	best, bestSim := -1, math.Inf(-1)
	for i, v := range ix.Vectors {
		if s := Cosine(q, v); s > bestSim {
			best, bestSim = i, s
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSim
}
