// Per-host circuit breaking and health tracking.
//
// The paper's crawlers skipped dead instances rather than hammering them
// (§3.2: 11.58% of Mastodon timeline crawls hit downed hosts). Without a
// breaker every request to a dead host burns the full retry budget —
// MaxAttempts dials, each with backoff — multiplied by every account on
// that instance. The HealthRegistry gives each host a classic
// closed/open/half-open breaker plus an error taxonomy (dial failures,
// timeouts, transport resets, 5xx, 429), so a host that keeps failing is
// quarantined after a handful of observations and revisited only by a
// single cooldown probe.
package httpkit

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"flock/internal/vclock"
)

// ErrCircuitOpen is returned (wrapped in *HostError) when a request is
// refused because the target host's breaker is open.
var ErrCircuitOpen = errors.New("httpkit: circuit open")

// HostError attaches the refusing host to ErrCircuitOpen.
type HostError struct {
	Host string
	Err  error
}

func (e *HostError) Error() string { return fmt.Sprintf("httpkit: host %s: %v", e.Host, e.Err) }
func (e *HostError) Unwrap() error { return e.Err }

// ErrorKind is the failure taxonomy the registry tracks per host.
type ErrorKind string

const (
	// KindDial: the connection could not be established.
	KindDial ErrorKind = "dial"
	// KindTimeout: the request or connection timed out.
	KindTimeout ErrorKind = "timeout"
	// KindConn: the connection failed mid-flight (reset, EOF).
	KindConn ErrorKind = "conn"
	// Kind5xx: the host answered with a server error.
	Kind5xx ErrorKind = "5xx"
	// Kind429: the host rate-limited us. Counts as alive.
	Kind429 ErrorKind = "429"
	// KindOther: terminal client-side statuses (4xx) and the rest.
	KindOther ErrorKind = "other"
	// KindBreakerOpen is a synthetic kind delivered only to listeners
	// when a request is refused by an open breaker. It is never added
	// to a host's counts — the refusal is our doing, not the host's —
	// but adaptive controllers treat it like backpressure.
	KindBreakerOpen ErrorKind = "breaker-open"
)

// trips reports whether a failure kind counts toward opening the breaker.
// 429 means the host is alive and pacing us; 4xx means we asked a live
// host a bad question — neither is evidence of a dead host.
func (k ErrorKind) trips() bool {
	switch k {
	case KindDial, KindTimeout, KindConn, Kind5xx:
		return true
	}
	return false
}

// BreakerState is the classic three-state circuit.
type BreakerState string

const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerPolicy tunes the per-host circuit breakers.
type BreakerPolicy struct {
	// FailureThreshold is the consecutive tripping failures that open the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long an open circuit waits before admitting one
	// half-open probe (default 30s).
	Cooldown time.Duration
	// QuarantineAfter marks a host quarantined once its breaker has
	// opened this many times since its last success (default 3).
	// Quarantine is advisory — the breaker still probes — but crawl
	// planners can skip quarantined hosts entirely, as the paper's
	// crawlers skipped dead instances.
	QuarantineAfter int
	// Probation is how long after its last failure a quarantined host
	// stays skip-worthy (default 1h). Past that age the host decays to
	// probation: HostHealth.Quarantined turns false and
	// HostHealth.Probation true, telling planners to probe it at the
	// limiter floor instead of banning it forever. The age is read
	// through the registry's clock (vclock.NowFunc), so persisted
	// quarantine state replays correctly under a virtual clock.
	Probation time.Duration
}

// DefaultBreaker is a crawl-appropriate policy.
var DefaultBreaker = BreakerPolicy{FailureThreshold: 5, Cooldown: 30 * time.Second, QuarantineAfter: 3, Probation: time.Hour}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = DefaultBreaker.FailureThreshold
	}
	if p.Cooldown <= 0 {
		p.Cooldown = DefaultBreaker.Cooldown
	}
	if p.QuarantineAfter <= 0 {
		p.QuarantineAfter = DefaultBreaker.QuarantineAfter
	}
	if p.Probation <= 0 {
		p.Probation = DefaultBreaker.Probation
	}
	return p
}

// HostHealth is a snapshot of one host's breaker and error taxonomy.
// It is also the registry's persistence schema (Export/ImportHealth):
// the JSON form rides inside crawl checkpoints, so field tags are part
// of the checkpoint's v2 wire format.
type HostHealth struct {
	Host        string       `json:"host"`
	State       BreakerState `json:"state"`
	ConsecFails int          `json:"consec_fails,omitempty"`
	Opens       int          `json:"opens,omitempty"` // times the breaker tripped open, cumulative
	// QuarantineOpens counts opens since the host's last success; the
	// quarantine threshold reads this, so a recovered host sheds its
	// quarantine history while Opens keeps the lifetime total.
	QuarantineOpens int  `json:"quarantine_opens,omitempty"`
	ShortCircuits   int  `json:"short_circuits,omitempty"` // requests refused while open
	Quarantined     bool `json:"quarantined,omitempty"`
	// Probation is true when the host reached the quarantine threshold
	// but its last failure is older than the policy's Probation age:
	// no longer skip-worthy, but planners should re-admit it at the
	// limiter floor rather than with a full fan-out burst.
	Probation   bool              `json:"probation,omitempty"`
	Counts      map[ErrorKind]int `json:"counts,omitempty"`
	Successes   int               `json:"successes,omitempty"`
	LastFailure time.Time         `json:"last_failure"`
}

// hostState is the live breaker bookkeeping for one host.
type hostState struct {
	state       BreakerState
	consecFails int
	opens       int
	quarOpens   int // opens since the last success (quarantine threshold input)
	shorts      int
	counts      map[ErrorKind]int
	successes   int
	openedAt    time.Time
	probing     bool
	lastFailure time.Time
}

// HealthListener observes per-host outcomes as the registry records
// them: success=true for a successful exchange, otherwise the failure
// kind (including the synthetic KindBreakerOpen for refusals). Called
// outside the registry lock; implementations must be concurrency-safe.
type HealthListener func(host string, kind ErrorKind, success bool)

// HealthRegistry tracks per-host health and gates requests through
// circuit breakers. It is safe for concurrent use.
type HealthRegistry struct {
	mu        sync.Mutex
	policy    BreakerPolicy
	hosts     map[string]*hostState
	now       vclock.NowFunc
	listeners []HealthListener
}

// Subscribe registers a listener for every recorded outcome. Adaptive
// concurrency controllers key their AIMD steps off this stream.
func (r *HealthRegistry) Subscribe(fn HealthListener) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.listeners = append(r.listeners, fn)
	r.mu.Unlock()
}

// notify fans an outcome out to listeners; never called under r.mu.
func (r *HealthRegistry) notify(host string, kind ErrorKind, success bool) {
	r.mu.Lock()
	ls := r.listeners
	r.mu.Unlock()
	for _, fn := range ls {
		fn(host, kind, success)
	}
}

// NewHealthRegistry builds a registry with the given policy (zero fields
// take defaults).
func NewHealthRegistry(policy BreakerPolicy) *HealthRegistry {
	return &HealthRegistry{
		policy: policy.withDefaults(),
		hosts:  make(map[string]*hostState),
		now:    vclock.Wall,
	}
}

// SetClock swaps the registry's time base (default vclock.Wall).
// Cooldowns and quarantine probation ages are read through it, so a
// crawl replayed under a virtual clock keeps deterministic breaker
// behavior. Install the clock before traffic flows.
func (r *HealthRegistry) SetClock(now vclock.NowFunc) {
	if r == nil || now == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

func (r *HealthRegistry) host(host string) *hostState {
	h, ok := r.hosts[host]
	if !ok {
		h = &hostState{state: BreakerClosed, counts: make(map[ErrorKind]int)}
		r.hosts[host] = h
	}
	return h
}

// Allow reports whether a request to host may proceed. While the breaker
// is open it returns a *HostError wrapping ErrCircuitOpen; after the
// cooldown it admits exactly one half-open probe at a time.
func (r *HealthRegistry) Allow(host string) error {
	if r == nil {
		return nil
	}
	err := r.allow(host)
	if err != nil {
		r.notify(host, KindBreakerOpen, false)
	}
	return err
}

func (r *HealthRegistry) allow(host string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.host(host)
	switch h.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if r.now().Sub(h.openedAt) >= r.policy.Cooldown {
			h.state = BreakerHalfOpen
			h.probing = true
			return nil
		}
		h.shorts++
		return &HostError{Host: host, Err: ErrCircuitOpen}
	default: // half-open
		if h.probing {
			h.shorts++
			return &HostError{Host: host, Err: ErrCircuitOpen}
		}
		h.probing = true
		return nil
	}
}

// State returns host's current breaker state without consuming a
// half-open probe slot (unlike Allow). Hedging consults it before
// spending budget on a host the breaker is already rationing.
func (r *HealthRegistry) State(host string) BreakerState {
	if r == nil {
		return BreakerClosed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hosts[host]
	if !ok {
		return BreakerClosed
	}
	return h.state
}

// ReportSuccess records a successful exchange with host, closing a
// half-open breaker and resetting failure streaks.
func (r *HealthRegistry) ReportSuccess(host string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.host(host)
	h.successes++
	h.consecFails = 0
	// A successful exchange proves the host is back: drop the
	// quarantine history (the cumulative opens counter stays for
	// reporting) so planners stop skipping or flooring it.
	h.quarOpens = 0
	h.probing = false
	h.state = BreakerClosed
	r.mu.Unlock()
	r.notify(host, "", true)
}

// ReportFailure records a failed exchange of the given kind. Kinds that
// evidence a dead host advance the breaker; a half-open probe failure
// reopens immediately.
func (r *HealthRegistry) ReportFailure(host string, kind ErrorKind) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.host(host)
	h.counts[kind]++
	h.lastFailure = r.now()
	if !kind.trips() {
		if kind == Kind429 {
			// Rate limiting proves the host is alive.
			h.consecFails = 0
		}
		if h.state == BreakerHalfOpen {
			h.probing = false
		}
		r.mu.Unlock()
		r.notify(host, kind, false)
		return
	}
	h.consecFails++
	switch h.state {
	case BreakerHalfOpen:
		h.state = BreakerOpen
		h.openedAt = r.now()
		h.opens++
		h.quarOpens++
		h.probing = false
	case BreakerClosed:
		if h.consecFails >= r.policy.FailureThreshold {
			h.state = BreakerOpen
			h.openedAt = r.now()
			h.opens++
			h.quarOpens++
		}
	}
	r.mu.Unlock()
	r.notify(host, kind, false)
}

// snapshotLocked builds a HostHealth copy; caller holds r.mu.
func (r *HealthRegistry) snapshotLocked(host string, h *hostState) HostHealth {
	counts := make(map[ErrorKind]int, len(h.counts))
	for k, v := range h.counts {
		counts[k] = v
	}
	// Quarantine decays with age: a host over the threshold is
	// skip-worthy while its last failure is fresher than the probation
	// window, and merely on probation (probe at the limiter floor) once
	// it is older. Without the decay a host that died once would be
	// banned across every future resumed run.
	overThreshold := h.quarOpens >= r.policy.QuarantineAfter
	quarantined := overThreshold && r.now().Sub(h.lastFailure) < r.policy.Probation
	return HostHealth{
		Host:            host,
		State:           h.state,
		ConsecFails:     h.consecFails,
		Opens:           h.opens,
		QuarantineOpens: h.quarOpens,
		ShortCircuits:   h.shorts,
		Quarantined:     quarantined,
		Probation:       overThreshold && !quarantined,
		Counts:          counts,
		Successes:       h.successes,
		LastFailure:     h.lastFailure,
	}
}

// Health returns the snapshot for one host (zero value if never seen).
func (r *HealthRegistry) Health(host string) HostHealth {
	if r == nil {
		return HostHealth{Host: host, State: BreakerClosed}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hosts[host]
	if !ok {
		return HostHealth{Host: host, State: BreakerClosed, Counts: map[ErrorKind]int{}}
	}
	return r.snapshotLocked(host, h)
}

// Snapshot returns every tracked host's health, sorted by host.
func (r *HealthRegistry) Snapshot() []HostHealth {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]HostHealth, 0, len(r.hosts))
	for host, h := range r.hosts {
		out = append(out, r.snapshotLocked(host, h))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Quarantined lists hosts currently quarantined (breaker opened at least
// QuarantineAfter times), sorted.
func (r *HealthRegistry) Quarantined() []string {
	var out []string
	for _, h := range r.Snapshot() {
		if h.Quarantined {
			out = append(out, h.Host)
		}
	}
	return out
}

// Export returns the registry's full state for persistence (e.g.
// alongside a crawl checkpoint), sorted by host. The snapshot is
// self-contained: ImportHealth on a fresh registry reconstructs
// breaker positions, quarantine ages and the error taxonomy.
func (r *HealthRegistry) Export() []HostHealth {
	return r.Snapshot()
}

// ImportHealth seeds the registry from a persisted Export snapshot,
// replacing any existing state for the same hosts. Open and half-open
// breakers import as open with the cooldown anchored at the last
// failure, so a stale snapshot admits a half-open probe on first Allow
// while a fresh one keeps refusing. Quarantine is recomputed from the
// imported QuarantineOpens and LastFailure against the receiving
// registry's policy and clock — a snapshot older than the probation
// window therefore lands in probation, not quarantine. Listeners are
// not notified: imports are bookkeeping, not traffic.
func (r *HealthRegistry) ImportHealth(snap []HostHealth) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range snap {
		if h.Host == "" {
			continue
		}
		s := &hostState{
			state:       BreakerClosed,
			consecFails: h.ConsecFails,
			opens:       h.Opens,
			quarOpens:   h.QuarantineOpens,
			shorts:      h.ShortCircuits,
			successes:   h.Successes,
			lastFailure: h.LastFailure,
			counts:      make(map[ErrorKind]int, len(h.Counts)),
		}
		for k, v := range h.Counts {
			s.counts[k] = v
		}
		if h.State == BreakerOpen || h.State == BreakerHalfOpen {
			s.state = BreakerOpen
			s.openedAt = h.LastFailure
		}
		r.hosts[h.Host] = s
	}
}

// Classify maps a request outcome to the taxonomy: err from the
// transport (status 0), or a status code with err nil.
func Classify(err error, status int) ErrorKind {
	if err != nil {
		var ne net.Error
		if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
			return KindTimeout
		}
		var oe *net.OpError
		if errors.As(err, &oe) && oe.Op == "dial" {
			return KindDial
		}
		return KindConn
	}
	switch {
	case status == 429:
		return Kind429
	case status >= 500:
		return Kind5xx
	default:
		return KindOther
	}
}
