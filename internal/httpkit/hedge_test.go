package httpkit

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

func TestLatencyDigestSlidingQuantile(t *testing.T) {
	d := newLatencyDigest(4)
	if _, ok := d.quantile(0.5); ok {
		t.Fatal("empty digest returned a quantile")
	}
	for _, v := range []time.Duration{10, 20, 30, 40} {
		d.observe(v * time.Millisecond)
	}
	if q, _ := d.quantile(1.0); q != 40*time.Millisecond {
		t.Fatalf("p100 = %v, want 40ms", q)
	}
	if q, _ := d.quantile(0); q != 10*time.Millisecond {
		t.Fatalf("p0 = %v, want 10ms", q)
	}
	// The window slides: four more samples evict the first four.
	for _, v := range []time.Duration{1, 2, 3, 4} {
		d.observe(v * time.Millisecond)
	}
	if q, _ := d.quantile(1.0); q != 4*time.Millisecond {
		t.Fatalf("p100 after slide = %v, want 4ms", q)
	}
	if d.samples != 8 {
		t.Fatalf("samples = %d, want 8", d.samples)
	}
}

// TestHedgeDigestUsesInjectedClock drives the latency digest from a
// virtual clock: observed latency is whatever the clock says, not wall
// time.
func TestHedgeDigestUsesInjectedClock(t *testing.T) {
	var now atomic.Int64 // virtual nanos
	c := New(
		WithHedge(HedgePolicy{Percentile: 0.5, MinSamples: 1}),
		WithClock(func() time.Time { return time.Unix(0, now.Load()) }),
		WithSleep(noSleep),
		WithDoer(&fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
			now.Add(int64(250 * time.Millisecond)) // virtual service time
			return respond(200, "ok", nil), nil
		}}),
	)
	req, _ := http.NewRequest("GET", "https://slow.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	q, ok := c.LatencyQuantile("slow.example", 0.5)
	if !ok || q != 250*time.Millisecond {
		t.Fatalf("virtual latency quantile = %v ok=%v, want 250ms", q, ok)
	}
}

// warmClient builds a hedging client over fn and issues `warm` fast GET
// requests so the host's digest passes MinSamples.
func warmClient(t *testing.T, pol HedgePolicy, fn func(call int, req *http.Request) (*http.Response, error)) *Client {
	t.Helper()
	warmed := atomic.Bool{}
	c := New(
		WithHedge(pol),
		WithDoer(&fakeDoer{fn: func(call int, req *http.Request) (*http.Response, error) {
			if !warmed.Load() {
				return respond(200, "warm", nil), nil
			}
			return fn(call, req)
		}}),
	)
	for i := 0; i < pol.MinSamples; i++ {
		req, _ := http.NewRequest("GET", "https://h.example/warm", nil)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	warmed.Store(true)
	return c
}

// TestHedgeWinsAgainstStuckPrimary: the primary attempt wedges until
// cancelled; the backup fires after the hedge delay and wins.
func TestHedgeWinsAgainstStuckPrimary(t *testing.T) {
	var stuck atomic.Int32
	pol := HedgePolicy{Percentile: 0.9, MinSamples: 4, BudgetFrac: 1.0, MinDelay: 5 * time.Millisecond}
	c := warmClient(t, pol, func(_ int, req *http.Request) (*http.Response, error) {
		// First arrival (the primary: the hedge is delayed 5ms) wedges
		// until the race cancels it.
		if stuck.CompareAndSwap(0, 1) {
			<-req.Context().Done()
			return nil, req.Context().Err()
		}
		return respond(200, "hedged", nil), nil
	})
	req, _ := http.NewRequest("GET", "https://h.example/slow", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s := c.Stats()
	if s.HedgesFired != 1 || s.HedgeWins != 1 {
		t.Fatalf("stats %+v, want 1 hedge fired and won", s)
	}
	if s.Retries != 0 {
		t.Fatalf("hedge win must not count as a retry: %+v", s)
	}
}

// TestHedgeBudgetExhausted: with a tiny budget the trigger fires but is
// denied, and the slow primary is simply awaited.
func TestHedgeBudgetExhausted(t *testing.T) {
	pol := HedgePolicy{Percentile: 0.9, MinSamples: 4, BudgetFrac: 0.01, MinDelay: time.Millisecond}
	c := warmClient(t, pol, func(_ int, _ *http.Request) (*http.Response, error) {
		time.Sleep(15 * time.Millisecond)
		return respond(200, "slow but fine", nil), nil
	})
	req, _ := http.NewRequest("GET", "https://h.example/slow", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s := c.Stats()
	if s.HedgesFired != 0 {
		t.Fatalf("budget 1%% after %d requests must deny the hedge: %+v", s.Requests, s)
	}
	if s.HedgesDenied == 0 {
		t.Fatalf("denied hedge not counted: %+v", s)
	}
}

// TestHedgeNeverExceedsBudget hammers a uniformly slow host and checks
// the 5%-of-requests invariant afterwards.
func TestHedgeNeverExceedsBudget(t *testing.T) {
	pol := HedgePolicy{Percentile: 0.5, MinSamples: 4, BudgetFrac: 0.05, MinDelay: time.Microsecond}
	c := warmClient(t, pol, func(_ int, _ *http.Request) (*http.Response, error) {
		time.Sleep(2 * time.Millisecond)
		return respond(200, "meh", nil), nil
	})
	for i := 0; i < 60; i++ {
		req, _ := http.NewRequest("GET", "https://h.example/meh", nil)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	s := c.Stats()
	if float64(s.HedgesFired) > pol.BudgetFrac*float64(s.Requests) {
		t.Fatalf("hedges %d exceed budget %.0f%% of %d requests", s.HedgesFired, pol.BudgetFrac*100, s.Requests)
	}
}

// TestHedgeOnlyIdempotent: POSTs are never hedged, no matter how slow.
func TestHedgeOnlyIdempotent(t *testing.T) {
	pol := HedgePolicy{Percentile: 0.5, MinSamples: 4, BudgetFrac: 1.0, MinDelay: time.Microsecond}
	c := warmClient(t, pol, func(_ int, _ *http.Request) (*http.Response, error) {
		time.Sleep(10 * time.Millisecond)
		return respond(200, "posted", nil), nil
	})
	req, _ := http.NewRequest("POST", "https://h.example/write", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s := c.Stats()
	if s.HedgesFired != 0 || s.HedgesDenied != 0 {
		t.Fatalf("POST entered the hedge path: %+v", s)
	}
}

// TestHedgeRaceFallsBackToPrimary: when neither attempt produces a 2xx
// the primary's outcome surfaces, keeping retry semantics deterministic.
func TestHedgeRaceFallsBackToPrimary(t *testing.T) {
	var first atomic.Int32
	c := New(
		WithDoer(&fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
			if first.CompareAndSwap(0, 1) {
				time.Sleep(10 * time.Millisecond)
				return respond(503, "primary down", nil), nil
			}
			return respond(404, "hedge misses", nil), nil
		}}),
		WithHedge(HedgePolicy{Percentile: 0.5, MinSamples: 1, BudgetFrac: 1.0}),
	)
	req, _ := http.NewRequest("GET", "https://h.example/broken", nil)
	resp, err := c.race(req, "h.example", 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("race surfaced status %d, want the primary's 503", resp.StatusCode)
	}
}

// TestHedgeSkipsNonClosedBreaker: an open breaker is already rationing
// the host; the hedge trigger must not spend budget or probe slots.
func TestHedgeSkipsNonClosedBreaker(t *testing.T) {
	health := NewHealthRegistry(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	health.ReportFailure("h.example", KindDial) // trips immediately
	if health.State("h.example") != BreakerOpen {
		t.Fatal("breaker not open after threshold-1 failure")
	}
	c := New(
		WithBreaker(health),
		WithHedge(HedgePolicy{Percentile: 0.5, MinSamples: 1, BudgetFrac: 1.0}),
	)
	c.mu.Lock()
	c.requests = 100 // plenty of budget
	c.mu.Unlock()
	if c.allowHedge("h.example") {
		t.Fatal("hedge allowed against an open breaker")
	}
	if s := c.Stats(); s.HedgesDenied != 1 || s.HedgesFired != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestStateDoesNotConsumeProbe: State is a read-only peek; Allow after
// cooldown still gets its half-open probe.
func TestStateDoesNotConsumeProbe(t *testing.T) {
	health := NewHealthRegistry(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Nanosecond})
	health.ReportFailure("h.example", KindDial)
	for i := 0; i < 3; i++ {
		if st := health.State("h.example"); st != BreakerOpen {
			t.Fatalf("peek %d changed state to %v", i, st)
		}
	}
	time.Sleep(time.Millisecond) // past the cooldown: next Allow is the probe
	if err := health.Allow("h.example"); err != nil {
		t.Fatalf("half-open probe was consumed by State: %v", err)
	}
}

// TestSubscribeSeesOutcomes: listeners observe successes, classified
// failures and synthetic breaker-open refusals.
func TestSubscribeSeesOutcomes(t *testing.T) {
	health := NewHealthRegistry(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	type event struct {
		kind    ErrorKind
		success bool
	}
	var events []event
	health.Subscribe(func(host string, kind ErrorKind, success bool) {
		if host != "h.example" {
			t.Errorf("listener saw host %q", host)
		}
		events = append(events, event{kind, success})
	})
	health.ReportSuccess("h.example")
	health.ReportFailure("h.example", Kind429)
	health.ReportFailure("h.example", KindDial)
	_ = health.Allow("h.example") // refused: breaker open
	want := []event{{"", true}, {Kind429, false}, {KindDial, false}, {KindBreakerOpen, false}}
	if len(events) != len(want) {
		t.Fatalf("events %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

// TestZeroValueClientStillWorks pins the one-release compat window for
// struct-literal construction: the zero value behaves like New().
func TestZeroValueClientStillWorks(t *testing.T) {
	c := &Client{HTTP: &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return respond(200, "legacy", nil), nil
	}}}
	req, _ := http.NewRequest("GET", "https://h.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s := c.Stats(); s.Requests != 1 || s.HedgesFired != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOptionsCompose(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, req *http.Request) (*http.Response, error) {
		if req.Header.Get("User-Agent") != "ua/1" || req.Header.Get("Authorization") != "Bearer tok" {
			t.Errorf("headers not stamped: %v", req.Header)
		}
		return respond(200, "ok", nil), nil
	}}
	health := NewHealthRegistry(BreakerPolicy{})
	c := New(
		WithDoer(fd),
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}),
		WithLimiter(NewLimiter(0, 1)),
		WithBreaker(health),
		WithHedge(DefaultHedge),
		WithUserAgent("ua/1"),
		WithAuth("Bearer tok"),
		WithSleep(noSleep),
		WithRand(func() float64 { return 0 }),
	)
	if c.Health != health || c.Retry.MaxAttempts != 2 || !c.Hedge.enabled() {
		t.Fatalf("options not applied: %+v", c)
	}
	req, _ := http.NewRequest("GET", "https://h.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// guard against unused import when tests shrink
var _ = context.Background
