package httpkit

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// testRegistry returns a registry with a controllable clock.
func testRegistry(p BreakerPolicy) (*HealthRegistry, *time.Time) {
	r := NewHealthRegistry(p)
	now := time.Unix(1_700_000_000, 0)
	r.now = func() time.Time { return now }
	return r, &now
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	r, _ := testRegistry(BreakerPolicy{FailureThreshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		r.ReportFailure("dead.test", KindDial)
		if err := r.Allow("dead.test"); err != nil {
			t.Fatalf("breaker opened after %d failures", i+1)
		}
	}
	r.ReportFailure("dead.test", KindDial)
	err := r.Allow("dead.test")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	var he *HostError
	if !errors.As(err, &he) || he.Host != "dead.test" {
		t.Fatalf("HostError missing host: %v", err)
	}
	if h := r.Health("dead.test"); h.State != BreakerOpen || h.Opens != 1 || h.ShortCircuits != 1 {
		t.Fatalf("health %+v", h)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	r, now := testRegistry(BreakerPolicy{FailureThreshold: 2, Cooldown: 10 * time.Second})
	r.ReportFailure("flaky.test", Kind5xx)
	r.ReportFailure("flaky.test", Kind5xx)
	if err := r.Allow("flaky.test"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("breaker should be open")
	}
	*now = now.Add(11 * time.Second)
	// One probe admitted, concurrent requests still refused.
	if err := r.Allow("flaky.test"); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	if err := r.Allow("flaky.test"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	r.ReportSuccess("flaky.test")
	if err := r.Allow("flaky.test"); err != nil {
		t.Fatalf("breaker not closed after probe success: %v", err)
	}
	if h := r.Health("flaky.test"); h.State != BreakerClosed {
		t.Fatalf("state %s", h.State)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	r, now := testRegistry(BreakerPolicy{FailureThreshold: 1, Cooldown: 5 * time.Second})
	r.ReportFailure("dead.test", KindTimeout)
	*now = now.Add(6 * time.Second)
	if err := r.Allow("dead.test"); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	r.ReportFailure("dead.test", KindTimeout)
	if err := r.Allow("dead.test"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("breaker not reopened after failed probe")
	}
	if h := r.Health("dead.test"); h.Opens != 2 {
		t.Fatalf("opens = %d, want 2", h.Opens)
	}
}

func TestBreakerQuarantine(t *testing.T) {
	r, now := testRegistry(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Second, QuarantineAfter: 2})
	for i := 0; i < 2; i++ {
		r.ReportFailure("gone.test", KindDial)
		*now = now.Add(2 * time.Second)
		if err := r.Allow("gone.test"); err != nil {
			t.Fatalf("probe %d refused: %v", i, err)
		}
	}
	q := r.Quarantined()
	if len(q) != 1 || q[0] != "gone.test" {
		t.Fatalf("quarantined = %v", q)
	}
}

func TestRateLimitDoesNotTrip(t *testing.T) {
	r, _ := testRegistry(BreakerPolicy{FailureThreshold: 2})
	for i := 0; i < 10; i++ {
		r.ReportFailure("busy.test", Kind429)
	}
	if err := r.Allow("busy.test"); err != nil {
		t.Fatalf("429s tripped the breaker: %v", err)
	}
	// And a 429 resets a dial-failure streak: the host is demonstrably up.
	r.ReportFailure("busy.test", KindDial)
	r.ReportFailure("busy.test", Kind429)
	r.ReportFailure("busy.test", KindDial)
	if err := r.Allow("busy.test"); err != nil {
		t.Fatalf("streak not reset by 429: %v", err)
	}
	if h := r.Health("busy.test"); h.Counts[Kind429] != 11 || h.Counts[KindDial] != 2 {
		t.Fatalf("taxonomy %+v", h.Counts)
	}
}

func TestClassify(t *testing.T) {
	dialErr := &net.OpError{Op: "dial", Net: "memnet", Err: errors.New("down")}
	cases := []struct {
		err    error
		status int
		want   ErrorKind
	}{
		{dialErr, 0, KindDial},
		{context.DeadlineExceeded, 0, KindTimeout},
		{errors.New("read: connection reset"), 0, KindConn},
		{nil, 500, Kind5xx},
		{nil, 503, Kind5xx},
		{nil, 429, Kind429},
		{nil, 404, KindOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.err, tc.status); got != tc.want {
			t.Fatalf("Classify(%v, %d) = %s, want %s", tc.err, tc.status, got, tc.want)
		}
	}
}

func TestClientShortCircuitsOpenHost(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("refused")}
	}}
	reg := NewHealthRegistry(BreakerPolicy{FailureThreshold: 3, Cooldown: time.Hour})
	c := &Client{
		HTTP:   fd,
		Health: reg,
		Retry:  RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		Sleep:  noSleep,
	}
	// Two requests x two attempts = 4 dial failures: breaker opens at 3.
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("GET", "https://dead.example/x", nil)
		if _, err := c.Do(req); err == nil {
			t.Fatal("want error")
		}
	}
	attempts := fd.calls
	req, _ := http.NewRequest("GET", "https://dead.example/x", nil)
	_, err := c.Do(req)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want short circuit", err)
	}
	if fd.calls != attempts {
		t.Fatal("request reached the transport despite open breaker")
	}
	// The breaker opened mid-request-2 (its retry was refused) and then
	// short-circuited request 3 outright.
	if s := c.Stats(); s.ShortCircuits != 2 {
		t.Fatalf("stats %+v", s)
	}
	if h := reg.Health("dead.example"); h.State != BreakerOpen {
		t.Fatalf("health %+v", h)
	}
}

func TestClientBreakerIsolatesHosts(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, req *http.Request) (*http.Response, error) {
		if req.URL.Hostname() == "dead.example" {
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("refused")}
		}
		return respond(200, "ok", nil), nil
	}}
	reg := NewHealthRegistry(BreakerPolicy{FailureThreshold: 2, Cooldown: time.Hour})
	c := &Client{HTTP: fd, Health: reg, Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, Sleep: noSleep}
	req, _ := http.NewRequest("GET", "https://dead.example/", nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("want failure")
	}
	if err := reg.Allow("dead.example"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("dead host breaker not open")
	}
	req, _ = http.NewRequest("GET", "https://alive.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("healthy host affected by dead host's breaker: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := reg.Health("alive.example"); h.Successes != 1 || h.State != BreakerClosed {
		t.Fatalf("health %+v", h)
	}
}

func TestClientSuccessClosesBreakerAfterCooldown(t *testing.T) {
	down := true
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		if down {
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("refused")}
		}
		return respond(200, "ok", nil), nil
	}}
	reg := NewHealthRegistry(BreakerPolicy{FailureThreshold: 1, Cooldown: 10 * time.Millisecond})
	c := &Client{HTTP: fd, Health: reg, Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, Sleep: noSleep}
	req, _ := http.NewRequest("GET", "https://flap.example/", nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("want dial failure")
	}
	if _, err := c.Do(req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want short circuit", err)
	}
	down = false
	time.Sleep(15 * time.Millisecond)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := reg.Health("flap.example"); h.State != BreakerClosed {
		t.Fatalf("state %s after recovery", h.State)
	}
}

func TestDoRetriesBodyWithGetBody(t *testing.T) {
	var bodies []string
	fd := &fakeDoer{fn: func(call int, req *http.Request) (*http.Response, error) {
		b, _ := io.ReadAll(req.Body)
		bodies = append(bodies, string(b))
		if call == 1 {
			return respond(503, "", nil), nil
		}
		return respond(200, "ok", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	// http.NewRequest sets GetBody for *strings.Reader.
	req, _ := http.NewRequest("POST", "https://x.example/", strings.NewReader("payload"))
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != "payload" || bodies[1] != "payload" {
		t.Fatalf("bodies = %q, want payload twice", bodies)
	}
}

func TestDoRefusesRetryWithoutGetBody(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, req *http.Request) (*http.Response, error) {
		io.Copy(io.Discard, req.Body)
		return respond(503, "unavailable", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	req, _ := http.NewRequest("POST", "https://x.example/", strings.NewReader("payload"))
	req.GetBody = nil // e.g. a streaming body that cannot be replayed
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("want error")
	}
	if fd.calls != 1 {
		t.Fatalf("unrewindable body retried: %d calls", fd.calls)
	}
	if !IsStatus(err, 503) {
		t.Fatalf("original failure lost: %v", err)
	}
	if s := c.Stats(); s.RetriesDropped != 1 {
		t.Fatalf("stats %+v", s)
	}
}
