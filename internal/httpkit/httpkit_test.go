package httpkit

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeDoer scripts responses for the client under test.
type fakeDoer struct {
	mu    sync.Mutex
	calls int
	fn    func(call int, req *http.Request) (*http.Response, error)
}

func (f *fakeDoer) Do(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	return f.fn(n, req)
}

func respond(code int, body string, hdr map[string]string) *http.Response {
	h := http.Header{}
	for k, v := range hdr {
		h.Set(k, v)
	}
	return &http.Response{
		StatusCode: code,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestDoSuccess(t *testing.T) {
	c := &Client{
		HTTP: &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
			return respond(200, "ok", nil), nil
		}},
		Sleep: noSleep,
	}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body %q", body)
	}
	if s := c.Stats(); s.Requests != 1 || s.Retries != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDoRetriesTransient5xx(t *testing.T) {
	fd := &fakeDoer{fn: func(call int, _ *http.Request) (*http.Response, error) {
		if call < 3 {
			return respond(503, "unavailable", nil), nil
		}
		return respond(200, "finally", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fd.calls != 3 {
		t.Fatalf("calls = %d, want 3", fd.calls)
	}
	if s := c.Stats(); s.Retries != 2 {
		t.Fatalf("retries = %d", s.Retries)
	}
}

func TestDoHonours429ResetHeader(t *testing.T) {
	var slept []time.Duration
	fd := &fakeDoer{fn: func(call int, _ *http.Request) (*http.Response, error) {
		if call == 1 {
			return respond(429, "rate limited", map[string]string{
				"x-rate-limit-reset": strconv.FormatInt(time.Now().Add(2*time.Second).Unix(), 10),
			}), nil
		}
		return respond(200, "ok", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slept) != 1 {
		t.Fatalf("slept %v times", len(slept))
	}
	if slept[0] < 500*time.Millisecond || slept[0] > 3*time.Second {
		t.Fatalf("slept %v, want about 2s", slept[0])
	}
	if c.Stats().RateLimited != 1 {
		t.Fatal("429 not counted")
	}
}

func TestDoHonoursRetryAfterSeconds(t *testing.T) {
	var slept time.Duration
	fd := &fakeDoer{fn: func(call int, _ *http.Request) (*http.Response, error) {
		if call == 1 {
			return respond(429, "", map[string]string{"Retry-After": "3"}), nil
		}
		return respond(200, "ok", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: func(ctx context.Context, d time.Duration) error {
		slept = d
		return nil
	}}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slept != 3*time.Second {
		t.Fatalf("slept %v, want 3s", slept)
	}
}

func TestDoTerminal404(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return respond(404, "not found", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	req, _ := http.NewRequest("GET", "https://x.example/missing", nil)
	_, err := c.Do(req)
	if !IsStatus(err, 404) {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	if fd.calls != 1 {
		t.Fatalf("404 was retried %d times", fd.calls)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Body != "not found" {
		t.Fatalf("StatusError body missing: %+v", se)
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return respond(500, "boom", nil), nil
	}}
	c := &Client{HTTP: fd, Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, Sleep: noSleep}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	_, err := c.Do(req)
	if !IsStatus(err, 500) {
		t.Fatalf("err = %v", err)
	}
	if fd.calls != 3 {
		t.Fatalf("calls = %d, want 3", fd.calls)
	}
}

func TestDoNetworkErrorRetried(t *testing.T) {
	fd := &fakeDoer{fn: func(call int, _ *http.Request) (*http.Response, error) {
		if call == 1 {
			return nil, errors.New("connection reset")
		}
		return respond(200, "ok", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestDoContextCancelStopsRetry(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return respond(503, "", nil), nil
	}}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{HTTP: fd, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	req, _ := http.NewRequestWithContext(ctx, "GET", "https://x.example/", nil)
	_, err := c.Do(req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestAuthAndUserAgentHeaders(t *testing.T) {
	var gotAuth, gotUA string
	fd := &fakeDoer{fn: func(_ int, req *http.Request) (*http.Response, error) {
		gotAuth = req.Header.Get("Authorization")
		gotUA = req.Header.Get("User-Agent")
		return respond(200, "{}", nil), nil
	}}
	c := &Client{HTTP: fd, Auth: "Bearer token123", UserAgent: "flock/1.0", Sleep: noSleep}
	var out map[string]any
	if err := c.GetJSON(context.Background(), "https://x.example/api", &out); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "Bearer token123" || gotUA != "flock/1.0" {
		t.Fatalf("headers auth=%q ua=%q", gotAuth, gotUA)
	}
}

func TestGetJSONDecodes(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return respond(200, `{"name":"mastodon.social","users":100}`, nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	var out struct {
		Name  string `json:"name"`
		Users int    `json:"users"`
	}
	if err := c.GetJSON(context.Background(), "https://x.example/", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "mastodon.social" || out.Users != 100 {
		t.Fatalf("decoded %+v", out)
	}
}

func TestGetJSONBadJSON(t *testing.T) {
	fd := &fakeDoer{fn: func(_ int, _ *http.Request) (*http.Response, error) {
		return respond(200, `{"name":`, nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: noSleep}
	var out map[string]any
	if err := c.GetJSON(context.Background(), "https://x.example/", &out); err == nil {
		t.Fatal("bad JSON decoded without error")
	}
}

func TestLimiterPacing(t *testing.T) {
	l := NewLimiter(100, 1)
	var slept time.Duration
	l.sleep = func(ctx context.Context, d time.Duration) error {
		slept += d
		l.now = func() time.Time { return time.Now().Add(slept) }
		return nil
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// 5 requests at 100/s with burst 1 needs about 40ms of waiting.
	if slept < 20*time.Millisecond || slept > 100*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

func TestLimiterBurst(t *testing.T) {
	l := NewLimiter(1, 3)
	sleeps := 0
	l.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps++
		l.now = func() time.Time { return time.Now().Add(time.Duration(sleeps) * time.Second) }
		return nil
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if sleeps != 0 {
		t.Fatalf("burst of 3 slept %d times", sleeps)
	}
}

func TestNilLimiterUnlimited(t *testing.T) {
	var l *Limiter
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPaginate(t *testing.T) {
	pages := map[string]Page[int]{
		"":   {Items: []int{1, 2}, Next: "p2"},
		"p2": {Items: []int{3}, Next: "p3"},
		"p3": {Items: []int{4, 5}, Next: ""},
	}
	got, err := Paginate(context.Background(), 0, func(_ context.Context, tok string) (Page[int], error) {
		return pages[tok], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("got %v", got)
	}
}

func TestPaginateMaxPages(t *testing.T) {
	calls := 0
	got, err := Paginate(context.Background(), 2, func(_ context.Context, tok string) (Page[int], error) {
		calls++
		return Page[int]{Items: []int{calls}, Next: fmt.Sprintf("p%d", calls)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || len(got) != 2 {
		t.Fatalf("calls=%d items=%v", calls, got)
	}
}

func TestPaginateStuckToken(t *testing.T) {
	_, err := Paginate(context.Background(), 0, func(_ context.Context, tok string) (Page[int], error) {
		return Page[int]{Next: "same"}, nil
	})
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("err = %v", err)
	}
}

func TestPaginatePartialOnError(t *testing.T) {
	got, err := Paginate(context.Background(), 0, func(_ context.Context, tok string) (Page[int], error) {
		if tok == "" {
			return Page[int]{Items: []int{1}, Next: "p2"}, nil
		}
		return Page[int]{}, errors.New("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if len(got) != 1 {
		t.Fatalf("partial items lost: %v", got)
	}
}

func TestGroupBoundedConcurrency(t *testing.T) {
	g := NewGroup(3)
	var cur, peak int64
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			n := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d > 3", peak)
	}
}

func TestGroupCollectsErrors(t *testing.T) {
	g := NewGroup(2)
	for i := 0; i < 5; i++ {
		i := i
		g.Go(func() error {
			if i%2 == 0 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	err := g.Wait()
	if err == nil {
		t.Fatal("want joined error")
	}
	if g.Errs() != 3 {
		t.Fatalf("Errs = %d, want 3", g.Errs())
	}
}

func TestBuildURL(t *testing.T) {
	q := url.Values{}
	q.Set("query", `url:"mastodon.social" has:links`)
	q.Set("max_results", "100")
	u := BuildURL("https", "api.twitter.example", "/2/tweets/search/all", q)
	parsed, err := url.Parse(u)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Host != "api.twitter.example" || parsed.Path != "/2/tweets/search/all" {
		t.Fatalf("url = %s", u)
	}
	if parsed.Query().Get("query") != `url:"mastodon.social" has:links` {
		t.Fatalf("query roundtrip failed: %s", parsed.Query().Get("query"))
	}
}

func TestRetryPolicyDelayCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second, MaxDelay: 4 * time.Second}
	if d := p.delay(1, nil); d != time.Second {
		t.Fatalf("delay(1) = %v", d)
	}
	if d := p.delay(2, nil); d != 2*time.Second {
		t.Fatalf("delay(2) = %v", d)
	}
	if d := p.delay(8, nil); d != 4*time.Second {
		t.Fatalf("delay(8) = %v, want cap", d)
	}
}

func TestRetryPolicyJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: time.Minute, JitterFrac: 0.5}
	d := p.delay(1, func() float64 { return 1.0 })
	if d <= time.Second || d > 1500*time.Millisecond {
		t.Fatalf("jittered delay = %v", d)
	}
}

func TestRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2023, 2, 1, 12, 0, 0, 0, time.UTC)
	resp := respond(429, "", map[string]string{
		"Retry-After": now.Add(90 * time.Second).Format(http.TimeFormat),
	})
	d, ok := retryAfter(resp, now)
	if !ok {
		t.Fatal("HTTP-date Retry-After not parsed")
	}
	if d != 90*time.Second {
		t.Fatalf("d = %v, want 90s", d)
	}
}

func TestRetryAfterPastHTTPDateNegative(t *testing.T) {
	now := time.Date(2023, 2, 1, 12, 0, 0, 0, time.UTC)
	resp := respond(429, "", map[string]string{
		"Retry-After": now.Add(-time.Minute).Format(http.TimeFormat),
	})
	d, ok := retryAfter(resp, now)
	if !ok || d >= 0 {
		t.Fatalf("past HTTP-date: d=%v ok=%v, want negative wait reported", d, ok)
	}
}

func TestRetryAfterPastEpochReset(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	resp := respond(429, "", map[string]string{
		"x-rate-limit-reset": strconv.FormatInt(now.Add(-30*time.Second).Unix(), 10),
	})
	d, ok := retryAfter(resp, now)
	if !ok || d >= 0 {
		t.Fatalf("past epoch reset: d=%v ok=%v", d, ok)
	}
}

func TestRetryAfterMalformedIgnored(t *testing.T) {
	resp := respond(429, "", map[string]string{"Retry-After": "soon-ish"})
	if _, ok := retryAfter(resp, time.Now()); ok {
		t.Fatal("malformed Retry-After accepted")
	}
	resp = respond(429, "", map[string]string{"x-rate-limit-reset": "not-a-number"})
	if _, ok := retryAfter(resp, time.Now()); ok {
		t.Fatal("malformed reset header accepted")
	}
}

func TestDoClampsNegativeServerWait(t *testing.T) {
	// A past-epoch reset must not produce a negative sleep: the client
	// clamps to an immediate retry.
	var slept []time.Duration
	fd := &fakeDoer{fn: func(call int, _ *http.Request) (*http.Response, error) {
		if call == 1 {
			return respond(429, "", map[string]string{
				"x-rate-limit-reset": strconv.FormatInt(time.Now().Add(-time.Hour).Unix(), 10),
			}), nil
		}
		return respond(200, "ok", nil), nil
	}}
	c := &Client{HTTP: fd, Sleep: func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}}
	req, _ := http.NewRequest("GET", "https://x.example/", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slept) != 1 || slept[0] != 0 {
		t.Fatalf("slept %v, want a single zero wait", slept)
	}
}

func TestPaginateStuckTokenCycle(t *testing.T) {
	// A two-token cycle (a -> b -> a) is not caught by the equal-token
	// guard, but maxPages still bounds it.
	calls := 0
	_, err := Paginate(context.Background(), 10, func(_ context.Context, tok string) (Page[int], error) {
		calls++
		if tok == "a" {
			return Page[int]{Next: "b"}, nil
		}
		return Page[int]{Next: "a"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("cycle ran %d pages, want capped at 10", calls)
	}
}
