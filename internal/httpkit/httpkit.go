// Package httpkit is the HTTP toolkit the flock crawlers are built on.
//
// The paper's data collection (§3) leans on two awkward realities of
// crawling social platforms: server-side rate limits (Twitter's v2 API
// returns 429 with x-rate-limit-reset; Mastodon returns 429 with
// X-RateLimit-Reset or Retry-After) and flaky instances (timeouts,
// transient 5xx, dead hosts). httpkit packages the standard responses to
// both — client-side token-bucket pacing, reactive backoff that honours
// server reset headers, capped exponential retry with jitter — behind a
// small Client, plus cursor/max_id pagination iterators and a bounded
// concurrency group for fan-out crawls.
package httpkit

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"flock/internal/vclock"
)

// Doer is the subset of *http.Client the kit needs; tests substitute it.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// StatusError is returned for non-2xx responses that are not retried to
// success. Body holds up to 4 KiB of the response for diagnostics.
type StatusError struct {
	Code int
	URL  string
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("httpkit: %s returned status %d", e.URL, e.Code)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// RetryPolicy controls the retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	MaxAttempts int
	// BaseDelay is the first backoff step; each retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (also caps server-requested waits).
	MaxDelay time.Duration
	// JitterFrac adds up to this fraction of random extra delay, spreading
	// synchronized retries apart. 0 disables jitter.
	JitterFrac float64
}

// DefaultRetry is a sane crawl policy: 4 attempts, 250ms base, 30s cap.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 250 * time.Millisecond, MaxDelay: 30 * time.Second, JitterFrac: 0.2}

// delay computes the backoff before attempt i (1-based retry index).
func (p RetryPolicy) delay(i int, rnd func() float64) time.Duration {
	d := time.Duration(float64(p.BaseDelay) * math.Pow(2, float64(i-1)))
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 && rnd != nil {
		d += time.Duration(rnd() * p.JitterFrac * float64(d))
	}
	return d
}

// Limiter is a token-bucket rate limiter. A zero-value Limiter is
// unlimited. It is safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(context.Context, time.Duration) error
}

// NewLimiter returns a limiter allowing rate requests per second with the
// given burst. rate <= 0 means unlimited.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

func (l *Limiter) clockNow() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

func (l *Limiter) doSleep(ctx context.Context, d time.Duration) error {
	if l.sleep != nil {
		return l.sleep(ctx, d)
	}
	return SleepContext(ctx, d)
}

// Wait blocks until a token is available or ctx is done.
func (l *Limiter) Wait(ctx context.Context) error {
	if l == nil || l.rate <= 0 {
		return ctx.Err()
	}
	for {
		l.mu.Lock()
		now := l.clockNow()
		if !l.last.IsZero() {
			l.tokens += now.Sub(l.last).Seconds() * l.rate
			if l.tokens > l.burst {
				l.tokens = l.burst
			}
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		if err := l.doSleep(ctx, time.Duration(need*float64(time.Second))); err != nil {
			return err
		}
	}
}

// SleepContext sleeps for d or until ctx is done, whichever comes first.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client wraps a Doer with pacing, retries, rate-limit awareness,
// per-host circuit breaking and tail-latency hedging.
//
// Construct clients with New and functional options. The zero value
// (and direct struct-literal construction) keeps working for one more
// release so existing call sites migrate gradually, but the rawhttp
// analyzer in internal/lint flags Client composite literals outside
// this package; new code must go through New.
type Client struct {
	// HTTP performs the requests; defaults to http.DefaultClient.
	HTTP Doer
	// Limiter paces requests client-side; nil means unpaced.
	Limiter *Limiter
	// Retry is the retry policy; zero value means DefaultRetry.
	Retry RetryPolicy
	// UserAgent is set on every request when non-empty.
	UserAgent string
	// Auth, when non-empty, is sent as the Authorization header
	// ("Bearer <token>" for both platforms' APIs).
	Auth string
	// Rand supplies jitter in [0,1); defaults to a fixed mid value for
	// reproducibility when nil.
	Rand func() float64
	// Sleep is the wait function, overridable in tests. Defaults to
	// SleepContext.
	Sleep func(context.Context, time.Duration) error
	// Health, when non-nil, gates every request through the registry's
	// per-host circuit breaker and records each outcome's error kind.
	// Requests to a host with an open breaker fail fast with a
	// *HostError wrapping ErrCircuitOpen instead of burning the retry
	// budget against a dead host.
	Health *HealthRegistry
	// Hedge enables tail-latency hedging for idempotent GET/HEAD
	// requests (see HedgePolicy). The zero value disables it.
	Hedge HedgePolicy
	// Clock supplies the time base for latency digests and Retry-After
	// arithmetic; nil means vclock.Wall. Virtual-time tests inject a
	// vclock.Clock's Now so hedge percentiles replay deterministically.
	Clock vclock.NowFunc

	// stats
	mu           sync.Mutex
	requests     int
	retries      int
	limited      int
	shorts       int
	dropped      int
	hedges       int
	hedgeWins    int
	hedgesDenied int
	digests      map[string]*latencyDigest
}

// Stats reports counters accumulated by the client.
type Stats struct {
	Requests       int // requests attempted (including retries and hedges)
	Retries        int // retried attempts
	RateLimited    int // 429 responses observed
	ShortCircuits  int // requests refused by an open circuit breaker
	RetriesDropped int // retries refused because the body cannot be rewound
	HedgesFired    int // backup attempts launched for slow requests
	HedgeWins      int // hedged exchanges the backup attempt won
	HedgesDenied   int // hedge triggers refused by budget or breaker state
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Requests:       c.requests,
		Retries:        c.retries,
		RateLimited:    c.limited,
		ShortCircuits:  c.shorts,
		RetriesDropped: c.dropped,
		HedgesFired:    c.hedges,
		HedgeWins:      c.hedgeWins,
		HedgesDenied:   c.hedgesDenied,
	}
}

func (c *Client) doer() Doer {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) policy() RetryPolicy {
	if c.Retry.MaxAttempts <= 0 {
		return DefaultRetry
	}
	return c.Retry
}

func (c *Client) rnd() float64 {
	if c.Rand != nil {
		return c.Rand()
	}
	return 0.5
}

func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	return SleepContext(ctx, d)
}

func (c *Client) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return vclock.Wall()
}

// retryAfter extracts a server-requested wait from 429/503 responses:
// Retry-After (seconds) or x-rate-limit-reset (unix epoch), the two
// conventions Twitter and Mastodon use.
func retryAfter(resp *http.Response, now time.Time) (time.Duration, bool) {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second, true
		}
		if at, err := http.ParseTime(v); err == nil {
			return at.Sub(now), true
		}
	}
	for _, h := range []string{"x-rate-limit-reset", "X-RateLimit-Reset"} {
		if v := resp.Header.Get(h); v != "" {
			if epochSecs, err := strconv.ParseInt(v, 10, 64); err == nil {
				return time.Unix(epochSecs, 0).Sub(now), true
			}
		}
	}
	return 0, false
}

// retryable reports whether a response status is worth retrying.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// attempt performs one wire exchange: breaker admission, pacing,
// header stamping, the round trip, latency observation and health
// reporting. It returns the response whatever its status — retry and
// non-2xx handling stay in Do — and is the unit the hedging race
// duplicates.
func (c *Client) attempt(r *http.Request, host string) (*http.Response, error) {
	if c.Health != nil {
		if err := c.Health.Allow(host); err != nil {
			c.mu.Lock()
			c.shorts++
			c.mu.Unlock()
			return nil, err
		}
	}
	if c.Limiter != nil {
		if err := c.Limiter.Wait(r.Context()); err != nil {
			return nil, err
		}
	}
	if c.UserAgent != "" {
		r.Header.Set("User-Agent", c.UserAgent)
	}
	if c.Auth != "" {
		r.Header.Set("Authorization", c.Auth)
	}
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
	start := c.now()
	resp, err := c.doer().Do(r)
	if err != nil {
		if r.Context().Err() != nil {
			// Cancellation (caller or a settled hedge race) is not a
			// host failure; don't feed it to the breaker.
			return nil, r.Context().Err()
		}
		c.Health.ReportFailure(host, Classify(err, 0))
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		c.observeLatency(host, c.now().Sub(start))
		c.Health.ReportSuccess(host)
		return resp, nil
	}
	c.Health.ReportFailure(host, Classify(nil, resp.StatusCode))
	if resp.StatusCode == http.StatusTooManyRequests {
		c.mu.Lock()
		c.limited++
		c.mu.Unlock()
	}
	return resp, nil
}

// send routes one exchange through the hedging race when the request
// is hedgeable and the host's latency digest is warm, and straight to
// attempt otherwise.
func (c *Client) send(r *http.Request, host string) (*http.Response, error) {
	if c.hedgeable(r) {
		if delay, ok := c.hedgeDelay(host); ok {
			return c.race(r, host, delay)
		}
	}
	return c.attempt(r, host)
}

// Do performs req with pacing, retries, per-host circuit breaking and
// (when configured) tail-latency hedging. The caller owns the response
// body on success. Non-2xx terminal responses become *StatusError;
// requests refused by an open breaker return a *HostError wrapping
// ErrCircuitOpen.
//
// Body-bearing requests are only retried when req.GetBody can supply a
// fresh copy (http.NewRequest sets it for common in-memory readers); a
// consumed, unrewindable body would resend nothing, so the retry is
// refused instead.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	policy := c.policy()
	host := strings.ToLower(req.URL.Hostname())
	rewindable := req.Body == nil || req.Body == http.NoBody || req.GetBody != nil
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if !rewindable {
				// Attempt 1 consumed the body; without GetBody a
				// retry would send an empty payload. Surface the original
				// failure instead.
				c.mu.Lock()
				c.dropped++
				c.mu.Unlock()
				return nil, fmt.Errorf("httpkit: %s %s: cannot retry consumed request body (no GetBody): %w", req.Method, req.URL, lastErr)
			}
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
		}
		r := req.Clone(req.Context())
		if attempt > 1 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("httpkit: rewinding request body: %w", err)
			}
			r.Body = body
		}
		resp, err := c.send(r, host)
		if err != nil {
			if errors.Is(err, ErrCircuitOpen) {
				if lastErr != nil {
					// The breaker tripped mid-retry: the underlying failure
					// is more informative than the refusal.
					return nil, fmt.Errorf("%w (circuit opened for %s)", lastErr, host)
				}
				return nil, err
			}
			if req.Context().Err() != nil {
				return nil, req.Context().Err()
			}
			lastErr = err
			if attempt < policy.MaxAttempts {
				if werr := c.wait(req.Context(), policy.delay(attempt, c.rnd)); werr != nil {
					return nil, werr
				}
				continue
			}
			return nil, fmt.Errorf("httpkit: %s %s failed after %d attempts: %w", req.Method, req.URL, attempt, err)
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return resp, nil
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if retryable(resp.StatusCode) && attempt < policy.MaxAttempts {
			d, ok := retryAfter(resp, c.now())
			if !ok {
				d = policy.delay(attempt, c.rnd)
			}
			if d < 0 {
				d = 0
			}
			if d > policy.MaxDelay {
				d = policy.MaxDelay
			}
			if werr := c.wait(req.Context(), d); werr != nil {
				return nil, werr
			}
			lastErr = &StatusError{Code: resp.StatusCode, URL: req.URL.String(), Body: string(body)}
			continue
		}
		return nil, &StatusError{Code: resp.StatusCode, URL: req.URL.String(), Body: string(body)}
	}
	if lastErr == nil {
		lastErr = errors.New("httpkit: retries exhausted")
	}
	return nil, lastErr
}

// GetJSON fetches u and decodes the JSON response into out.
func (c *Client) GetJSON(ctx context.Context, u string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("httpkit: decoding %s: %w", u, err)
	}
	return nil
}

// NewHTTPClient builds the plain *http.Client that backs a Client's Doer.
// Raw http.Client construction is confined to httpkit (the rawhttp
// analyzer in internal/lint enforces this) so that every outbound request
// path in the codebase is assembled in one place and can be wrapped with
// pacing, retries and per-host circuit breaking.
func NewHTTPClient(rt http.RoundTripper, timeout time.Duration) *http.Client {
	return &http.Client{Transport: rt, Timeout: timeout}
}

// BuildURL assembles scheme://host/path?query from parts, escaping query
// values.
func BuildURL(scheme, host, path string, query url.Values) string {
	u := url.URL{Scheme: scheme, Host: host, Path: path}
	if len(query) > 0 {
		u.RawQuery = query.Encode()
	}
	return u.String()
}

// Page is one page of a paginated fetch: the decoded items plus the token
// for the next page ("" when exhausted).
type Page[T any] struct {
	Items []T
	Next  string
}

// FetchPage is the page-fetching callback used by Paginate.
type FetchPage[T any] func(ctx context.Context, pageToken string) (Page[T], error)

// Paginate drains a cursor-paginated endpoint, calling fetch until the
// next token is empty or maxPages is reached (0 = unlimited). It returns
// all items in order.
func Paginate[T any](ctx context.Context, maxPages int, fetch FetchPage[T]) ([]T, error) {
	var out []T
	token := ""
	for page := 0; maxPages == 0 || page < maxPages; page++ {
		p, err := fetch(ctx, token)
		if err != nil {
			return out, err
		}
		out = append(out, p.Items...)
		if p.Next == "" {
			return out, nil
		}
		if p.Next == token {
			return out, fmt.Errorf("httpkit: pagination stuck on token %q", token)
		}
		token = p.Next
	}
	return out, nil
}

// Group runs tasks with bounded concurrency, collecting the first error
// but letting remaining tasks finish (a crawl wants maximal coverage, not
// fail-fast).
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

// NewGroup returns a Group running at most n tasks at once.
func NewGroup(n int) *Group {
	if n < 1 {
		n = 1
	}
	return &Group{sem: make(chan struct{}, n)}
}

// Go schedules fn. It blocks if the concurrency limit is reached.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.mu.Lock()
			g.errs = append(g.errs, err)
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until all scheduled tasks finish and returns the collected
// errors joined (nil if none failed).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.errs) == 0 {
		return nil
	}
	return errors.Join(g.errs...)
}

// Errs returns how many tasks have failed so far.
func (g *Group) Errs() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.errs)
}
