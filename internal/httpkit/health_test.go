package httpkit

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// quarantine drives host to quarantine on r: repeated tripping failures
// with probe cycles until the breaker has opened QuarantineAfter times.
func quarantine(t *testing.T, r *HealthRegistry, now *time.Time, host string, opens int) {
	t.Helper()
	for i := 0; i < opens; i++ {
		for j := 0; j < r.policy.FailureThreshold; j++ {
			r.ReportFailure(host, KindDial)
		}
		if h := r.Health(host); h.Opens <= i {
			t.Fatalf("breaker did not open on round %d: %+v", i, h)
		}
		if i+1 < opens {
			// Age past the cooldown and burn the half-open probe so the
			// next failure reopens.
			*now = now.Add(r.policy.Cooldown + time.Second)
			if err := r.Allow(host); err != nil {
				t.Fatalf("probe %d refused: %v", i, err)
			}
		}
	}
}

func TestHealthExportImportRoundTrip(t *testing.T) {
	policy := BreakerPolicy{FailureThreshold: 2, Cooldown: time.Minute, QuarantineAfter: 2, Probation: time.Hour}
	r, now := testRegistry(policy)
	quarantine(t, r, now, "dead.test", 2)
	r.ReportFailure("busy.test", Kind429)
	r.ReportSuccess("busy.test")
	r.ReportSuccess("ok.test")

	// Persist through JSON, the same wire format checkpoints use.
	raw, err := json.Marshal(r.Export())
	if err != nil {
		t.Fatal(err)
	}
	var snap []HostHealth
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	r2, _ := testRegistry(policy)
	r2.now = r.now // same frozen clock, so ages compare equal
	r2.ImportHealth(snap)

	// Compare the JSON forms: time.Time round-trips to UTC wall-clock,
	// so struct equality would trip on location metadata, not state.
	got, err := json.Marshal(r2.Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(raw) {
		t.Fatalf("imported registry diverged:\n got %s\nwant %s", got, raw)
	}
	if q := r2.Quarantined(); len(q) != 1 || q[0] != "dead.test" {
		t.Fatalf("quarantined after import = %v", q)
	}
	// The imported open breaker still refuses inside the cooldown…
	if err := r2.Allow("dead.test"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("imported breaker admitted during cooldown: %v", err)
	}
	// …and admits a half-open probe once the cooldown (anchored at the
	// persisted last failure) has passed.
	*now = now.Add(policy.Cooldown + time.Second)
	if err := r2.Allow("dead.test"); err != nil {
		t.Fatalf("imported breaker refused post-cooldown probe: %v", err)
	}
	if err := r2.Allow("ok.test"); err != nil {
		t.Fatalf("healthy import refused: %v", err)
	}
}

func TestQuarantineProbationDecay(t *testing.T) {
	policy := BreakerPolicy{FailureThreshold: 1, Cooldown: time.Minute, QuarantineAfter: 1, Probation: 10 * time.Minute}
	r, now := testRegistry(policy)
	r.ReportFailure("gone.test", KindDial)

	h := r.Health("gone.test")
	if !h.Quarantined || h.Probation {
		t.Fatalf("fresh failure: quarantined=%v probation=%v, want true/false", h.Quarantined, h.Probation)
	}
	if q := r.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined = %v", q)
	}

	// Past the probation age the host decays to probe-able.
	*now = now.Add(policy.Probation + time.Second)
	h = r.Health("gone.test")
	if h.Quarantined || !h.Probation {
		t.Fatalf("aged failure: quarantined=%v probation=%v, want false/true", h.Quarantined, h.Probation)
	}
	if q := r.Quarantined(); len(q) != 0 {
		t.Fatalf("aged host still listed quarantined: %v", q)
	}

	// A successful probe clears the quarantine history entirely; the
	// cumulative Opens counter survives for reporting.
	if err := r.Allow("gone.test"); err != nil {
		t.Fatalf("post-probation probe refused: %v", err)
	}
	r.ReportSuccess("gone.test")
	h = r.Health("gone.test")
	if h.Quarantined || h.Probation {
		t.Fatalf("recovered host still flagged: %+v", h)
	}
	if h.Opens != 1 || h.QuarantineOpens != 0 {
		t.Fatalf("opens=%d quarantineOpens=%d, want 1/0", h.Opens, h.QuarantineOpens)
	}

	// Relapse re-quarantines from a clean slate: one more open trips the
	// threshold again.
	r.ReportFailure("gone.test", KindDial)
	if h = r.Health("gone.test"); !h.Quarantined {
		t.Fatalf("relapsed host not re-quarantined: %+v", h)
	}
}
