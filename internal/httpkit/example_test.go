package httpkit_test

import (
	"fmt"
	"net/http"
	"time"

	"flock/internal/httpkit"
)

// ExampleNew builds a crawl-ready client: retries with jittered backoff,
// a shared rate limit, and per-host circuit breakers.
func ExampleNew() {
	health := httpkit.NewHealthRegistry(httpkit.DefaultBreaker)
	client := httpkit.New(
		httpkit.WithUserAgent("flock-crawler/1.0"),
		httpkit.WithRetry(httpkit.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}),
		httpkit.WithLimiter(httpkit.NewLimiter(10, 5)), // 10 req/s, burst 5
		httpkit.WithBreaker(health),
	)
	_ = client // client.Do / client.GetJSON as usual
	fmt.Println(client.Retry.MaxAttempts)
	// Output: 3
}

// ExampleWithHedge turns on tail-latency hedging: when an idempotent GET
// outlives the host's p95, one backup request races it and the first 2xx
// wins. The budget caps hedges at 5% of total requests.
func ExampleWithHedge() {
	client := httpkit.New(
		httpkit.WithHedge(httpkit.HedgePolicy{
			Percentile: 0.95,             // hedge when slower than the host's p95
			MinSamples: 8,                // need a latency history first
			BudgetFrac: 0.05,             // at most 5% of requests grow a backup
			MinDelay:   time.Millisecond, // never hedge instantly
		}),
	)
	req, _ := http.NewRequest("GET", "https://mastodon.example/api/v1/timelines/public", nil)
	_ = req // resp, err := client.Do(req) — hedging is transparent to callers
	stats := client.Stats()
	fmt.Println(stats.HedgesFired, stats.HedgeWins)
	// Output: 0 0
}
