package httpkit

import (
	"context"
	"time"

	"flock/internal/vclock"
)

// Option configures a Client built by New.
type Option func(*Client)

// New builds a Client from functional options. This is the supported
// construction path: the rawhttp analyzer flags Client composite
// literals outside this package, so every crawler, service and test
// assembles its client here where defaults stay in one place.
func New(opts ...Option) *Client {
	c := &Client{}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// WithDoer sets the underlying transport (defaults to
// http.DefaultClient when unset).
func WithDoer(d Doer) Option { return func(c *Client) { c.HTTP = d } }

// WithRetry sets the retry policy.
func WithRetry(p RetryPolicy) Option { return func(c *Client) { c.Retry = p } }

// WithLimiter sets the client-side token-bucket pacer.
func WithLimiter(l *Limiter) Option { return func(c *Client) { c.Limiter = l } }

// WithBreaker routes every request through the registry's per-host
// circuit breakers.
func WithBreaker(r *HealthRegistry) Option { return func(c *Client) { c.Health = r } }

// WithHedge enables tail-latency hedging with the given policy.
func WithHedge(p HedgePolicy) Option { return func(c *Client) { c.Hedge = p } }

// WithClock sets the time base for latency digests and Retry-After
// arithmetic (defaults to vclock.Wall).
func WithClock(now vclock.NowFunc) Option { return func(c *Client) { c.Clock = now } }

// WithUserAgent sets the User-Agent header stamped on every request.
func WithUserAgent(ua string) Option { return func(c *Client) { c.UserAgent = ua } }

// WithAuth sets the Authorization header value sent on every request.
func WithAuth(auth string) Option { return func(c *Client) { c.Auth = auth } }

// WithSleep overrides the wait function used for backoff and hedge
// timers (tests substitute an instant or virtual-time sleeper).
func WithSleep(sleep func(context.Context, time.Duration) error) Option {
	return func(c *Client) { c.Sleep = sleep }
}

// WithRand overrides the jitter source in [0,1) used by retry backoff.
func WithRand(rnd func() float64) Option { return func(c *Client) { c.Rand = rnd } }
