// Tail-latency hedging ("The Tail at Scale", Dean & Barroso, CACM 2013).
//
// The §3 crawl is dominated by tail latency: one throttled Mastodon
// instance answering at its rate limit stalls a whole fan-out phase
// while healthy hosts sit idle. Waiting out the full client timeout is
// the worst response — the standard cure is a hedged request: once an
// idempotent request has been in flight longer than a high percentile
// of the host's recent latency, fire one backup attempt and take
// whichever answer arrives first. The expected extra load is tiny (only
// the slowest few percent of requests hedge, and a global budget caps
// even that), but the tail collapses to roughly the percentile that
// triggers the hedge.
//
// The per-host latency distribution is tracked in a sliding-window
// digest fed by successful exchanges, read through the client's
// vclock.NowFunc so replayed virtual-time runs observe virtual
// latencies.
package httpkit

import (
	"context"
	"io"
	"net/http"
	"sort"
	"time"
)

// HedgePolicy tunes tail-latency hedging. The zero value disables
// hedging; enable it with a Percentile in (0, 1).
type HedgePolicy struct {
	// Percentile of the host's observed latency after which a backup
	// attempt fires (e.g. 0.95: hedge once the request is slower than
	// 95% of recent ones). <= 0 disables hedging entirely.
	Percentile float64
	// MinSamples is how many latency observations a host needs before
	// hedging activates for it (default 8). Cold hosts never hedge.
	MinSamples int
	// BudgetFrac caps hedges at this fraction of all attempted requests
	// (default 0.05). The budget is global across hosts: a pathological
	// latency distribution cannot double the crawl's request volume.
	BudgetFrac float64
	// MinDelay floors the hedge trigger so a uniformly fast host cannot
	// spend the budget on no-win micro-hedges (default 1ms).
	MinDelay time.Duration
	// Window is the per-host sliding-window size of the latency digest
	// (default 128 samples).
	Window int
}

// enabled reports whether the policy turns hedging on.
func (p HedgePolicy) enabled() bool { return p.Percentile > 0 }

// DefaultHedge is a crawl-appropriate hedging policy: back up requests
// beyond the host's p95, spending at most 5% extra requests.
var DefaultHedge = HedgePolicy{Percentile: 0.95, MinSamples: 8, BudgetFrac: 0.05, MinDelay: time.Millisecond, Window: 128}

func (p HedgePolicy) withDefaults() HedgePolicy {
	if p.MinSamples <= 0 {
		p.MinSamples = DefaultHedge.MinSamples
	}
	if p.BudgetFrac <= 0 {
		p.BudgetFrac = DefaultHedge.BudgetFrac
	}
	if p.MinDelay <= 0 {
		p.MinDelay = DefaultHedge.MinDelay
	}
	if p.Window <= 0 {
		p.Window = DefaultHedge.Window
	}
	return p
}

// latencyDigest is a fixed-size sliding window of latency samples for
// one host. Quantiles are computed on demand by sorting a copy — the
// window is small (default 128), so this is cheaper than maintaining a
// proper streaming sketch and exactly reproducible.
type latencyDigest struct {
	window  []time.Duration
	next    int // ring cursor
	samples int // total observed (may exceed len(window))
}

func newLatencyDigest(size int) *latencyDigest {
	return &latencyDigest{window: make([]time.Duration, 0, size)}
}

func (d *latencyDigest) observe(v time.Duration) {
	if len(d.window) < cap(d.window) {
		d.window = append(d.window, v)
	} else {
		d.window[d.next] = v
		d.next = (d.next + 1) % len(d.window)
	}
	d.samples++
}

// quantile returns the q-quantile (nearest rank) of the window.
// ok is false while the window is empty.
func (d *latencyDigest) quantile(q float64) (time.Duration, bool) {
	n := len(d.window)
	if n == 0 {
		return 0, false
	}
	cp := make([]time.Duration, n)
	copy(cp, d.window)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return cp[idx], true
}

// observeLatency records a successful exchange's duration for host.
func (c *Client) observeLatency(host string, v time.Duration) {
	if !c.Hedge.enabled() {
		return
	}
	pol := c.Hedge.withDefaults()
	c.mu.Lock()
	if c.digests == nil {
		c.digests = make(map[string]*latencyDigest)
	}
	d := c.digests[host]
	if d == nil {
		d = newLatencyDigest(pol.Window)
		c.digests[host] = d
	}
	d.observe(v)
	c.mu.Unlock()
}

// LatencyQuantile exposes the hedging digest for observability and
// tests: the q-quantile of host's recent successful-exchange latency.
// ok is false when hedging is off or the host has no samples yet.
func (c *Client) LatencyQuantile(host string, q float64) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.digests[host]
	if d == nil {
		return 0, false
	}
	return d.quantile(q)
}

// hedgeDelay computes the trigger delay for a request to host, or
// ok=false when the host is still cold (fewer than MinSamples
// observations).
func (c *Client) hedgeDelay(host string) (time.Duration, bool) {
	pol := c.Hedge.withDefaults()
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.digests[host]
	if d == nil || d.samples < pol.MinSamples {
		return 0, false
	}
	delay, ok := d.quantile(pol.Percentile)
	if !ok {
		return 0, false
	}
	if delay < pol.MinDelay {
		delay = pol.MinDelay
	}
	return delay, true
}

// hedgeable reports whether a request may be hedged at all: hedging
// must be on, and the request must be an idempotent, bodyless read.
// POSTs are never hedged — a duplicate write is not a latency
// optimization, it is a correctness bug.
func (c *Client) hedgeable(r *http.Request) bool {
	if !c.Hedge.enabled() {
		return false
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return false
	}
	return r.Body == nil || r.Body == http.NoBody
}

// allowHedge consumes one unit of the global hedge budget, refusing
// when the budget is exhausted or the host's breaker is not closed (an
// open or half-open breaker is already rationing requests; a hedge
// would either be refused anyway or steal the half-open probe slot).
func (c *Client) allowHedge(host string) bool {
	if c.Health != nil && c.Health.State(host) != BreakerClosed {
		c.mu.Lock()
		c.hedgesDenied++
		c.mu.Unlock()
		return false
	}
	pol := c.Hedge.withDefaults()
	c.mu.Lock()
	defer c.mu.Unlock()
	if float64(c.hedges+1) > pol.BudgetFrac*float64(c.requests) {
		c.hedgesDenied++
		return false
	}
	c.hedges++
	return true
}

// cancelBody releases a hedged sub-request's context when its winning
// (or fallback) response body is closed, so neither context nor
// connection outlives the read.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// raceResult is one sub-attempt's outcome inside a hedged exchange.
type raceResult struct {
	resp  *http.Response
	err   error
	hedge bool
}

// discard releases a non-winning result: closing the body cancels the
// sub-request context via cancelBody.
func (r raceResult) discard() {
	if r.resp != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(r.resp.Body, 4096))
		r.resp.Body.Close()
	}
}

// race performs one hedged exchange: the primary attempt starts
// immediately; if it is still in flight after delay, one backup fires
// (budget and breaker permitting) and the first 2xx wins. The loser is
// cancelled. When neither attempt produces a 2xx, the primary's result
// is returned so the caller's retry/backoff logic sees a deterministic
// outcome.
func (c *Client) race(req *http.Request, host string, delay time.Duration) (*http.Response, error) {
	parent := req.Context()
	results := make(chan raceResult, 2)
	var cancels [2]context.CancelFunc
	launch := func(idx int, hedge bool) {
		ctx, cancel := context.WithCancel(parent)
		cancels[idx] = cancel
		r := req.Clone(ctx)
		go func() {
			resp, err := c.attempt(r, host)
			if resp != nil {
				// The context must survive until the body is consumed.
				resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
			} else {
				cancel()
			}
			results <- raceResult{resp: resp, err: err, hedge: hedge}
		}()
	}
	launch(0, false)
	inflight := 1

	// The hedge trigger runs through c.wait so tests with an injected
	// Sleep control it; cancelling timerCtx reaps the goroutine once a
	// result settles the race.
	timerCtx, timerCancel := context.WithCancel(parent)
	defer timerCancel()
	timer := make(chan struct{})
	go func() {
		if c.wait(timerCtx, delay) == nil {
			close(timer)
		}
	}()

	var primary, hedged *raceResult
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil && res.resp.StatusCode >= 200 && res.resp.StatusCode < 300 {
				// First success wins; cancel and drain the loser.
				if res.hedge {
					c.mu.Lock()
					c.hedgeWins++
					c.mu.Unlock()
					cancels[0]()
				} else if cancels[1] != nil {
					cancels[1]()
				}
				if primary != nil {
					primary.discard()
				}
				if inflight > 0 {
					go func() { (<-results).discard() }()
				}
				return res.resp, nil
			}
			if res.hedge {
				hedged = &res
			} else {
				primary = &res
			}
			if inflight == 0 {
				// No winner: surface the primary outcome, drop the rest.
				if hedged != nil {
					hedged.discard()
				}
				return primary.resp, primary.err
			}
		case <-timer:
			timer = nil // fire at most once
			if c.allowHedge(host) {
				launch(1, true)
				inflight++
			}
		}
	}
}
