// Chaos soak and checkpoint/resume tests for the full §3 pipeline.
//
// This file is an external test package on purpose: it drives the
// crawler through store.FileCheckpoint, and store imports crawler, so an
// in-package test would be an import cycle.
package crawler_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"flock/internal/birdsite"
	"flock/internal/crawler"
	"flock/internal/fediverse"
	"flock/internal/httpkit"
	"flock/internal/indexsvc"
	"flock/internal/memnet"
	"flock/internal/randx"
	"flock/internal/store"
	"flock/internal/toxsvc"
	"flock/internal/world"
)

// soakEnv is the simulated internet for chaos tests, assembled the same
// way as the in-package test env.
type soakEnv struct {
	w    *world.World
	fab  *memnet.Fabric
	http *http.Client
}

func newSoakEnv(t testing.TB, nMigrants int, seed uint64) *soakEnv {
	t.Helper()
	cfg := world.DefaultConfig(nMigrants)
	cfg.Seed = seed
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := memnet.NewFabric()
	t.Cleanup(func() { fab.Close() })
	if _, err := fab.Serve(context.Background(), birdsite.Host, birdsite.New(w).Handler()); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Serve(context.Background(), indexsvc.Host, indexsvc.New(w).Handler()); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Serve(context.Background(), toxsvc.Host, toxsvc.New(0).Handler()); err != nil {
		t.Fatal(err)
	}
	if _, err := fediverse.New(w).RegisterAll(context.Background(), fab); err != nil {
		t.Fatal(err)
	}
	return &soakEnv{w: w, fab: fab, http: fab.Client()}
}

func (e *soakEnv) config() crawler.Config {
	return crawler.Config{
		TwitterBase:     "https://" + birdsite.Host,
		IndexBase:       "https://" + indexsvc.Host,
		PerspectiveBase: "https://" + toxsvc.Host,
		Transport:       crawler.Transport{HTTP: e.http, Concurrency: 12},
	}
}

// buildStorm builds a seeded fault storm over the fediverse instance
// hosts only (the core services stay clean; the paper's §3.2 failures
// were instance deaths, not Twitter outages). Dead hosts are chosen
// smallest-first so the destroyed coverage stays within the §3.2 budget
// (11.58% of timeline crawls); every other instance except the flagship
// gets flapping, lossy dials, throttling or latency jitter.
func buildStorm(w *world.World, seed uint64) *memnet.Storm {
	rng := randx.New(seed)
	// Final-instance migrant load per domain, smallest first.
	type load struct {
		domain string
		n      int
	}
	loads := make([]load, 0, len(w.Instances))
	total := 0
	for i, inst := range w.Instances {
		loads = append(loads, load{inst.Domain, w.MigrantsPerInstance[i]})
		total += w.MigrantsPerInstance[i]
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].n != loads[j].n {
			return loads[i].n < loads[j].n
		}
		return loads[i].domain < loads[j].domain
	})

	storm := &memnet.Storm{Specs: map[string]*memnet.ChaosSpec{}}
	dead := map[string]bool{}
	// Kill populated instances until ~5% of migrants live on dead hosts:
	// well under the 11.58% §3.2 bound, leaving margin for the lossy and
	// flapping cohorts' residual failures.
	budget := total * 5 / 100
	killed := 0
	for _, l := range loads {
		if l.n == 0 || l.domain == "mastodon.social" {
			continue
		}
		if killed+l.n > budget {
			break
		}
		storm.Dead = append(storm.Dead, l.domain)
		dead[l.domain] = true
		killed += l.n
	}
	i := 0
	for _, l := range loads {
		if dead[l.domain] {
			continue
		}
		if l.domain == "mastodon.social" {
			// The flagship hosts most accounts: light jitter only.
			storm.Specs[l.domain] = &memnet.ChaosSpec{Seed: rng.Uint64(), Jitter: 2 * time.Millisecond}
			continue
		}
		switch i % 4 {
		case 0: // scripted down/up windows
			storm.Specs[l.domain] = &memnet.ChaosSpec{
				Seed: rng.Uint64(), FlapUpDials: 12, FlapDownDials: 2,
			}
		case 1: // lossy dials
			storm.Specs[l.domain] = &memnet.ChaosSpec{Seed: rng.Uint64(), PDialFail: 0.15}
		case 2: // slow-loris throttling
			storm.Specs[l.domain] = &memnet.ChaosSpec{
				Seed: rng.Uint64(), BytesPerSec: 128 << 10, Latency: time.Millisecond,
			}
		default: // latency jitter
			storm.Specs[l.domain] = &memnet.ChaosSpec{
				Seed: rng.Uint64(), Latency: time.Millisecond, Jitter: 3 * time.Millisecond,
			}
		}
		i++
	}
	return storm
}

// TestChaosSoak runs the full pipeline over memnet under a seeded fault
// storm: dead hosts, flapping hosts, lossy dials, throttled and jittered
// links. The crawl must complete (no hang), keep Mastodon timeline
// coverage at or above the paper's 88.42%, open breakers for the dead
// hosts, and account for every gap in the CrawlReport.
func TestChaosSoak(t *testing.T) {
	e := newSoakEnv(t, 220, 99)
	storm := buildStorm(e.w, 4242)
	if len(storm.Dead) == 0 {
		t.Fatal("storm has no dead hosts; world too small for the soak")
	}
	storm.Apply(e.fab)

	cfg := e.config()
	cfg.Checkpoint = store.NewFileCheckpoint(filepath.Join(t.TempDir(), "soak.ckpt.gz"))
	cfg.CheckpointEvery = 64
	// Short cooldown so lossy hosts recover within the test run; dead
	// hosts stay effectively open because every probe fails again.
	cfg.Breaker = httpkit.BreakerPolicy{FailureThreshold: 5, Cooldown: 200 * time.Millisecond, QuarantineAfter: 3}
	c := crawler.New(cfg)

	// The hang guard: a wedged pipeline fails here rather than at the
	// package test timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	ds, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("soak run failed (ctx err %v): %v", ctx.Err(), err)
	}

	cov := ds.Coverage()
	if cov.Pairs < len(e.w.Migrants)/2 {
		t.Fatalf("storm destroyed mapping: %d pairs of %d migrants", cov.Pairs, len(e.w.Migrants))
	}
	reachable := float64(cov.Pairs-cov.MastodonDown) / float64(cov.Pairs)
	if reachable < 0.8842 {
		t.Fatalf("mastodon coverage %.4f < 0.8842 (%d of %d down)", reachable, cov.MastodonDown, cov.Pairs)
	}

	// Every dead host that actually hosted mapped accounts must have
	// tripped its breaker.
	pairsOn := map[string]int{}
	for i := range ds.Pairs {
		pairsOn[ds.Pairs[i].Handle.Domain]++
	}
	health := c.Health()
	for _, host := range storm.Dead {
		if pairsOn[host] < 2 {
			continue // too few requests to guarantee a trip
		}
		h := health.Health(host)
		if h.Opens == 0 {
			t.Errorf("dead host %s (%d pairs) never opened its breaker: %+v", host, pairsOn[host], h)
		}
		if h.Counts[httpkit.KindDial] == 0 {
			t.Errorf("dead host %s recorded no dial failures: %+v", host, h.Counts)
		}
	}

	rep := c.Report()
	if len(rep.Hosts) == 0 {
		t.Fatal("report has no host health snapshot")
	}
	if len(rep.MastodonTimelineFailures) == 0 {
		t.Error("dead instances produced no recorded mastodon timeline gaps")
	}
	// Planner/report consistency: every host reported skipped must be
	// quarantined in the health snapshot.
	quarantined := map[string]bool{}
	for _, h := range rep.Hosts {
		quarantined[h.Host] = h.Quarantined
	}
	for host := range rep.SkippedQuarantined {
		if !quarantined[host] {
			t.Errorf("host %s reported skipped but not quarantined in snapshot", host)
		}
	}
	if cov.MastodonDown > 0 && rep.GapCount() == 0 {
		t.Errorf("coverage lost %d timelines but report shows no gaps", cov.MastodonDown)
	}
	// The fabric saw real chaos, not a no-op storm.
	injected := 0
	for host := range storm.Specs {
		st := e.fab.ChaosStats(host)
		injected += st.FailedDials + st.FlapRejected + st.Resets
	}
	if injected == 0 {
		t.Error("no chaos events recorded on any spec'd host")
	}
	t.Logf("%s", rep.Summary())
	t.Logf("coverage %.4f, %d dead hosts, %d chaos events", reachable, len(storm.Dead), injected)
}

// TestCheckpointResumeConvergesToSameDataset kills the crawl twice at
// phase boundaries (via the Logf hook) and resumes from the on-disk
// checkpoint each time. The final dataset must be byte-identical to an
// uninterrupted run over an identical world.
func TestCheckpointResumeConvergesToSameDataset(t *testing.T) {
	const nMigrants, seed = 150, 77

	// Reference: uninterrupted run.
	ref := newSoakEnv(t, nMigrants, seed)
	refDS, err := crawler.New(ref.config()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(refDS)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: same world seed, fresh services, file checkpoint.
	e := newSoakEnv(t, nMigrants, seed)
	ckpt := store.NewFileCheckpoint(filepath.Join(t.TempDir(), "crawl.ckpt.gz"))
	runUntil := func(killAfter string) (*crawler.Dataset, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := e.config()
		cfg.Checkpoint = ckpt
		cfg.CheckpointEvery = 8
		if killAfter != "" {
			cfg.Logf = func(format string, _ ...any) {
				if strings.HasPrefix(format, killAfter) {
					cancel()
				}
			}
		}
		return crawler.New(cfg).Run(ctx)
	}

	// Kill 1: right after tweet collection, mid-mapping.
	if _, err := runUntil("collected"); !errors.Is(err, context.Canceled) {
		t.Fatalf("first kill: err = %v, want context.Canceled", err)
	}
	// Kill 2: right after the twitter timelines, mid-mastodon-timelines.
	if _, err := runUntil("twitter timelines"); !errors.Is(err, context.Canceled) {
		t.Fatalf("second kill: err = %v, want context.Canceled", err)
	}

	// Final resume runs to completion.
	cfg := e.config()
	cfg.Checkpoint = ckpt
	c := crawler.New(cfg)
	ds, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Report().Resumed {
		t.Fatal("final run did not resume from the checkpoint")
	}
	got, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed dataset diverged from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestCheckpointSkipsCompletedRun re-runs a finished crawl from its
// checkpoint: no phase re-executes, and the dataset is unchanged.
func TestCheckpointSkipsCompletedRun(t *testing.T) {
	e := newSoakEnv(t, 60, 5)
	ckpt := &crawler.MemCheckpoint{}
	cfg := e.config()
	cfg.Checkpoint = ckpt
	ds1, err := crawler.New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	saves := ckpt.Saves()
	if saves == 0 {
		t.Fatal("no checkpoint saves during run")
	}

	// Take the whole fediverse down: a re-run that touches the network
	// at all would change states, a checkpoint-complete run cannot.
	for _, host := range e.fab.Hosts() {
		if host != birdsite.Host && host != indexsvc.Host && host != toxsvc.Host {
			e.fab.SetDown(host, true)
		}
	}
	ds2, err := crawler.New(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(ds1)
	b2, _ := json.Marshal(ds2)
	if string(b1) != string(b2) {
		t.Fatal("completed checkpoint re-run changed the dataset")
	}
}

// tailStorm injects per-request tail latency on the flagship instance —
// throttled, jittered, and with a 35% chance any exchange stalls 60ms —
// plus light jitter everywhere else. Nothing dies: the storm models an
// overloaded-but-healthy host, the regime hedging is built for.
func tailStorm(w *world.World, seed uint64) *memnet.Storm {
	rng := randx.New(seed)
	storm := &memnet.Storm{Specs: map[string]*memnet.ChaosSpec{}}
	for _, inst := range w.Instances {
		if inst.Domain == "mastodon.social" {
			storm.Specs[inst.Domain] = &memnet.ChaosSpec{
				Seed:         rng.Uint64(),
				BytesPerSec:  512 << 10,
				Jitter:       2 * time.Millisecond,
				PSlowReq:     0.35,
				SlowReqDelay: 60 * time.Millisecond,
			}
			continue
		}
		storm.Specs[inst.Domain] = &memnet.ChaosSpec{Seed: rng.Uint64(), Jitter: time.Millisecond}
	}
	return storm
}

// TestChaosHedgedTailLatency drives the pipeline against a tail-heavy
// flagship with hedging and adaptive concurrency on, killing the run
// once mid-pipeline to prove checkpoints taken amid hedged traffic
// resume cleanly. Invariants: hedges fire but stay within budget, the
// slow-but-alive host never trips its breaker (no more opens than the
// unhedged baseline), and the dataset is byte-identical to an unhedged
// run — hedging is semantically transparent.
func TestChaosHedgedTailLatency(t *testing.T) {
	const nMigrants, worldSeed, stormSeed = 150, 77, 1717

	// Baseline: same world, same storm, no hedging, global concurrency only.
	base := newSoakEnv(t, nMigrants, worldSeed)
	tailStorm(base.w, stormSeed).Apply(base.fab)
	cBase := crawler.New(base.config())
	dsBase, err := cBase.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseOpens := 0
	for _, h := range cBase.Health().Snapshot() {
		baseOpens += h.Opens
	}

	// Hedged + adaptive run on a fresh but identically seeded world.
	e := newSoakEnv(t, nMigrants, worldSeed)
	tailStorm(e.w, stormSeed).Apply(e.fab)
	ckpt := store.NewFileCheckpoint(filepath.Join(t.TempDir(), "hedged.ckpt.gz"))
	hedge := httpkit.HedgePolicy{Percentile: 0.75, MinSamples: 8, BudgetFrac: 0.05, MinDelay: 5 * time.Millisecond}
	mkCfg := func() crawler.Config {
		cfg := e.config()
		cfg.Checkpoint = ckpt
		cfg.CheckpointEvery = 8
		cfg.Hedge = hedge
		cfg.Adaptive = crawler.AdaptivePolicy{Enabled: true}
		return cfg
	}

	// Kill mid-pipeline: checkpoints have been taken while hedges were in
	// flight against the flagship.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killCfg := mkCfg()
	killCfg.Logf = func(format string, _ ...any) {
		if strings.HasPrefix(format, "twitter timelines") {
			cancel()
		}
	}
	if _, err := crawler.New(killCfg).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("kill: err = %v, want context.Canceled", err)
	}

	// Resume to completion under a hang guard.
	rctx, rcancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer rcancel()
	c := crawler.New(mkCfg())
	ds, err := c.Run(rctx)
	if err != nil {
		t.Fatalf("hedged resume failed (ctx err %v): %v", rctx.Err(), err)
	}
	if !c.Report().Resumed {
		t.Fatal("final run did not resume from the checkpoint")
	}

	stats := c.HTTPStats()
	if stats.HedgesFired == 0 {
		t.Fatalf("tail-heavy flagship never triggered a hedge: %+v", stats)
	}
	if float64(stats.HedgesFired) > hedge.BudgetFrac*float64(stats.Requests) {
		t.Fatalf("hedges %d exceed %.0f%% budget of %d requests",
			stats.HedgesFired, hedge.BudgetFrac*100, stats.Requests)
	}

	// Slow is not dead: the tail host must not trip its breaker, and
	// hedging must not inflate breaker opens over the baseline.
	health := c.Health()
	if h := health.Health("mastodon.social"); h.Opens != 0 {
		t.Errorf("tail-latency host tripped its breaker %d times: %+v", h.Opens, h)
	}
	hedgedOpens := 0
	for _, h := range health.Snapshot() {
		hedgedOpens += h.Opens
	}
	if hedgedOpens > baseOpens {
		t.Errorf("hedged run opened %d breakers, baseline %d", hedgedOpens, baseOpens)
	}

	// The adaptive limiter tracked per-host windows and the report
	// carries both it and the hedge counters.
	rep := c.Report()
	if len(rep.HostLimits) == 0 {
		t.Error("adaptive limiter reported no per-host limits")
	}
	if rep.HTTPStats.HedgesFired != stats.HedgesFired {
		t.Errorf("report hedge counter %d != client %d", rep.HTTPStats.HedgesFired, stats.HedgesFired)
	}

	// Hedging is semantically transparent: identical dataset bytes.
	got, _ := json.Marshal(ds)
	want, _ := json.Marshal(dsBase)
	if string(got) != string(want) {
		t.Fatalf("hedged dataset diverged from baseline: %d vs %d bytes", len(got), len(want))
	}
	t.Logf("hedges fired %d / won %d / denied %d over %d requests; host limits %v",
		stats.HedgesFired, stats.HedgeWins, stats.HedgesDenied, stats.Requests, rep.HostLimits)
}

// copyFile duplicates a checkpoint file so resume legs can diverge.
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantinePlannerSkipsAcrossResume is the tentpole's end-to-end
// proof: a host quarantined before a kill must not be re-dialed by the
// resumed run. The target instance fails every dial (so the fabric's
// Dials counter records each attempt), the crawl is killed after the
// mapping phase has quarantined it, and three resume legs check the
// planner from different angles:
//
//  1. health resume on: zero new dials, host named in SkippedQuarantined,
//     its pairs resolved as instance-down;
//  2. -no-health-resume: the registry starts empty, so the crawl re-dials
//     and re-learns the dead host;
//  3. probation expired: the host decays to probe-able and is dialed
//     again (at the limiter floor) instead of being banned forever.
func TestQuarantinePlannerSkipsAcrossResume(t *testing.T) {
	e := newSoakEnv(t, 120, 31)

	// Target: the non-flagship instance hosting the most migrants, so
	// mapping generates plenty of lookups (and breaker opens) against it.
	target, best := "", -1
	for i, inst := range e.w.Instances {
		if inst.Domain == "mastodon.social" {
			continue
		}
		if n := e.w.MigrantsPerInstance[i]; n > best {
			target, best = inst.Domain, n
		}
	}
	if best < 2 {
		t.Fatalf("world too small: best non-flagship instance has %d migrants", best)
	}
	e.fab.SetChaos(target, &memnet.ChaosSpec{Seed: 7, PDialFail: 1.0})

	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.ckpt.gz")
	mkCfg := func(ckptPath string) crawler.Config {
		cfg := e.config()
		cfg.Checkpoint = store.NewFileCheckpoint(ckptPath)
		cfg.CheckpointEvery = 8
		cfg.Breaker = httpkit.BreakerPolicy{FailureThreshold: 2, Cooldown: time.Millisecond, QuarantineAfter: 2}
		return cfg
	}

	// Leg 0: run until mapping completes, then kill. Every lookup against
	// the target fails its dials, tripping the breaker past the
	// quarantine threshold before the checkpoint flush.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killCfg := mkCfg(path)
	killCfg.Logf = func(format string, _ ...any) {
		if strings.HasPrefix(format, "mapped") {
			cancel()
		}
	}
	cKill := crawler.New(killCfg)
	if _, err := cKill.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("kill leg: err = %v, want context.Canceled", err)
	}
	if h := cKill.Health().Health(target); !h.Quarantined {
		t.Fatalf("target %s not quarantined before kill: %+v", target, h)
	}
	dialsAtKill := e.fab.ChaosStats(target).Dials
	if dialsAtKill == 0 {
		t.Fatalf("target %s was never dialed during the kill leg", target)
	}
	noResumePath := filepath.Join(dir, "no-resume.ckpt.gz")
	probePath := filepath.Join(dir, "probe.ckpt.gz")
	copyFile(t, path, noResumePath)
	copyFile(t, path, probePath)

	// Leg 1: resume with health restore. The planner must partition the
	// target out of every remaining phase — not one more dial.
	c := crawler.New(mkCfg(path))
	ds, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("resume leg: %v", err)
	}
	rep := c.Report()
	if !rep.Resumed {
		t.Fatal("resume leg did not resume from the checkpoint")
	}
	if got := e.fab.ChaosStats(target).Dials; got != dialsAtKill {
		t.Fatalf("resumed run re-dialed quarantined host %s: %d dials, was %d at kill", target, got, dialsAtKill)
	}
	if rep.SkippedQuarantined[target] == "" {
		t.Fatalf("SkippedQuarantined missing %s: %v", target, rep.SkippedQuarantined)
	}
	// The skipped host's pairs stay accounted: instance-down timelines
	// plus per-unit gap entries, never silently dropped.
	onTarget := 0
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		if p.Handle.Domain != target {
			continue
		}
		onTarget++
		tl := ds.MastodonTimelines[p.TwitterID]
		if tl == nil || tl.State != crawler.StateInstanceDown {
			t.Errorf("pair %s on quarantined %s: timeline %+v, want instance-down", p.TwitterID, target, tl)
		}
	}
	if onTarget == 0 {
		t.Fatalf("no mapped pairs landed on target %s; test proves nothing", target)
	}

	// Leg 2: -no-health-resume discards the snapshot, so the crawl
	// re-learns the dead host the hard way — dials must grow.
	cfg2 := mkCfg(noResumePath)
	cfg2.NoHealthResume = true
	c2 := crawler.New(cfg2)
	if _, err := c2.Run(context.Background()); err != nil {
		t.Fatalf("no-health-resume leg: %v", err)
	}
	afterLeg1 := e.fab.ChaosStats(target).Dials
	if afterLeg1 <= dialsAtKill {
		t.Fatalf("no-health-resume leg never re-dialed %s (%d dials)", target, afterLeg1)
	}
	if c2.Report().SkippedQuarantined[target] != "" {
		// Quarantine can re-form mid-run (that is the point of the
		// planner), but it must come from fresh observations: the run
		// above re-dialed, so this is only informational.
		t.Logf("no-health-resume leg re-quarantined %s from fresh failures", target)
	}

	// Leg 3: probation expired. The imported quarantine has aged out, so
	// the planner probes the host instead of skipping it.
	cfg3 := mkCfg(probePath)
	cfg3.Breaker.Probation = time.Nanosecond
	c3 := crawler.New(cfg3)
	if _, err := c3.Run(context.Background()); err != nil {
		t.Fatalf("probation leg: %v", err)
	}
	if got := e.fab.ChaosStats(target).Dials; got <= afterLeg1 {
		t.Fatalf("probation-expired leg never probed %s (%d dials)", target, got)
	}
	if c3.Report().SkippedQuarantined[target] != "" {
		t.Fatalf("probation-expired leg skipped %s instead of probing", target)
	}
}

// TestCheckpointV1BackwardCompat proves a pre-health (schema v1)
// checkpoint file still loads and resumes cleanly: v1 files carry no
// version field and no health snapshot, and must not be rejected or
// misread by the v2 decoder.
func TestCheckpointV1BackwardCompat(t *testing.T) {
	e := newSoakEnv(t, 60, 9)
	path := filepath.Join(t.TempDir(), "v1.ckpt.gz")
	ckpt := store.NewFileCheckpoint(path)

	// Produce a mid-crawl checkpoint, then rewrite it as a v1 file:
	// omitempty drops both new fields, so the bytes are exactly what the
	// v1 encoder produced.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := e.config()
	cfg.Checkpoint = ckpt
	cfg.Logf = func(format string, _ ...any) {
		if strings.HasPrefix(format, "collected") {
			cancel()
		}
	}
	if _, err := crawler.New(cfg).Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("kill: err = %v, want context.Canceled", err)
	}
	prog, err := ckpt.Load()
	if err != nil {
		t.Fatal(err)
	}
	prog.Version = 0
	prog.Health = nil
	if err := ckpt.Save(prog); err != nil {
		t.Fatal(err)
	}

	// Resume from the v1 file to completion.
	cfg = e.config()
	cfg.Checkpoint = ckpt
	c := crawler.New(cfg)
	ds, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("v1 resume failed: %v", err)
	}
	if !c.Report().Resumed {
		t.Fatal("v1 resume did not report Resumed")
	}
	if cov := ds.Coverage(); cov.Pairs == 0 {
		t.Fatalf("v1 resume produced an empty dataset: %+v", cov)
	}
	// The resumed run re-saves under the current schema.
	saved, err := ckpt.Load()
	if err != nil {
		t.Fatal(err)
	}
	if saved.Version != crawler.ProgressVersion {
		t.Fatalf("resumed checkpoint version = %d, want %d", saved.Version, crawler.ProgressVersion)
	}
}
