package crawler

import (
	"context"
	"testing"
	"time"

	"flock/internal/httpkit"
)

// fakeClock is a hand-advanced vclock.NowFunc for cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(t *testing.T, pol AdaptivePolicy, clk *fakeClock) (*aimdLimiter, *httpkit.HealthRegistry) {
	t.Helper()
	health := httpkit.NewHealthRegistry(httpkit.BreakerPolicy{})
	lim := NewAdaptiveLimiter(pol, health, 8, clk.now)
	al, ok := lim.(*aimdLimiter)
	if !ok {
		t.Fatalf("enabled policy returned %T, want *aimdLimiter", lim)
	}
	return al, health
}

func TestAdaptiveDisabledIsNop(t *testing.T) {
	lim := NewAdaptiveLimiter(AdaptivePolicy{}, nil, 8, nil)
	if _, ok := lim.(nopLimiter); !ok {
		t.Fatalf("disabled policy returned %T, want nopLimiter", lim)
	}
	release, err := lim.Acquire(context.Background(), "any.host")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if lim.Limits() != nil {
		t.Fatal("nop limiter reported limits")
	}
}

func TestAdaptiveBackpressureAndRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	lim, health := newTestLimiter(t, AdaptivePolicy{Enabled: true, Cooldown: 50 * time.Millisecond}, clk)

	const host = "busy.example"
	if got := lim.Limits()[host]; got != 0 {
		t.Fatalf("untouched host already has a window: %d", got)
	}

	// A burst of 429s within one cooldown halves the window once, not
	// once per response.
	health.ReportFailure(host, httpkit.Kind429)
	health.ReportFailure(host, httpkit.Kind429)
	health.ReportFailure(host, httpkit.Kind429)
	if got := lim.Limits()[host]; got != 4 {
		t.Fatalf("window after one burst = %d, want 8/2 = 4", got)
	}
	// Past the cooldown the next load signal halves again; breaker-open
	// refusals count as backpressure too.
	clk.advance(60 * time.Millisecond)
	health.ReportFailure(host, httpkit.Kind5xx)
	if got := lim.Limits()[host]; got != 2 {
		t.Fatalf("window after second backoff = %d, want 2", got)
	}
	clk.advance(60 * time.Millisecond)
	health.ReportFailure(host, httpkit.Kind429)
	clk.advance(60 * time.Millisecond)
	health.ReportFailure(host, httpkit.Kind429)
	if got := lim.Limits()[host]; got != 1 {
		t.Fatalf("window must floor at MinPerHost: %d", got)
	}

	// Dial failures are the breaker's business, not load: no shrink —
	// and no growth either.
	clk.advance(60 * time.Millisecond)
	health.ReportFailure(host, httpkit.KindDial)
	if got := lim.Limits()[host]; got != 1 {
		t.Fatalf("dial failure moved the window to %d", got)
	}

	// Additive recovery: at limit 1 each success credits a full slot.
	health.ReportSuccess(host)
	if got := lim.Limits()[host]; got != 2 {
		t.Fatalf("window after recovery success = %d, want 2", got)
	}
	for i := 0; i < 100; i++ {
		health.ReportSuccess(host)
	}
	if got := lim.Limits()[host]; got != 8 {
		t.Fatalf("window must cap at MaxPerHost: %d", got)
	}
}

func TestAdaptiveAcquireBlocksAtWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	lim, health := newTestLimiter(t, AdaptivePolicy{Enabled: true, Initial: 2, MaxPerHost: 2}, clk)

	const host = "narrow.example"
	r1, err := lim.Acquire(context.Background(), host)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := lim.Acquire(context.Background(), host)
	if err != nil {
		t.Fatal(err)
	}
	// Third slot: blocked until a release.
	acquired := make(chan func(), 1)
	go func() {
		r, err := lim.Acquire(context.Background(), host)
		if err != nil {
			t.Error(err)
		}
		acquired <- r
	}()
	select {
	case <-acquired:
		t.Fatal("third acquire did not block at window 2")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	r1() // double release is safe and must not free a second slot
	select {
	case r := <-acquired:
		r()
	case <-time.After(time.Second):
		t.Fatal("release did not wake the blocked acquire")
	}
	r2()

	// Other hosts are unaffected by this host's window.
	r3, err := lim.Acquire(context.Background(), "other.example")
	if err != nil {
		t.Fatal(err)
	}
	r3()

	// A cancelled context aborts a blocked acquire.
	a, _ := lim.Acquire(context.Background(), host)
	b, _ := lim.Acquire(context.Background(), host)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := lim.Acquire(ctx, host); err == nil {
		t.Fatal("acquire beyond the window with expiring ctx returned no error")
	}
	a()
	b()
	_ = health
}
