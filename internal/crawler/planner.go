package crawler

import (
	"context"
	"errors"
	"sync"
)

// errQuarantineSkip marks a work unit the planner refused to schedule
// because its host is quarantined. It lands in the per-phase gap maps
// (so unit-level accounting stays complete) and rolls up into
// CrawlReport.SkippedQuarantined.
var errQuarantineSkip = errors.New("host quarantined, skipped by planner")

// planDecision is the planner's verdict for one host.
type planDecision int

const (
	// planFetch: healthy host, schedule normally.
	planFetch planDecision = iota
	// planProbe: past probation — admit requests one at a time (the
	// limiter floor) until the host proves itself again.
	planProbe
	// planSkip: quarantined — do not dial; record the unit as skipped.
	planSkip
)

// planner consults the crawl's health registry up front, before work
// units are scheduled, so known-dead hosts (including ones learned by a
// previous run and restored from the checkpoint) are partitioned out of
// each phase instead of burning dials, retries and breaker probes.
//
// Only fediverse instance hosts route through the planner. The core
// services (Twitter archive, instance index, Perspective) are the
// crawl's own backends: if they are down the crawl cannot proceed at
// all, so skipping them silently would convert an outage into a
// plausible-looking empty dataset.
type planner struct {
	c     *Crawler
	mu    sync.Mutex
	gates map[string]chan struct{}
}

func newPlanner(c *Crawler) *planner {
	return &planner{c: c, gates: map[string]chan struct{}{}}
}

// decide maps host health to a scheduling verdict.
func (p *planner) decide(host string) planDecision {
	h := p.c.health.Health(host)
	switch {
	case h.Quarantined:
		return planSkip
	case h.Probation:
		return planProbe
	default:
		return planFetch
	}
}

// gate returns host's single-slot probe gate, creating it on first use.
func (p *planner) gate(host string) chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.gates[host]
	if !ok {
		g = make(chan struct{}, 1)
		p.gates[host] = g
	}
	return g
}

// underPlan routes one exchange through the planner's verdict for host:
// planSkip returns errQuarantineSkip without dialing (and counts the
// skip), planProbe serializes the exchange through the host's
// single-slot gate, planFetch goes straight to the adaptive limiter.
func underPlan[T any](ctx context.Context, c *Crawler, host string, fetch func() (T, error)) (T, error) {
	var zero T
	switch c.plan.decide(host) {
	case planSkip:
		c.rep.noteSkip(host)
		return zero, errQuarantineSkip
	case planProbe:
		g := c.plan.gate(host)
		select {
		case g <- struct{}{}:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		defer func() { <-g }()
	}
	return underLimit(ctx, c, host, fetch)
}
