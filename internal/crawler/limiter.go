// Adaptive per-host concurrency for the crawl fan-out.
//
// A single global Concurrency bound treats mastodon.social and a
// struggling single-user instance identically: either the big host is
// under-used or the small one is flattened. The AIMD controller here
// gives every host its own window, stepped by the outcome stream the
// HealthRegistry already classifies — additive increase while a host
// answers 2xx, multiplicative decrease on 429/5xx/breaker-open — the
// same control law TCP uses to share a bottleneck fairly. Fan-out
// phases acquire a slot for the target host before each exchange; the
// global Group bound still caps total parallelism.
package crawler

import (
	"context"
	"math"
	"sync"
	"time"

	"flock/internal/httpkit"
	"flock/internal/vclock"
)

// Limiter bounds in-flight requests per target host. Acquire blocks
// until the host has a free slot (or ctx is done) and returns the
// release for that slot.
type Limiter interface {
	Acquire(ctx context.Context, host string) (release func(), err error)
	// Limits reports the current per-host concurrency windows, for
	// observability; nil when the limiter does not adapt.
	Limits() map[string]int
}

// AdaptivePolicy tunes the AIMD controller. The zero value disables
// adaptation (phases run under the global bound only).
type AdaptivePolicy struct {
	// Enabled turns per-host adaptation on.
	Enabled bool
	// MinPerHost floors the window so a backed-off host keeps probing
	// (default 1).
	MinPerHost int
	// MaxPerHost caps the window (default: the crawl's global
	// Concurrency bound).
	MaxPerHost int
	// Increase is the additive step credited per successful exchange,
	// spread over the current window (default 1 — i.e. one extra slot
	// per window's worth of successes, TCP-style).
	Increase float64
	// Decrease is the multiplicative factor applied on backpressure
	// (default 0.5).
	Decrease float64
	// Cooldown spaces multiplicative decreases so one burst of 429s
	// halves the window once, not once per response (default 50ms).
	Cooldown time.Duration
	// Initial is the starting window (default MaxPerHost: start
	// optimistic, let backpressure carve hosts down).
	Initial int
}

func (p AdaptivePolicy) withDefaults(globalBound int) AdaptivePolicy {
	if p.MinPerHost <= 0 {
		p.MinPerHost = 1
	}
	if p.MaxPerHost <= 0 {
		p.MaxPerHost = globalBound
	}
	if p.MaxPerHost < p.MinPerHost {
		p.MaxPerHost = p.MinPerHost
	}
	if p.Increase <= 0 {
		p.Increase = 1
	}
	if p.Decrease <= 0 || p.Decrease >= 1 {
		p.Decrease = 0.5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 50 * time.Millisecond
	}
	if p.Initial <= 0 {
		p.Initial = p.MaxPerHost
	}
	if p.Initial < p.MinPerHost {
		p.Initial = p.MinPerHost
	}
	return p
}

// nopLimiter is the non-adaptive limiter: every acquire succeeds
// immediately, leaving the global Group bound in charge.
type nopLimiter struct{}

func (nopLimiter) Acquire(ctx context.Context, host string) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return func() {}, nil
}

func (nopLimiter) Limits() map[string]int { return nil }

// hostWindow is one host's live AIMD state.
type hostWindow struct {
	limit       float64 // current window (fractional between steps)
	inflight    int
	lastBackoff time.Time
	wake        chan struct{} // closed+replaced on any slot/window change
}

// broadcast wakes every Acquire waiting on this host.
func (w *hostWindow) broadcast() {
	close(w.wake)
	w.wake = make(chan struct{})
}

// aimdLimiter implements Limiter with per-host AIMD windows stepped by
// the HealthRegistry outcome stream.
type aimdLimiter struct {
	pol AdaptivePolicy
	now vclock.NowFunc

	mu    sync.Mutex
	hosts map[string]*hostWindow
}

// NewAdaptiveLimiter builds an AIMD limiter and subscribes it to the
// registry's outcome stream. globalBound seeds the default MaxPerHost;
// now may be nil (vclock.Wall).
func NewAdaptiveLimiter(pol AdaptivePolicy, health *httpkit.HealthRegistry, globalBound int, now vclock.NowFunc) Limiter {
	if !pol.Enabled {
		return nopLimiter{}
	}
	if now == nil {
		now = vclock.Wall
	}
	l := &aimdLimiter{
		pol:   pol.withDefaults(globalBound),
		now:   now,
		hosts: make(map[string]*hostWindow),
	}
	health.Subscribe(l.observe)
	return l
}

func (l *aimdLimiter) window(host string) *hostWindow {
	w, ok := l.hosts[host]
	if !ok {
		w = &hostWindow{limit: float64(l.pol.Initial), wake: make(chan struct{})}
		l.hosts[host] = w
	}
	return w
}

// effective is the integer window a host currently grants.
func (l *aimdLimiter) effective(w *hostWindow) int {
	n := int(math.Floor(w.limit))
	if n < l.pol.MinPerHost {
		n = l.pol.MinPerHost
	}
	if n > l.pol.MaxPerHost {
		n = l.pol.MaxPerHost
	}
	return n
}

func (l *aimdLimiter) Acquire(ctx context.Context, host string) (func(), error) {
	l.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			l.mu.Unlock()
			return nil, err
		}
		w := l.window(host)
		if w.inflight < l.effective(w) {
			w.inflight++
			l.mu.Unlock()
			var once sync.Once
			return func() {
				once.Do(func() {
					l.mu.Lock()
					w.inflight--
					w.broadcast()
					l.mu.Unlock()
				})
			}, nil
		}
		wake := w.wake
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-wake:
		}
		l.mu.Lock()
	}
}

func (l *aimdLimiter) Limits() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.hosts))
	for host, w := range l.hosts {
		out[host] = l.effective(w)
	}
	return out
}

// backpressure reports whether an outcome kind should shrink a window.
// Only load signals count: 429 (host pacing us), 5xx (host buckling),
// breaker-open (we are rationing it ourselves). Dial/timeout/conn
// failures are the breaker's business — shrinking the window on them
// would double-penalize flaky-but-unloaded hosts.
func backpressure(kind httpkit.ErrorKind) bool {
	switch kind {
	case httpkit.Kind429, httpkit.Kind5xx, httpkit.KindBreakerOpen:
		return true
	}
	return false
}

// observe is the HealthListener: AIMD steps per recorded outcome.
func (l *aimdLimiter) observe(host string, kind httpkit.ErrorKind, success bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := l.window(host)
	switch {
	case success:
		if w.limit < float64(l.pol.MaxPerHost) {
			step := l.pol.Increase / math.Max(1, math.Floor(w.limit))
			w.limit = math.Min(float64(l.pol.MaxPerHost), w.limit+step)
			w.broadcast()
		}
	case backpressure(kind):
		now := l.now()
		if now.Sub(w.lastBackoff) >= l.pol.Cooldown {
			w.lastBackoff = now
			w.limit = math.Max(float64(l.pol.MinPerHost), w.limit*l.pol.Decrease)
		}
	}
}
