package crawler

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"flock/internal/httpkit"
)

// ProgressVersion is the checkpoint schema version Save stamps.
//
// v1 files predate the Version field (they decode as 0) and carry no
// health snapshot; they still load cleanly and resume with an empty
// registry. v2 adds the persisted per-host health registry. Decoders
// refuse versions newer than this constant rather than silently
// dropping fields they do not understand.
const ProgressVersion = 2

// The §3 pipeline's phases, in execution order. Progress.Phase holds the
// highest phase that has fully completed, so a resumed crawl re-enters
// the first incomplete phase and skips the units that already finished.
const (
	phaseNone      = iota
	phaseIndex     // §3.1 instance index
	phaseTweets    // §3.1 tweet collection
	phaseMapping   // §3.1 account mapping
	phaseTwitterTL // §3.2 Twitter timelines
	phaseMastoTL   // §3.2 Mastodon timelines
	phaseFollowees // §3.3 followee sample
	phaseActivity  // §3.1 weekly activity
	phaseToxicity  // §6.3 toxicity scoring
)

// SeenTweet is a phase-2 accumulation entry: a tweet as found by a query,
// with the winning query class so the dedup rule survives a resume.
type SeenTweet struct {
	Tweet TweetJSON  `json:"tweet"`
	Class QueryClass `json:"class"`
}

// Progress is the serializable crawl state a Checkpoint persists. It
// carries the partial dataset plus the per-phase completion sets that let
// a resumed Crawler.Run skip finished work. The zero value (via
// newProgress) is a fresh crawl.
type Progress struct {
	// Version is the checkpoint schema version this progress was saved
	// under (see ProgressVersion); zero for v1 files.
	Version int `json:"version,omitempty"`
	// Phase is the highest fully completed phase.
	Phase int `json:"phase"`
	// Health is the persisted per-host health registry snapshot (schema
	// v2): breaker positions, quarantine ages and the error taxonomy
	// survive the run, so a resumed crawl plans around known-dead hosts
	// instead of re-learning them dial by dial.
	Health []httpkit.HostHealth `json:"health,omitempty"`
	// Dataset accumulates crawl output across phases.
	Dataset *Dataset `json:"dataset"`
	// SeenTweets is the phase-2 dedup accumulator, keyed by tweet ID;
	// cleared when the phase completes.
	SeenTweets map[string]SeenTweet `json:"seen_tweets,omitempty"`
	// DoneQueries marks phase-2 search queries that completed.
	DoneQueries map[string]bool `json:"done_queries,omitempty"`
	// DoneAuthors marks phase-3 authors that were mapped or skipped.
	DoneAuthors map[string]bool `json:"done_authors,omitempty"`
	// DoneFollowees marks phase-5 sampled users whose followee crawl
	// finished (including terminal failures).
	DoneFollowees map[string]bool `json:"done_followees,omitempty"`
	// DoneActivity marks phase-6 instance domains that finished.
	DoneActivity map[string]bool `json:"done_activity,omitempty"`
}

func newProgress() *Progress {
	p := &Progress{Version: ProgressVersion, Dataset: NewDataset()}
	p.normalize()
	return p
}

// Clone deep-copies the progress through its JSON form — the same
// round trip FileCheckpoint performs — so every Checkpoint
// implementation hands out isolated snapshots with identical
// serialization semantics. A nil progress clones to nil.
func (p *Progress) Clone() (*Progress, error) {
	if p == nil {
		return nil, nil
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("crawler: clone progress: %w", err)
	}
	out := &Progress{}
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, fmt.Errorf("crawler: clone progress: %w", err)
	}
	return out, nil
}

// normalize re-initializes nil maps (JSON round-trips drop empties).
func (p *Progress) normalize() {
	if p.Dataset == nil {
		p.Dataset = NewDataset()
	}
	d := p.Dataset
	if d.TwitterTimelines == nil {
		d.TwitterTimelines = map[string]*TwitterTimeline{}
	}
	if d.MastodonTimelines == nil {
		d.MastodonTimelines = map[string]*MastodonTimeline{}
	}
	if d.TwitterFollowees == nil {
		d.TwitterFollowees = map[string][]FolloweeRef{}
	}
	if d.MastodonFollowing == nil {
		d.MastodonFollowing = map[string][]string{}
	}
	if d.Activity == nil {
		d.Activity = map[string][]WeekActivity{}
	}
	if p.SeenTweets == nil {
		p.SeenTweets = map[string]SeenTweet{}
	}
	if p.DoneQueries == nil {
		p.DoneQueries = map[string]bool{}
	}
	if p.DoneAuthors == nil {
		p.DoneAuthors = map[string]bool{}
	}
	if p.DoneFollowees == nil {
		p.DoneFollowees = map[string]bool{}
	}
	if p.DoneActivity == nil {
		p.DoneActivity = map[string]bool{}
	}
}

// Checkpoint persists crawl progress so a killed or cancelled Run can
// resume where it stopped. Load returns (nil, nil) when no checkpoint
// exists yet. Implementations must tolerate Save being called from the
// crawl's worker goroutines (calls are serialized by the crawler).
type Checkpoint interface {
	Load() (*Progress, error)
	Save(*Progress) error
}

// MemCheckpoint is an in-memory Checkpoint for tests and single-process
// pipelines. The zero value is ready to use. Save and Load both deep-copy
// the progress, matching FileCheckpoint's serialize semantics: the stored
// snapshot is frozen at Save time, not a live alias of the tracker's
// still-mutating *Progress.
type MemCheckpoint struct {
	mu    sync.Mutex
	data  *Progress
	saves int
}

// Load returns a copy of the last saved progress (nil when never saved).
func (m *MemCheckpoint) Load() (*Progress, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.data.Clone()
}

// Save stores a snapshot of the progress.
func (m *MemCheckpoint) Save(p *Progress) error {
	cp, err := p.Clone()
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = cp
	m.saves++
	return nil
}

// Saves reports how many times Save has been called.
func (m *MemCheckpoint) Saves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves
}

// tracker serializes all mutation of the in-flight Progress and drives
// periodic checkpoint saves: one Save per `every` completed units, plus
// an explicit flush at every phase boundary.
type tracker struct {
	mu      sync.Mutex
	ckpt    Checkpoint // nil: no persistence
	every   int
	pending int
	prog    *Progress
	health  *httpkit.HealthRegistry // nil: no health persistence
}

// snapshotHealth refreshes the progress's registry snapshot so every
// saved checkpoint carries the breaker/quarantine state current at save
// time. Caller holds t.mu.
func (t *tracker) snapshotHealth() {
	if t.health != nil {
		t.prog.Health = t.health.Export()
	}
}

// update applies fn to the progress under the tracker lock and counts one
// completed unit toward the periodic save.
func (t *tracker) update(fn func(*Progress)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn(t.prog)
	if t.ckpt == nil {
		return
	}
	t.pending++
	if t.pending >= t.every {
		// Best effort mid-phase; a failure here is retried by the next
		// periodic save and surfaced by the phase-boundary flush.
		t.snapshotHealth()
		if err := t.ckpt.Save(t.prog); err == nil {
			t.pending = 0
		}
	}
}

// flush forces a save (phase boundaries, cancellation paths).
func (t *tracker) flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ckpt == nil {
		return nil
	}
	t.snapshotHealth()
	if err := t.ckpt.Save(t.prog); err != nil {
		return fmt.Errorf("crawler: checkpoint save: %w", err)
	}
	t.pending = 0
	return nil
}

// CrawlReport is the post-run account of what the crawl could not get:
// per-host health and error taxonomy from the circuit-breaker registry,
// plus every unit of work that failed terminally, instead of the gaps
// being silently dropped (the paper reports its own failure taxonomy in
// §3.2 the same way).
type CrawlReport struct {
	// Resumed is true when the run continued from a checkpoint.
	Resumed bool
	// Hosts is the health registry snapshot: breaker state, quarantine
	// flag and error counts per host touched by the crawl.
	Hosts []httpkit.HostHealth
	// FailedQueries lists phase-2 search queries that failed terminally.
	FailedQueries map[string]string
	// DroppedAuthors lists phase-3 authors skipped on lookup failure.
	DroppedAuthors map[string]string
	// TwitterTimelineFailures / MastodonTimelineFailures list §3.2
	// timeline crawls that failed on transport (not taxonomy) errors.
	TwitterTimelineFailures  map[string]string
	MastodonTimelineFailures map[string]string
	// FolloweeGaps lists sampled users whose followee crawl failed.
	FolloweeGaps map[string]string
	// ActivityGaps lists instance domains dropped from the activity
	// crawl.
	ActivityGaps map[string]string
	// SkippedQuarantined lists hosts the planner refused to schedule
	// because the (possibly resumed) health registry had them
	// quarantined, mapped to a short account of what was skipped. Units
	// on these hosts also appear in the per-phase gap maps above; this
	// map is the host-level rollup.
	SkippedQuarantined map[string]string
	// HTTPStats is the shared client's counter snapshot: requests,
	// retries, hedges fired/won/denied, breaker short-circuits.
	HTTPStats httpkit.Stats
	// HostLimits is the adaptive limiter's final per-host concurrency
	// window (nil when adaptation is off).
	HostLimits map[string]int
}

// Quarantined returns the hosts the registry quarantined during the run.
func (r *CrawlReport) Quarantined() []string {
	var out []string
	for _, h := range r.Hosts {
		if h.Quarantined {
			out = append(out, h.Host)
		}
	}
	return out
}

// GapCount totals the terminally failed work units.
func (r *CrawlReport) GapCount() int {
	return len(r.FailedQueries) + len(r.DroppedAuthors) +
		len(r.TwitterTimelineFailures) + len(r.MastodonTimelineFailures) +
		len(r.FolloweeGaps) + len(r.ActivityGaps)
}

// Summary renders a compact human-readable report.
func (r *CrawlReport) Summary() string {
	open, quarantined := 0, 0
	for _, h := range r.Hosts {
		if h.State != httpkit.BreakerClosed {
			open++
		}
		if h.Quarantined {
			quarantined++
		}
	}
	return fmt.Sprintf(
		"crawl report: resumed=%v hosts=%d open=%d quarantined=%d skipped=%d gaps=%d (queries=%d authors=%d twitterTL=%d mastoTL=%d followees=%d activity=%d)",
		r.Resumed, len(r.Hosts), open, quarantined, len(r.SkippedQuarantined), r.GapCount(),
		len(r.FailedQueries), len(r.DroppedAuthors),
		len(r.TwitterTimelineFailures), len(r.MastodonTimelineFailures),
		len(r.FolloweeGaps), len(r.ActivityGaps))
}

// report accumulates gap records during a run; Crawler.Report snapshots
// it.
type reportState struct {
	mu                 sync.Mutex
	resumed            bool
	failedQueries      map[string]string
	droppedAuthors     map[string]string
	twitterTLFailures  map[string]string
	mastoTLFailures    map[string]string
	followeeGaps       map[string]string
	activityGaps       map[string]string
	skippedQuarantined map[string]int // host -> work units skipped
}

func newReportState() *reportState {
	return &reportState{
		failedQueries:      map[string]string{},
		droppedAuthors:     map[string]string{},
		twitterTLFailures:  map[string]string{},
		mastoTLFailures:    map[string]string{},
		followeeGaps:       map[string]string{},
		activityGaps:       map[string]string{},
		skippedQuarantined: map[string]int{},
	}
}

func (r *reportState) note(m map[string]string, key string, err error) {
	r.mu.Lock()
	m[key] = err.Error()
	r.mu.Unlock()
}

// noteSkip counts one planner-skipped work unit against host.
func (r *reportState) noteSkip(host string) {
	r.mu.Lock()
	r.skippedQuarantined[host]++
	r.mu.Unlock()
}

// Report snapshots the crawl's failure accounting and per-host health.
// Call it after Run returns; it is also valid after a cancelled run (the
// report then covers the work attempted so far).
func (c *Crawler) Report() *CrawlReport {
	c.rep.mu.Lock()
	defer c.rep.mu.Unlock()
	cp := func(m map[string]string) map[string]string {
		out := make(map[string]string, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	rep := &CrawlReport{
		Resumed:                  c.rep.resumed,
		Hosts:                    c.health.Snapshot(),
		FailedQueries:            cp(c.rep.failedQueries),
		DroppedAuthors:           cp(c.rep.droppedAuthors),
		TwitterTimelineFailures:  cp(c.rep.twitterTLFailures),
		MastodonTimelineFailures: cp(c.rep.mastoTLFailures),
		FolloweeGaps:             cp(c.rep.followeeGaps),
		ActivityGaps:             cp(c.rep.activityGaps),
		SkippedQuarantined:       map[string]string{},
		HTTPStats:                c.client.Stats(),
		HostLimits:               c.lim.Limits(),
	}
	for host, units := range c.rep.skippedQuarantined {
		opens := 0
		for _, h := range rep.Hosts {
			if h.Host == host {
				opens = h.Opens
				break
			}
		}
		rep.SkippedQuarantined[host] = fmt.Sprintf("quarantined after %d breaker opens; %d work units skipped", opens, units)
	}
	sort.Slice(rep.Hosts, func(i, j int) bool { return rep.Hosts[i].Host < rep.Hosts[j].Host })
	return rep
}

// begin loads (or starts) progress and builds the run's tracker.
func (c *Crawler) begin() (*tracker, error) {
	t := &tracker{ckpt: c.cfg.Checkpoint, every: c.cfg.CheckpointEvery, health: c.health}
	if t.every <= 0 {
		t.every = 32
	}
	if c.cfg.Checkpoint != nil {
		prog, err := c.cfg.Checkpoint.Load()
		if err != nil {
			return nil, fmt.Errorf("crawler: checkpoint load: %w", err)
		}
		if prog != nil {
			if prog.Version > ProgressVersion {
				return nil, fmt.Errorf("crawler: checkpoint schema v%d is newer than supported v%d", prog.Version, ProgressVersion)
			}
			prog.normalize()
			// Seed the registry with the persisted health snapshot so the
			// planner skips hosts quarantined before the kill. v1 files
			// carry no snapshot and resume with an empty registry.
			if !c.cfg.NoHealthResume && len(prog.Health) > 0 {
				c.health.ImportHealth(prog.Health)
			}
			prog.Version = ProgressVersion
			t.prog = prog
			c.rep.mu.Lock()
			c.rep.resumed = true
			c.rep.mu.Unlock()
			return t, nil
		}
	}
	t.prog = newProgress()
	return t, nil
}

// parseTweetTime is the shared RFC3339 parse for crawl phases.
func parseTweetTime(s string) (time.Time, bool) {
	at, err := time.Parse(time.RFC3339, s)
	return at, err == nil
}
