// Package crawler implements the paper's data-collection pipeline (§3):
// instance index fetch, tweet collection, hierarchical account mapping,
// timeline crawls on both platforms with the §3.2 failure taxonomy,
// stratified followee sampling (§3.3), weekly-activity crawls and
// toxicity scoring.
//
// The crawler speaks to the platforms exclusively over HTTP. Pointed at
// the simulated services it reproduces the paper's dataset; pointed at
// real endpoints (with real hosts and credentials) the same code would
// crawl the real platforms.
package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"flock/internal/httpkit"
)

// fallbackDoer backs clients constructed without an explicit Doer. It is
// a shared httpkit.Client with its own breaker registry rather than raw
// http.DefaultClient, so even ad-hoc usage gets retries, per-host circuit
// breaking and health-taxonomy accounting (the rawhttp analyzer in
// internal/lint forbids the raw fallback).
var fallbackDoer = sync.OnceValue(func() httpkit.Doer {
	return httpkit.New(httpkit.WithBreaker(httpkit.NewHealthRegistry(httpkit.BreakerPolicy{})))
})

// TwitterClient wraps the Twitter v2 endpoints the crawl uses.
type TwitterClient struct {
	Base string // e.g. "https://api.birdsite.test"
	C    *httpkit.Client
}

// TweetJSON mirrors the v2 tweet payload.
type TweetJSON struct {
	ID        string `json:"id"`
	Text      string `json:"text"`
	AuthorID  string `json:"author_id"`
	CreatedAt string `json:"created_at"`
	Source    string `json:"source"`
}

// UserJSON mirrors the v2 user payload.
type UserJSON struct {
	ID            string `json:"id"`
	Name          string `json:"name"`
	Username      string `json:"username"`
	Description   string `json:"description"`
	Location      string `json:"location"`
	URL           string `json:"url"`
	Verified      bool   `json:"verified"`
	Protected     bool   `json:"protected"`
	CreatedAt     string `json:"created_at"`
	PublicMetrics struct {
		Followers int `json:"followers_count"`
		Following int `json:"following_count"`
		Tweets    int `json:"tweet_count"`
	} `json:"public_metrics"`
}

type searchEnvelope struct {
	Data []TweetJSON `json:"data"`
	Meta struct {
		NextToken string `json:"next_token"`
	} `json:"meta"`
}

type usersEnvelope struct {
	Data []UserJSON `json:"data"`
	Meta struct {
		NextToken string `json:"next_token"`
	} `json:"meta"`
}

type userEnvelope struct {
	Data *UserJSON `json:"data"`
}

// SearchAll drains the full-archive search for query in [start, end),
// up to maxPages pages (0 = unlimited).
func (t *TwitterClient) SearchAll(ctx context.Context, query string, start, end time.Time, maxPages int) ([]TweetJSON, error) {
	return httpkit.Paginate(ctx, maxPages, func(ctx context.Context, token string) (httpkit.Page[TweetJSON], error) {
		q := url.Values{}
		q.Set("query", query)
		q.Set("start_time", start.UTC().Format(time.RFC3339))
		q.Set("end_time", end.UTC().Format(time.RFC3339))
		q.Set("max_results", "500")
		if token != "" {
			q.Set("next_token", token)
		}
		var env searchEnvelope
		if err := t.C.GetJSON(ctx, t.Base+"/2/tweets/search/all?"+q.Encode(), &env); err != nil {
			return httpkit.Page[TweetJSON]{}, err
		}
		return httpkit.Page[TweetJSON]{Items: env.Data, Next: env.Meta.NextToken}, nil
	})
}

// UserByID fetches one user.
func (t *TwitterClient) UserByID(ctx context.Context, id string) (*UserJSON, error) {
	var env userEnvelope
	if err := t.C.GetJSON(ctx, t.Base+"/2/users/"+url.PathEscape(id), &env); err != nil {
		return nil, err
	}
	if env.Data == nil {
		return nil, fmt.Errorf("crawler: user %s: empty payload", id)
	}
	return env.Data, nil
}

// Timeline drains a user's tweets in [start, end).
func (t *TwitterClient) Timeline(ctx context.Context, id string, start, end time.Time) ([]TweetJSON, error) {
	return httpkit.Paginate(ctx, 0, func(ctx context.Context, token string) (httpkit.Page[TweetJSON], error) {
		q := url.Values{}
		q.Set("start_time", start.UTC().Format(time.RFC3339))
		q.Set("end_time", end.UTC().Format(time.RFC3339))
		q.Set("max_results", "100")
		if token != "" {
			q.Set("pagination_token", token)
		}
		var env searchEnvelope
		if err := t.C.GetJSON(ctx, t.Base+"/2/users/"+url.PathEscape(id)+"/tweets?"+q.Encode(), &env); err != nil {
			return httpkit.Page[TweetJSON]{}, err
		}
		return httpkit.Page[TweetJSON]{Items: env.Data, Next: env.Meta.NextToken}, nil
	})
}

// Following drains a user's followees.
func (t *TwitterClient) Following(ctx context.Context, id string) ([]UserJSON, error) {
	return httpkit.Paginate(ctx, 0, func(ctx context.Context, token string) (httpkit.Page[UserJSON], error) {
		q := url.Values{}
		q.Set("max_results", "1000")
		if token != "" {
			q.Set("pagination_token", token)
		}
		var env usersEnvelope
		if err := t.C.GetJSON(ctx, t.Base+"/2/users/"+url.PathEscape(id)+"/following?"+q.Encode(), &env); err != nil {
			return httpkit.Page[UserJSON]{}, err
		}
		return httpkit.Page[UserJSON]{Items: env.Data, Next: env.Meta.NextToken}, nil
	})
}

// MastodonClient wraps the per-instance Mastodon endpoints.
type MastodonClient struct {
	C *httpkit.Client
}

// MastoAccountJSON mirrors the account entity.
type MastoAccountJSON struct {
	ID             string            `json:"id"`
	Username       string            `json:"username"`
	Acct           string            `json:"acct"`
	URL            string            `json:"url"`
	CreatedAt      string            `json:"created_at"`
	FollowersCount int               `json:"followers_count"`
	FollowingCount int               `json:"following_count"`
	StatusesCount  int               `json:"statuses_count"`
	Moved          *MastoAccountJSON `json:"moved"`
	AlsoKnownAs    []string          `json:"also_known_as"`
}

// MastoStatusJSON mirrors the status entity.
type MastoStatusJSON struct {
	ID        string           `json:"id"`
	CreatedAt string           `json:"created_at"`
	Content   string           `json:"content"`
	Account   MastoAccountJSON `json:"account"`
}

// ActivityJSON mirrors the weekly activity entity (string-typed counts).
type ActivityJSON struct {
	Week          string `json:"week"`
	Statuses      string `json:"statuses"`
	Logins        string `json:"logins"`
	Registrations string `json:"registrations"`
}

// Lookup resolves an account by username on a domain.
func (m *MastodonClient) Lookup(ctx context.Context, domain, username string) (*MastoAccountJSON, error) {
	var acc MastoAccountJSON
	u := "https://" + domain + "/api/v1/accounts/lookup?acct=" + url.QueryEscape(username)
	if err := m.C.GetJSON(ctx, u, &acc); err != nil {
		return nil, err
	}
	return &acc, nil
}

// Statuses drains an account's statuses via max_id pagination.
func (m *MastodonClient) Statuses(ctx context.Context, domain, accountID string) ([]MastoStatusJSON, error) {
	var out []MastoStatusJSON
	maxID := ""
	for {
		u := "https://" + domain + "/api/v1/accounts/" + url.PathEscape(accountID) + "/statuses?limit=40"
		if maxID != "" {
			u += "&max_id=" + maxID
		}
		var page []MastoStatusJSON
		if err := m.C.GetJSON(ctx, u, &page); err != nil {
			return out, err
		}
		if len(page) == 0 {
			return out, nil
		}
		out = append(out, page...)
		maxID = page[len(page)-1].ID
	}
}

// Following drains an account's followees via offset cursors.
func (m *MastodonClient) Following(ctx context.Context, domain, accountID string) ([]MastoAccountJSON, error) {
	var out []MastoAccountJSON
	offset := 0
	for {
		u := fmt.Sprintf("https://%s/api/v1/accounts/%s/following?limit=80&max_id=%d", domain, url.PathEscape(accountID), offset)
		var page []MastoAccountJSON
		if err := m.C.GetJSON(ctx, u, &page); err != nil {
			return out, err
		}
		if len(page) == 0 {
			return out, nil
		}
		out = append(out, page...)
		offset += 80
	}
}

// Activity fetches the weekly activity series.
func (m *MastodonClient) Activity(ctx context.Context, domain string) ([]ActivityJSON, error) {
	var out []ActivityJSON
	if err := m.C.GetJSON(ctx, "https://"+domain+"/api/v1/instance/activity", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// IndexClient wraps the instances.social-style index.
type IndexClient struct {
	Base string
	C    *httpkit.Client
}

// IndexedInstance is one index row.
type IndexedInstance struct {
	Name     string `json:"name"`
	Users    int    `json:"users"`
	Statuses int    `json:"statuses"`
	Up       bool   `json:"up"`
}

// List fetches the complete instance index.
func (i *IndexClient) List(ctx context.Context) ([]IndexedInstance, error) {
	var resp struct {
		Instances  []IndexedInstance `json:"instances"`
		Pagination struct {
			NextPage string `json:"next_page"`
		} `json:"pagination"`
	}
	if err := i.C.GetJSON(ctx, i.Base+"/api/1.0/instances/list?count=0", &resp); err != nil {
		return nil, err
	}
	return resp.Instances, nil
}

// PerspectiveClient scores text toxicity over HTTP.
type PerspectiveClient struct {
	Base string
	HTTP httpkit.Doer
}

// Score returns the TOXICITY summary score of text.
func (p *PerspectiveClient) Score(ctx context.Context, text string) (float64, error) {
	reqBody, err := json.Marshal(map[string]any{
		"comment":             map[string]string{"text": text},
		"requestedAttributes": map[string]any{"TOXICITY": map[string]any{}},
	})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.Base+"/v1alpha1/comments:analyze", bytes.NewReader(reqBody))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	doer := p.HTTP
	if doer == nil {
		doer = fallbackDoer()
	}
	resp, err := doer.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, &httpkit.StatusError{Code: resp.StatusCode, URL: p.Base}
	}
	var out struct {
		AttributeScores map[string]struct {
			SummaryScore struct {
				Value float64 `json:"value"`
			} `json:"summaryScore"`
		} `json:"attributeScores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.AttributeScores["TOXICITY"].SummaryScore.Value, nil
}

// parseUnix converts a unix-seconds string to a time.
func parseUnix(s string) (time.Time, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(v, 0).UTC(), nil
}
