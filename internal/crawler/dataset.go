package crawler

import (
	"time"

	"flock/internal/match"
)

// Dataset is everything the crawl collects — the input to every analysis
// in the paper. All cross-references use Twitter user ID strings; the
// store package anonymizes them on persistence.
type Dataset struct {
	// Instances is the §3.1 index snapshot.
	Instances []IndexedInstance

	// CollectedTweets is the §3.1 corpus: tweets matching instance links
	// or migration keywords, deduplicated, with the query class that
	// found them (Fig. 2).
	CollectedTweets []CollectedTweet

	// Pairs maps Twitter accounts to Mastodon accounts (§3.1).
	Pairs []AccountPair

	// TwitterTimelines / MastodonTimelines are the §3.2 crawls, keyed by
	// Twitter user ID.
	TwitterTimelines  map[string]*TwitterTimeline
	MastodonTimelines map[string]*MastodonTimeline

	// TwitterFollowees holds the §3.3 sample: user ID -> followees (the
	// followees' own metadata included, since the mapping join needs it).
	TwitterFollowees map[string][]FolloweeRef
	// MastodonFollowing: user ID -> follow handles on Mastodon.
	MastodonFollowing map[string][]string

	// Activity is the weekly activity crawl, keyed by instance domain.
	Activity map[string][]WeekActivity
}

// QueryClass labels which §3.1 query family found a tweet.
type QueryClass string

const (
	// ClassInstanceLink: the tweet contains a link to a known instance.
	ClassInstanceLink QueryClass = "instance_link"
	// ClassKeyword: the tweet matched a migration keyword or hashtag.
	ClassKeyword QueryClass = "keyword"
)

// CollectedTweet is one row of the collection corpus.
type CollectedTweet struct {
	ID       string
	AuthorID string
	Time     time.Time
	Text     string
	Source   string
	Class    QueryClass
}

// AccountPair is one mapped (Twitter, Mastodon) account pair with the
// lookup metadata both analyses join on.
type AccountPair struct {
	TwitterID        string
	TwitterUsername  string
	Verified         bool
	TwitterCreatedAt time.Time
	TwitterFollowers int
	TwitterFollowing int

	Handle      match.Handle
	MatchSource match.Source
	// SameUsername: Twitter and Mastodon usernames identical (§3.1: 72%).
	SameUsername bool

	// Fields from the Mastodon account lookup; Verified=false pairs keep
	// zero values.
	MastodonVerified  bool // lookup succeeded
	MastodonAccountID string
	MastodonCreatedAt time.Time
	MastodonFollowers int
	MastodonFollowing int
	MastodonStatuses  int

	// Moved is non-nil when the first account points at a second one
	// (§5.3 instance switching).
	Moved *MovedRecord
}

// FinalDomain is the domain of the account the user ended up on.
func (p *AccountPair) FinalDomain() string {
	if p.Moved != nil {
		return p.Moved.Handle.Domain
	}
	return p.Handle.Domain
}

// MovedRecord captures an account move.
type MovedRecord struct {
	Handle    match.Handle
	AccountID string
	// MovedAt is the creation time of the destination account, the
	// observable proxy for the switch date.
	MovedAt time.Time
}

// CrawlState is the §3.2 timeline-crawl outcome taxonomy.
type CrawlState string

const (
	// StateOK: timeline collected.
	StateOK CrawlState = "ok"
	// StateSuspended / StateDeleted / StateProtected: Twitter failures.
	StateSuspended CrawlState = "suspended"
	StateDeleted   CrawlState = "deleted"
	StateProtected CrawlState = "protected"
	// StateNoStatuses: Mastodon account exists but never posted.
	StateNoStatuses CrawlState = "no_statuses"
	// StateInstanceDown: the Mastodon instance was unreachable.
	StateInstanceDown CrawlState = "instance_down"
)

// Post is one crawled post (tweet or status).
type Post struct {
	ID   string
	Time time.Time
	Text string
	// Source is the posting client (tweets only).
	Source string
	// Domain is the hosting instance (statuses only).
	Domain string
	// Toxicity is the Perspective score; negative = not scored.
	Toxicity float64
}

// TwitterTimeline is one user's §3.2 Twitter crawl.
type TwitterTimeline struct {
	State CrawlState
	Posts []Post
}

// MastodonTimeline is one user's §3.2 Mastodon crawl. For switchers the
// posts span both instances.
type MastodonTimeline struct {
	State CrawlState
	Posts []Post
}

// FolloweeRef is one followee of a sampled user, with what the mapping
// join needs.
type FolloweeRef struct {
	TwitterID string
	Username  string
}

// WeekActivity is one parsed weekly activity bucket.
type WeekActivity struct {
	Week          time.Time
	Statuses      int
	Logins        int
	Registrations int
}

// NewDataset returns an empty dataset with maps initialized.
func NewDataset() *Dataset {
	return &Dataset{
		TwitterTimelines:  map[string]*TwitterTimeline{},
		MastodonTimelines: map[string]*MastodonTimeline{},
		TwitterFollowees:  map[string][]FolloweeRef{},
		MastodonFollowing: map[string][]string{},
		Activity:          map[string][]WeekActivity{},
	}
}

// PairByTwitterID builds the join index analyses use constantly.
func (d *Dataset) PairByTwitterID() map[string]*AccountPair {
	m := make(map[string]*AccountPair, len(d.Pairs))
	for i := range d.Pairs {
		m[d.Pairs[i].TwitterID] = &d.Pairs[i]
	}
	return m
}

// Stats summarizes crawl coverage (the §3.2 percentages).
type CoverageStats struct {
	Pairs             int
	TwitterOK         int
	TwitterSuspended  int
	TwitterDeleted    int
	TwitterProtected  int
	MastodonOK        int
	MastodonSilent    int
	MastodonDown      int
	FolloweesSampled  int
	FolloweeEdges     int
	InstancesIndexed  int
	InstancesReceived int // distinct final domains among pairs
}

// Coverage computes CoverageStats from the dataset.
func (d *Dataset) Coverage() CoverageStats {
	st := CoverageStats{Pairs: len(d.Pairs), InstancesIndexed: len(d.Instances)}
	for _, tl := range d.TwitterTimelines {
		switch tl.State {
		case StateOK:
			st.TwitterOK++
		case StateSuspended:
			st.TwitterSuspended++
		case StateDeleted:
			st.TwitterDeleted++
		case StateProtected:
			st.TwitterProtected++
		}
	}
	for _, tl := range d.MastodonTimelines {
		switch tl.State {
		case StateOK:
			st.MastodonOK++
		case StateNoStatuses:
			st.MastodonSilent++
		case StateInstanceDown:
			st.MastodonDown++
		}
	}
	st.FolloweesSampled = len(d.TwitterFollowees)
	for _, fs := range d.TwitterFollowees {
		st.FolloweeEdges += len(fs)
	}
	domains := map[string]bool{}
	for i := range d.Pairs {
		domains[d.Pairs[i].FinalDomain()] = true
	}
	st.InstancesReceived = len(domains)
	return st
}
