package crawler

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"

	"flock/internal/birdsite"
	"flock/internal/fediverse"
	"flock/internal/indexsvc"
	"flock/internal/memnet"
	"flock/internal/toxsvc"
	"flock/internal/vclock"
	"flock/internal/world"
)

// env is the fully assembled simulated internet for crawler tests.
type env struct {
	w    *world.World
	fab  *memnet.Fabric
	fedi *fediverse.Service
	http *http.Client
}

var shared *env
var sharedDS *Dataset

func newEnv(t testing.TB, nMigrants int, seed uint64) *env {
	cfg := world.DefaultConfig(nMigrants)
	cfg.Seed = seed
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fab := memnet.NewFabric()
	if _, err := fab.Serve(context.Background(), birdsite.Host, birdsite.New(w).Handler()); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Serve(context.Background(), indexsvc.Host, indexsvc.New(w).Handler()); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Serve(context.Background(), toxsvc.Host, toxsvc.New(0).Handler()); err != nil {
		t.Fatal(err)
	}
	fedi := fediverse.New(w)
	if _, err := fedi.RegisterAll(context.Background(), fab); err != nil {
		t.Fatal(err)
	}
	return &env{w: w, fab: fab, fedi: fedi, http: fab.Client()}
}

func (e *env) crawler() *Crawler {
	return New(Config{
		TwitterBase:     "https://" + birdsite.Host,
		IndexBase:       "https://" + indexsvc.Host,
		PerspectiveBase: "https://" + toxsvc.Host,
		Transport:       Transport{HTTP: e.http, Concurrency: 8},
		ScoreToxicity:   false,
	})
}

// sharedRun crawls once (discovery/mapping up; outages before timelines
// is exercised in the core pipeline test; here everything stays up so
// coverage is about the mapping itself).
func sharedRun(t testing.TB) (*env, *Dataset) {
	if shared != nil {
		return shared, sharedDS
	}
	e := newEnv(t, 250, 21)
	ds, err := e.crawler().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	shared, sharedDS = e, ds
	return e, ds
}

func TestRunProducesPairs(t *testing.T) {
	e, ds := sharedRun(t)
	if len(ds.Pairs) == 0 {
		t.Fatal("no pairs mapped")
	}
	// Recall over the ground-truth *mappable* set: accounts alive in
	// search, with an announcement inside the collection window, whose
	// handle is findable by the §3.1 hierarchy (in bio, or in tweet text
	// with an identical username). Users outside this set are invisible
	// to the methodology — the paper's own 136k is the same kind of
	// lower bound.
	mapped := map[string]bool{}
	for i := range ds.Pairs {
		mapped[strings.ToLower(ds.Pairs[i].TwitterUsername)] = true
	}
	mappable, recovered := 0, 0
	for _, idx := range e.w.Migrants {
		u := e.w.Users[idx]
		if u.Deleted || u.Suspended {
			continue
		}
		inWindow := !u.MigratedAt.Before(vclock.CollectionStart) && u.MigratedAt.Before(vclock.CollectionEnd.Add(24*3600*1e9))
		findable := u.HandleInBio || (u.AnnounceStyle != 2 && strings.EqualFold(u.Username, u.MastodonUsername))
		if !inWindow || !findable {
			continue
		}
		mappable++
		if mapped[strings.ToLower(u.Username)] {
			recovered++
		}
	}
	recall := float64(recovered) / float64(mappable)
	if recall < 0.95 {
		t.Fatalf("recall = %v (%d of %d mappable)", recall, recovered, mappable)
	}
	// And the total should be in the right ballpark of all migrants.
	if len(ds.Pairs) < len(e.w.Migrants)*6/10 {
		t.Fatalf("only %d pairs of %d migrants", len(ds.Pairs), len(e.w.Migrants))
	}
}

func TestMappingPrecision(t *testing.T) {
	// Every mapped pair must point at the user's true Mastodon account:
	// no false positives from mention-only tweets.
	e, ds := sharedRun(t)
	byUsername := map[string]*world.User{}
	for _, u := range e.w.Users {
		byUsername[strings.ToLower(u.Username)] = u
	}
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		u := byUsername[strings.ToLower(p.TwitterUsername)]
		if u == nil {
			t.Fatalf("pair for unknown twitter user %q", p.TwitterUsername)
		}
		if !u.Migrated {
			t.Fatalf("pair maps non-migrant %q", p.TwitterUsername)
		}
		if !strings.EqualFold(p.Handle.Username, u.MastodonUsername) {
			t.Fatalf("pair username %q, world says %q", p.Handle.Username, u.MastodonUsername)
		}
		wantDomain := e.w.Instances[u.FirstInstance].Domain
		if p.Handle.Domain != wantDomain {
			t.Fatalf("pair domain %q, world first instance %q", p.Handle.Domain, wantDomain)
		}
	}
}

func TestSameUsernameShare(t *testing.T) {
	_, ds := sharedRun(t)
	same := 0
	for i := range ds.Pairs {
		if ds.Pairs[i].SameUsername {
			same++
		}
	}
	frac := float64(same) / float64(len(ds.Pairs))
	if math.Abs(frac-0.72) > 0.08 {
		t.Fatalf("same-username share = %v, want about 0.72", frac)
	}
}

func TestMatchSourceMix(t *testing.T) {
	_, ds := sharedRun(t)
	bySource := map[string]int{}
	for i := range ds.Pairs {
		bySource[ds.Pairs[i].MatchSource.String()]++
	}
	if bySource["metadata"] == 0 || bySource["tweet"] == 0 {
		t.Fatalf("match sources unbalanced: %v", bySource)
	}
}

func TestCollectedTweetClasses(t *testing.T) {
	_, ds := sharedRun(t)
	classes := map[QueryClass]int{}
	for _, ct := range ds.CollectedTweets {
		classes[ct.Class]++
	}
	if classes[ClassInstanceLink] == 0 || classes[ClassKeyword] == 0 {
		t.Fatalf("collection classes: %v", classes)
	}
	// All within the collection window.
	for _, ct := range ds.CollectedTweets {
		if ct.Time.Before(vclock.CollectionStart) || ct.Time.After(vclock.CollectionEnd.Add(24*3600*1e9)) {
			t.Fatalf("collected tweet outside window: %s", ct.Time)
		}
	}
}

func TestCollectedTweetsDeduped(t *testing.T) {
	_, ds := sharedRun(t)
	seen := map[string]bool{}
	for _, ct := range ds.CollectedTweets {
		if seen[ct.ID] {
			t.Fatalf("tweet %s duplicated", ct.ID)
		}
		seen[ct.ID] = true
	}
}

func TestTimelineCoverage(t *testing.T) {
	e, ds := sharedRun(t)
	cov := ds.Coverage()
	if cov.TwitterOK == 0 {
		t.Fatal("no twitter timelines")
	}
	okFrac := float64(cov.TwitterOK) / float64(cov.Pairs)
	// Paper: 94.88%. Our deleted/suspended users never even get mapped
	// (they vanish from search), so coverage among mapped pairs is
	// higher; protected ones are mapped but fail.
	if okFrac < 0.90 {
		t.Fatalf("twitter timeline coverage %v", okFrac)
	}
	if cov.TwitterProtected == 0 {
		t.Log("no protected accounts in sample (possible on small worlds)")
	}
	// Timeline posts must match world ground truth for an OK user.
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		tl := ds.TwitterTimelines[p.TwitterID]
		if tl == nil || tl.State != StateOK {
			continue
		}
		u := findUser(e.w, p.TwitterUsername)
		if len(tl.Posts) != len(e.w.TweetsByUser[u.ID]) {
			t.Fatalf("user %s: crawled %d tweets, world has %d", p.TwitterUsername, len(tl.Posts), len(e.w.TweetsByUser[u.ID]))
		}
		break
	}
}

func TestMastodonTimelineStates(t *testing.T) {
	e, ds := sharedRun(t)
	cov := ds.Coverage()
	if cov.MastodonOK == 0 {
		t.Fatal("no mastodon timelines")
	}
	// Everything is up in this test env, so down must be 0 and silent
	// close to the world's silent share.
	if cov.MastodonDown != 0 {
		t.Fatalf("instance down count %d with all instances up", cov.MastodonDown)
	}
	silentWorld := 0
	for _, u := range e.w.Migrants {
		if e.w.Users[u].Silent {
			silentWorld++
		}
	}
	if cov.MastodonSilent == 0 && silentWorld > 0 {
		t.Fatal("silent accounts not classified")
	}
}

func TestMovedPairsMatchWorldSwitchers(t *testing.T) {
	e, ds := sharedRun(t)
	worldSwitchers := map[string]bool{}
	for _, u := range e.w.Migrants {
		if e.w.Users[u].SecondInstance >= 0 {
			worldSwitchers[strings.ToLower(e.w.Users[u].Username)] = true
		}
	}
	crawled := 0
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		if p.Moved == nil {
			continue
		}
		crawled++
		if !worldSwitchers[strings.ToLower(p.TwitterUsername)] {
			t.Fatalf("pair %q marked moved but world says no switch", p.TwitterUsername)
		}
		u := findUser(e.w, p.TwitterUsername)
		wantDomain := e.w.Instances[u.SecondInstance].Domain
		if p.Moved.Handle.Domain != wantDomain {
			t.Fatalf("moved domain %q, want %q", p.Moved.Handle.Domain, wantDomain)
		}
	}
	if len(worldSwitchers) > 0 && crawled == 0 {
		t.Fatal("no moves detected despite world switchers")
	}
}

func TestFolloweeSampleStratification(t *testing.T) {
	_, ds := sharedRun(t)
	if len(ds.TwitterFollowees) == 0 {
		t.Fatal("no followee sample")
	}
	// Sample size about 10% of pairs.
	frac := float64(len(ds.TwitterFollowees)) / float64(len(ds.Pairs))
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("sample fraction = %v", frac)
	}
	// Straddles the median: some sampled users below, some above.
	counts := make([]int, 0, len(ds.Pairs))
	byID := ds.PairByTwitterID()
	for i := range ds.Pairs {
		counts = append(counts, ds.Pairs[i].TwitterFollowing)
	}
	med := medianInt(counts)
	below, above := 0, 0
	for id := range ds.TwitterFollowees {
		if byID[id].TwitterFollowing <= med {
			below++
		} else {
			above++
		}
	}
	if below == 0 || above == 0 {
		t.Fatalf("sample not stratified: below=%d above=%d", below, above)
	}
}

func TestFolloweeEdgesComplete(t *testing.T) {
	e, ds := sharedRun(t)
	for id, refs := range ds.TwitterFollowees {
		p := ds.PairByTwitterID()[id]
		u := findUser(e.w, p.TwitterUsername)
		if len(refs) != e.w.Graph.OutDegree(u.ID) {
			t.Fatalf("user %s: crawled %d followees, graph has %d", p.TwitterUsername, len(refs), e.w.Graph.OutDegree(u.ID))
		}
		break
	}
}

func TestActivityCrawl(t *testing.T) {
	_, ds := sharedRun(t)
	if len(ds.Activity) == 0 {
		t.Fatal("no activity crawled")
	}
	acts, ok := ds.Activity["mastodon.social"]
	if !ok {
		t.Fatal("mastodon.social activity missing")
	}
	for i := 1; i < len(acts); i++ {
		if !acts[i-1].Week.Before(acts[i].Week) {
			t.Fatal("activity weeks not ascending")
		}
	}
}

func TestToxicityScoring(t *testing.T) {
	e := newEnv(t, 80, 31)
	c := New(Config{
		TwitterBase:     "https://" + birdsite.Host,
		IndexBase:       "https://" + indexsvc.Host,
		PerspectiveBase: "https://" + toxsvc.Host,
		Transport:       Transport{HTTP: e.http, Concurrency: 8},
		ScoreToxicity:   true,
	})
	ds, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scored, unscored := 0, 0
	for _, tl := range ds.TwitterTimelines {
		for _, p := range tl.Posts {
			if p.Toxicity >= 0 {
				scored++
			} else {
				unscored++
			}
		}
	}
	if scored == 0 {
		t.Fatal("no posts scored")
	}
	if unscored > scored/10 {
		t.Fatalf("too many unscored posts: %d vs %d", unscored, scored)
	}
}

func TestCoverageCountsAddUp(t *testing.T) {
	_, ds := sharedRun(t)
	cov := ds.Coverage()
	if cov.TwitterOK+cov.TwitterDeleted+cov.TwitterSuspended+cov.TwitterProtected != cov.Pairs {
		t.Fatalf("twitter states don't add up: %+v", cov)
	}
	if cov.MastodonOK+cov.MastodonSilent+cov.MastodonDown != cov.Pairs {
		t.Fatalf("mastodon states don't add up: %+v", cov)
	}
	if cov.InstancesReceived == 0 || cov.InstancesReceived > cov.InstancesIndexed {
		t.Fatalf("instance counts: %+v", cov)
	}
}

func findUser(w *world.World, username string) *world.User {
	for _, u := range w.Users {
		if strings.EqualFold(u.Username, username) {
			return u
		}
	}
	return nil
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	return cp[len(cp)/2]
}
