package crawler

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flock/internal/httpkit"
	"flock/internal/match"
	"flock/internal/vclock"
)

// DefaultKeywords are the §3.1 keyword and hashtag queries, verbatim.
var DefaultKeywords = []string{
	"mastodon",
	`"bye bye twitter"`,
	`"good bye twitter"`,
	"#Mastodon",
	"#MastodonMigration",
	"#ByeByeTwitter",
	"#GoodByeTwitter",
	"#TwitterMigration",
	"#MastodonSocial",
	"#RIPTwitter",
}

// Config parameterizes a crawl.
type Config struct {
	// Service endpoints.
	TwitterBase     string
	IndexBase       string
	PerspectiveBase string
	// HTTP performs all requests (point it at the memnet fabric or a real
	// network).
	HTTP httpkit.Doer
	// Concurrency bounds parallel fetches (default 8).
	Concurrency int
	// MaxSearchPages caps pagination per search query (0 = unlimited).
	MaxSearchPages int
	// FolloweeSampleFrac is the §3.3 sample size (default 0.10).
	FolloweeSampleFrac float64
	// ScoreToxicity enables the §6.3 Perspective pass over every post.
	ScoreToxicity bool
	// Keywords overrides DefaultKeywords when non-nil.
	Keywords []string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// BeforeTimelines runs after discovery+mapping and before the
	// timeline crawls. The simulation uses it to take instances down at
	// the point in the crawl where the paper's instance deaths bit
	// (§3.2's 11.58%).
	BeforeTimelines func()
}

// Crawler runs the pipeline.
type Crawler struct {
	cfg   Config
	tw    *TwitterClient
	masto *MastodonClient
	index *IndexClient
	tox   *PerspectiveClient
}

// New builds a Crawler. The underlying httpkit clients share cfg.HTTP.
func New(cfg Config) *Crawler {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.FolloweeSampleFrac <= 0 {
		cfg.FolloweeSampleFrac = 0.10
	}
	if cfg.Keywords == nil {
		cfg.Keywords = DefaultKeywords
	}
	mk := func() *httpkit.Client {
		return &httpkit.Client{
			HTTP:      cfg.HTTP,
			UserAgent: "flock-crawler/1.0",
			Retry:     httpkit.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second},
		}
	}
	return &Crawler{
		cfg:   cfg,
		tw:    &TwitterClient{Base: cfg.TwitterBase, C: mk()},
		masto: &MastodonClient{C: mk()},
		index: &IndexClient{Base: cfg.IndexBase, C: mk()},
		tox:   &PerspectiveClient{Base: cfg.PerspectiveBase, HTTP: cfg.HTTP},
	}
}

func (c *Crawler) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run executes the full §3 pipeline and returns the dataset.
func (c *Crawler) Run(ctx context.Context) (*Dataset, error) {
	ds := NewDataset()

	// Phase 1 (§3.1): instance index.
	instances, err := c.index.List(ctx)
	if err != nil {
		return nil, fmt.Errorf("crawler: instance index: %w", err)
	}
	ds.Instances = instances
	c.logf("index: %d instances", len(instances))

	// Phase 2 (§3.1): tweet collection.
	if err := c.collectTweets(ctx, ds); err != nil {
		return nil, err
	}
	c.logf("collected %d tweets", len(ds.CollectedTweets))

	// Phase 3 (§3.1): account mapping.
	if err := c.mapAccounts(ctx, ds); err != nil {
		return nil, err
	}
	c.logf("mapped %d account pairs", len(ds.Pairs))

	// Phase 4 (§3.2): timelines on both platforms.
	if c.cfg.BeforeTimelines != nil {
		c.cfg.BeforeTimelines()
	}
	c.crawlTwitterTimelines(ctx, ds)
	c.crawlMastodonTimelines(ctx, ds)

	// Phase 5 (§3.3): stratified followee sample.
	c.crawlFollowees(ctx, ds)

	// Phase 6 (§3.1, Fig. 3): weekly activity.
	c.crawlActivity(ctx, ds)

	// Phase 7 (§6.3): toxicity scoring.
	if c.cfg.ScoreToxicity {
		c.scoreToxicity(ctx, ds)
	}
	return ds, nil
}

// collectTweets runs the instance-link and keyword query families over
// the collection window and dedups into ds.CollectedTweets.
func (c *Crawler) collectTweets(ctx context.Context, ds *Dataset) error {
	start, end := vclock.CollectionStart, vclock.CollectionEnd.Add(24*time.Hour)
	type hit struct {
		tweet TweetJSON
		class QueryClass
	}
	var mu sync.Mutex
	seen := map[string]hit{}

	g := httpkit.NewGroup(c.cfg.Concurrency)
	run := func(query string, class QueryClass) {
		g.Go(func() error {
			tweets, err := c.tw.SearchAll(ctx, query, start, end, c.cfg.MaxSearchPages)
			if err != nil {
				return fmt.Errorf("search %q: %w", query, err)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, t := range tweets {
				prev, dup := seen[t.ID]
				// Instance-link class wins on dedup: a tweet carrying a
				// handle link is strictly more informative.
				if !dup || (prev.class == ClassKeyword && class == ClassInstanceLink) {
					seen[t.ID] = hit{tweet: t, class: class}
				}
			}
			return nil
		})
	}
	for _, inst := range ds.Instances {
		run(fmt.Sprintf("url:%q", inst.Name), ClassInstanceLink)
	}
	for _, kw := range c.cfg.Keywords {
		run(kw, ClassKeyword)
	}
	if err := g.Wait(); err != nil {
		return fmt.Errorf("crawler: tweet collection: %w", err)
	}
	for _, h := range seen {
		at, err := time.Parse(time.RFC3339, h.tweet.CreatedAt)
		if err != nil {
			continue
		}
		ds.CollectedTweets = append(ds.CollectedTweets, CollectedTweet{
			ID:       h.tweet.ID,
			AuthorID: h.tweet.AuthorID,
			Time:     at,
			Text:     h.tweet.Text,
			Source:   h.tweet.Source,
			Class:    h.class,
		})
	}
	sort.Slice(ds.CollectedTweets, func(i, j int) bool {
		if !ds.CollectedTweets[i].Time.Equal(ds.CollectedTweets[j].Time) {
			return ds.CollectedTweets[i].Time.Before(ds.CollectedTweets[j].Time)
		}
		return ds.CollectedTweets[i].ID < ds.CollectedTweets[j].ID
	})
	return nil
}

// mapAccounts applies §3.1's hierarchical matching to every collected
// author, then verifies each mapped handle against its instance.
func (c *Crawler) mapAccounts(ctx context.Context, ds *Dataset) error {
	known := match.KnownInstances{}
	for _, inst := range ds.Instances {
		known[strings.ToLower(inst.Name)] = true
	}
	// Group collected tweets per author.
	byAuthor := map[string][]string{}
	for _, t := range ds.CollectedTweets {
		byAuthor[t.AuthorID] = append(byAuthor[t.AuthorID], t.Text)
	}
	authors := make([]string, 0, len(byAuthor))
	for a := range byAuthor {
		authors = append(authors, a)
	}
	sort.Strings(authors)

	var mu sync.Mutex
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, authorID := range authors {
		authorID := authorID
		g.Go(func() error {
			user, err := c.tw.UserByID(ctx, authorID)
			if err != nil {
				// Account gone between collection and mapping: skip.
				return nil
			}
			profile := match.Profile{
				Username:    user.Username,
				DisplayName: user.Name,
				Description: user.Description,
				Location:    user.Location,
				URL:         user.URL,
			}
			res, ok := match.Map(profile, byAuthor[authorID], known)
			if !ok {
				return nil
			}
			pair := AccountPair{
				TwitterID:        user.ID,
				TwitterUsername:  user.Username,
				Verified:         user.Verified,
				TwitterFollowers: user.PublicMetrics.Followers,
				TwitterFollowing: user.PublicMetrics.Following,
				Handle:           res.Handle,
				MatchSource:      res.Source,
				SameUsername:     strings.EqualFold(user.Username, res.Handle.Username),
			}
			if at, err := time.Parse(time.RFC3339, user.CreatedAt); err == nil {
				pair.TwitterCreatedAt = at
			}
			// Verify against the instance and reconstruct the user's
			// migration chain. Three cases:
			//  - plain account: no move involved;
			//  - we found the ABANDONED account (it has a moved record
			//    pointing forward);
			//  - we found the DESTINATION account (its also_known_as
			//    alias points backwards at the first instance).
			if acc, err := c.masto.Lookup(ctx, res.Handle.Domain, res.Handle.Username); err == nil {
				pair.MastodonVerified = true
				pair.MastodonAccountID = acc.ID
				pair.MastodonFollowers = acc.FollowersCount
				pair.MastodonFollowing = acc.FollowingCount
				pair.MastodonStatuses = acc.StatusesCount
				if at, err := time.Parse(time.RFC3339, acc.CreatedAt); err == nil {
					pair.MastodonCreatedAt = at
				}
				switch {
				case acc.Moved != nil:
					moved := &MovedRecord{AccountID: acc.Moved.ID}
					moved.Handle = handleFromURL(acc.Moved.URL, acc.Moved.Username)
					if at, err := time.Parse(time.RFC3339, acc.Moved.CreatedAt); err == nil {
						moved.MovedAt = at
					}
					pair.Moved = moved
					// Counts on the live account are the meaningful ones.
					pair.MastodonFollowers = acc.Moved.FollowersCount
					pair.MastodonFollowing = acc.Moved.FollowingCount
					pair.MastodonStatuses = acc.Moved.StatusesCount
				case len(acc.AlsoKnownAs) > 0:
					// We discovered the destination; normalize the pair
					// so Handle is always the FIRST account.
					oldHandle := handleFromURL(acc.AlsoKnownAs[0], usernameFromURL(acc.AlsoKnownAs[0]))
					if old, lerr := c.masto.Lookup(ctx, oldHandle.Domain, oldHandle.Username); lerr == nil {
						pair.Moved = &MovedRecord{
							Handle:    res.Handle,
							AccountID: acc.ID,
						}
						if at, perr := time.Parse(time.RFC3339, acc.CreatedAt); perr == nil {
							pair.Moved.MovedAt = at
						}
						pair.Handle = oldHandle
						pair.MastodonAccountID = old.ID
						pair.SameUsername = strings.EqualFold(user.Username, oldHandle.Username)
						if at, perr := time.Parse(time.RFC3339, old.CreatedAt); perr == nil {
							pair.MastodonCreatedAt = at
						}
					}
				}
			} else if httpkit.IsStatus(err, 404) {
				// Handle does not resolve: false-positive mapping, drop.
				return nil
			}
			mu.Lock()
			ds.Pairs = append(ds.Pairs, pair)
			mu.Unlock()
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return fmt.Errorf("crawler: account mapping: %w", err)
	}
	sort.Slice(ds.Pairs, func(i, j int) bool { return ds.Pairs[i].TwitterID < ds.Pairs[j].TwitterID })
	return nil
}

// handleFromURL reconstructs a handle from an account URL plus username.
func handleFromURL(u, username string) match.Handle {
	h := match.Handle{Username: username}
	if rest, ok := strings.CutPrefix(u, "https://"); ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			h.Domain = rest[:i]
		}
	}
	return h
}

// usernameFromURL extracts the @user segment of a profile URL.
func usernameFromURL(u string) string {
	if i := strings.LastIndex(u, "/@"); i >= 0 {
		return u[i+2:]
	}
	return ""
}

// crawlTwitterTimelines fetches every pair's tweets with the §3.2
// failure taxonomy.
func (c *Crawler) crawlTwitterTimelines(ctx context.Context, ds *Dataset) {
	start, end := vclock.StudyStart, vclock.StudyEnd.Add(24*time.Hour)
	var mu sync.Mutex
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for i := range ds.Pairs {
		pair := &ds.Pairs[i]
		g.Go(func() error {
			tl := &TwitterTimeline{State: StateOK}
			tweets, err := c.tw.Timeline(ctx, pair.TwitterID, start, end)
			if err != nil {
				switch {
				case httpkit.IsStatus(err, 404):
					tl.State = StateDeleted
				case httpkit.IsStatus(err, 403):
					tl.State = StateSuspended
				case httpkit.IsStatus(err, 401):
					tl.State = StateProtected
				default:
					tl.State = StateDeleted
				}
			} else {
				for _, t := range tweets {
					at, perr := time.Parse(time.RFC3339, t.CreatedAt)
					if perr != nil {
						continue
					}
					tl.Posts = append(tl.Posts, Post{ID: t.ID, Time: at, Text: t.Text, Source: t.Source, Toxicity: -1})
				}
			}
			mu.Lock()
			ds.TwitterTimelines[pair.TwitterID] = tl
			mu.Unlock()
			return nil
		})
	}
	_ = g.Wait()
	c.logf("twitter timelines: %d", len(ds.TwitterTimelines))
}

// crawlMastodonTimelines fetches every pair's statuses, spanning both
// instances for moved accounts.
func (c *Crawler) crawlMastodonTimelines(ctx context.Context, ds *Dataset) {
	var mu sync.Mutex
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for i := range ds.Pairs {
		pair := &ds.Pairs[i]
		g.Go(func() error {
			tl := &MastodonTimeline{State: StateOK}
			fetch := func(domain, accountID string) error {
				sts, err := c.masto.Statuses(ctx, domain, accountID)
				if err != nil {
					return err
				}
				for _, s := range sts {
					at, perr := time.Parse(time.RFC3339, s.CreatedAt)
					if perr != nil {
						continue
					}
					tl.Posts = append(tl.Posts, Post{ID: s.ID, Time: at, Text: stripHTML(s.Content), Domain: domain, Toxicity: -1})
				}
				return nil
			}
			var err error
			if pair.MastodonAccountID != "" {
				err = fetch(pair.Handle.Domain, pair.MastodonAccountID)
				if err == nil && pair.Moved != nil {
					err = fetch(pair.Moved.Handle.Domain, pair.Moved.AccountID)
				}
			} else {
				// Unverified pair: try a fresh lookup (it may have failed
				// transiently during mapping).
				acc, lerr := c.masto.Lookup(ctx, pair.Handle.Domain, pair.Handle.Username)
				if lerr != nil {
					err = lerr
				} else {
					err = fetch(pair.Handle.Domain, acc.ID)
				}
			}
			switch {
			case err != nil && httpkit.IsStatus(err, 404):
				tl.State = StateInstanceDown // account vanished
			case err != nil:
				tl.State = StateInstanceDown
			case len(tl.Posts) == 0:
				tl.State = StateNoStatuses
			}
			sort.Slice(tl.Posts, func(a, b int) bool { return tl.Posts[a].Time.Before(tl.Posts[b].Time) })
			mu.Lock()
			ds.MastodonTimelines[pair.TwitterID] = tl
			mu.Unlock()
			return nil
		})
	}
	_ = g.Wait()
	c.logf("mastodon timelines: %d", len(ds.MastodonTimelines))
}

// stripHTML removes the <p> wrapper and entities from status content.
func stripHTML(s string) string {
	s = strings.ReplaceAll(s, "<p>", "")
	s = strings.ReplaceAll(s, "</p>", "\n")
	s = strings.ReplaceAll(s, "<br>", "\n")
	s = strings.ReplaceAll(s, "<br/>", "\n")
	s = strings.ReplaceAll(s, "&amp;", "&")
	s = strings.ReplaceAll(s, "&lt;", "<")
	s = strings.ReplaceAll(s, "&gt;", ">")
	s = strings.ReplaceAll(s, "&#39;", "'")
	s = strings.ReplaceAll(s, "&#34;", `"`)
	s = strings.ReplaceAll(s, "&quot;", `"`)
	return strings.TrimSpace(s)
}

// crawlFollowees implements §3.3: a stratified sample straddling the
// median followee count — half the sample from above the median, half
// from below — then full followee crawls on both platforms.
func (c *Crawler) crawlFollowees(ctx context.Context, ds *Dataset) {
	// Eligible: pairs whose Twitter account is crawlable.
	var eligible []*AccountPair
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		if tl := ds.TwitterTimelines[p.TwitterID]; tl != nil && tl.State == StateOK {
			eligible = append(eligible, p)
		}
	}
	if len(eligible) == 0 {
		return
	}
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].TwitterFollowing != eligible[j].TwitterFollowing {
			return eligible[i].TwitterFollowing < eligible[j].TwitterFollowing
		}
		return eligible[i].TwitterID < eligible[j].TwitterID
	})
	n := len(eligible)
	half := int(float64(n) * c.cfg.FolloweeSampleFrac / 2)
	if half < 1 {
		half = 1
	}
	median := n / 2
	sample := map[*AccountPair]bool{}
	// Evenly spaced picks below and above the median: deterministic and
	// spread across the distribution, which is the point of the
	// stratification (representativity, §3.3).
	pick := func(lo, hi, k int) {
		if hi <= lo {
			return
		}
		span := hi - lo
		for i := 0; i < k; i++ {
			idx := lo + (i*span)/k + span/(2*k)
			if idx >= hi {
				idx = hi - 1
			}
			sample[eligible[idx]] = true
		}
	}
	pick(0, median, half)
	pick(median, n, half)
	// All detected switchers join the sample: the §5.3 switch-influence
	// analysis (Fig. 10) needs their ego networks, and at a 4% switch
	// rate a plain 10% sample would catch almost none on scaled-down
	// worlds.
	for _, p := range eligible {
		if p.Moved != nil {
			sample[p] = true
		}
	}

	sampled := make([]*AccountPair, 0, len(sample))
	for p := range sample {
		sampled = append(sampled, p)
	}
	sort.Slice(sampled, func(i, j int) bool { return sampled[i].TwitterID < sampled[j].TwitterID })

	var mu sync.Mutex
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, p := range sampled {
		p := p
		g.Go(func() error {
			users, err := c.tw.Following(ctx, p.TwitterID)
			if err != nil {
				return nil
			}
			refs := make([]FolloweeRef, 0, len(users))
			for _, u := range users {
				refs = append(refs, FolloweeRef{TwitterID: u.ID, Username: u.Username})
			}
			mu.Lock()
			ds.TwitterFollowees[p.TwitterID] = refs
			mu.Unlock()
			// Mastodon following of the live account.
			domain, accID := p.Handle.Domain, p.MastodonAccountID
			if p.Moved != nil {
				domain, accID = p.Moved.Handle.Domain, p.Moved.AccountID
			}
			if accID == "" {
				return nil
			}
			accounts, err := c.masto.Following(ctx, domain, accID)
			if err != nil {
				return nil
			}
			handles := make([]string, 0, len(accounts))
			for _, a := range accounts {
				acct := a.Acct
				if !strings.Contains(acct, "@") {
					acct = acct + "@" + domain
				}
				handles = append(handles, "@"+acct)
			}
			mu.Lock()
			ds.MastodonFollowing[p.TwitterID] = handles
			mu.Unlock()
			return nil
		})
	}
	_ = g.Wait()
	c.logf("followee sample: %d users", len(ds.TwitterFollowees))
}

// crawlActivity fetches weekly activity for every instance that received
// a mapped migrant.
func (c *Crawler) crawlActivity(ctx context.Context, ds *Dataset) {
	domains := map[string]bool{}
	for i := range ds.Pairs {
		domains[ds.Pairs[i].Handle.Domain] = true
		if ds.Pairs[i].Moved != nil {
			domains[ds.Pairs[i].Moved.Handle.Domain] = true
		}
	}
	sorted := make([]string, 0, len(domains))
	for d := range domains {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var mu sync.Mutex
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, domain := range sorted {
		domain := domain
		g.Go(func() error {
			acts, err := c.masto.Activity(ctx, domain)
			if err != nil {
				return nil // down instances simply drop out
			}
			weeks := make([]WeekActivity, 0, len(acts))
			for _, a := range acts {
				wk, err := parseUnix(a.Week)
				if err != nil {
					continue
				}
				st, _ := atoiSafe(a.Statuses)
				lg, _ := atoiSafe(a.Logins)
				rg, _ := atoiSafe(a.Registrations)
				weeks = append(weeks, WeekActivity{Week: wk, Statuses: st, Logins: lg, Registrations: rg})
			}
			sort.Slice(weeks, func(i, j int) bool { return weeks[i].Week.Before(weeks[j].Week) })
			mu.Lock()
			ds.Activity[domain] = weeks
			mu.Unlock()
			return nil
		})
	}
	_ = g.Wait()
	c.logf("activity: %d instances", len(ds.Activity))
}

func atoiSafe(s string) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return n, err
}

// scoreToxicity labels every crawled post via the Perspective-style
// service (§6.3).
func (c *Crawler) scoreToxicity(ctx context.Context, ds *Dataset) {
	g := httpkit.NewGroup(c.cfg.Concurrency)
	scorePosts := func(posts []Post) {
		for i := range posts {
			i := i
			g.Go(func() error {
				v, err := c.tox.Score(ctx, posts[i].Text)
				if err != nil {
					return nil // unscored posts keep -1
				}
				posts[i].Toxicity = v
				return nil
			})
		}
	}
	for _, tl := range ds.TwitterTimelines {
		scorePosts(tl.Posts)
	}
	for _, tl := range ds.MastodonTimelines {
		scorePosts(tl.Posts)
	}
	_ = g.Wait()
	c.logf("toxicity scoring done")
}
