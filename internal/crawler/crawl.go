package crawler

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"

	"flock/internal/httpkit"
	"flock/internal/match"
	"flock/internal/vclock"
)

// DefaultKeywords are the §3.1 keyword and hashtag queries, verbatim.
var DefaultKeywords = []string{
	"mastodon",
	`"bye bye twitter"`,
	`"good bye twitter"`,
	"#Mastodon",
	"#MastodonMigration",
	"#ByeByeTwitter",
	"#GoodByeTwitter",
	"#TwitterMigration",
	"#MastodonSocial",
	"#RIPTwitter",
}

// Transport groups the wire-level knobs of a crawl — how requests are
// performed, bounded, hedged and circuit-broken — so they stop
// interleaving with pipeline knobs (sampling, keywords, checkpoints).
// It is embedded in Config; field access is promoted, so existing
// cfg.Concurrency readers keep working.
type Transport struct {
	// HTTP performs all requests (point it at the memnet fabric or a real
	// network).
	HTTP httpkit.Doer
	// Concurrency bounds parallel fetches globally (default 8).
	Concurrency int
	// Hedge enables tail-latency hedging on the crawl's shared client
	// (zero value: off).
	Hedge httpkit.HedgePolicy
	// Adaptive sizes a per-host AIMD concurrency window under the global
	// bound (zero value: global bound only).
	Adaptive AdaptivePolicy
	// Health is the per-host circuit-breaker registry shared by the
	// crawl's HTTP clients. When nil, New creates one from Breaker.
	Health *httpkit.HealthRegistry
	// Breaker tunes the registry New creates when Health is nil; zero
	// fields take httpkit.DefaultBreaker values.
	Breaker httpkit.BreakerPolicy
	// Clock is the time base for hedge digests and AIMD cooldowns; nil
	// means vclock.Wall.
	Clock vclock.NowFunc
}

// Config parameterizes a crawl.
type Config struct {
	// Service endpoints.
	TwitterBase     string
	IndexBase       string
	PerspectiveBase string
	// Transport holds the wire-level knobs (HTTP doer, concurrency,
	// hedging, adaptive windows, breakers).
	Transport
	// MaxSearchPages caps pagination per search query (0 = unlimited).
	MaxSearchPages int
	// FolloweeSampleFrac is the §3.3 sample size (default 0.10).
	FolloweeSampleFrac float64
	// ScoreToxicity enables the §6.3 Perspective pass over every post.
	ScoreToxicity bool
	// Keywords overrides DefaultKeywords when non-nil.
	Keywords []string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// BeforeTimelines runs after discovery+mapping and before the
	// timeline crawls. The simulation uses it to take instances down at
	// the point in the crawl where the paper's instance deaths bit
	// (§3.2's 11.58%). On a resumed run it fires again whenever the
	// timeline phases are not yet complete.
	BeforeTimelines func()

	// Checkpoint persists per-phase progress so a cancelled or crashed
	// Run resumes where it stopped (nil = no persistence).
	Checkpoint Checkpoint
	// CheckpointEvery is the number of completed work units between
	// periodic mid-phase saves (default 32). Phase boundaries always
	// save.
	CheckpointEvery int
	// NoHealthResume discards the checkpoint's persisted health snapshot
	// on resume: the run re-learns host health from scratch instead of
	// planning around previously quarantined hosts.
	NoHealthResume bool
}

// Crawler runs the pipeline.
type Crawler struct {
	cfg     Config
	client  *httpkit.Client
	tw      *TwitterClient
	masto   *MastodonClient
	index   *IndexClient
	tox     *PerspectiveClient
	health  *httpkit.HealthRegistry
	lim     Limiter
	plan    *planner
	twHost  string
	toxHost string
	rep     *reportState
}

// New builds a Crawler. All service clients share ONE httpkit client —
// so the hedge budget, latency digests and per-host health registry are
// global across the crawl — plus an adaptive per-host limiter when
// cfg.Adaptive is enabled.
func New(cfg Config) *Crawler {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.FolloweeSampleFrac <= 0 {
		cfg.FolloweeSampleFrac = 0.10
	}
	if cfg.Keywords == nil {
		cfg.Keywords = DefaultKeywords
	}
	health := cfg.Health
	if health == nil {
		health = httpkit.NewHealthRegistry(cfg.Breaker)
		if cfg.Clock != nil {
			// Probation ages are computed against the crawl's clock.
			health.SetClock(cfg.Clock)
		}
	}
	client := httpkit.New(
		httpkit.WithDoer(cfg.HTTP),
		httpkit.WithUserAgent("flock-crawler/1.0"),
		httpkit.WithRetry(httpkit.RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}),
		httpkit.WithBreaker(health),
		httpkit.WithHedge(cfg.Hedge),
		httpkit.WithClock(cfg.Clock),
	)
	c := &Crawler{
		cfg:     cfg,
		client:  client,
		tw:      &TwitterClient{Base: cfg.TwitterBase, C: client},
		masto:   &MastodonClient{C: client},
		index:   &IndexClient{Base: cfg.IndexBase, C: client},
		tox:     &PerspectiveClient{Base: cfg.PerspectiveBase, HTTP: client},
		health:  health,
		lim:     NewAdaptiveLimiter(cfg.Adaptive, health, cfg.Concurrency, cfg.Clock),
		twHost:  hostOf(cfg.TwitterBase),
		toxHost: hostOf(cfg.PerspectiveBase),
		rep:     newReportState(),
	}
	c.plan = newPlanner(c)
	return c
}

// hostOf extracts the lowercased hostname of a base URL, matching the
// key httpkit's breaker registry uses for the same requests.
func hostOf(base string) string {
	if u, err := url.Parse(base); err == nil && u.Hostname() != "" {
		return strings.ToLower(u.Hostname())
	}
	return strings.ToLower(base)
}

// underLimit runs fetch inside the adaptive limiter's window for host.
// Every fan-out phase routes its per-target exchanges through here so a
// backed-off host slows only its own work units.
func underLimit[T any](ctx context.Context, c *Crawler, host string, fetch func() (T, error)) (T, error) {
	release, err := c.lim.Acquire(ctx, host)
	if err != nil {
		var zero T
		return zero, err
	}
	defer release()
	return fetch()
}

func (c *Crawler) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// waitPhase waits out a worker group and wraps its error with the phase
// name. On cancellation every in-flight worker returns the same context
// error and Group.Wait joins them all; collapse that pile to the one
// context error.
func waitPhase(ctx context.Context, g *httpkit.Group, phase string) error {
	err := g.Wait()
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		err = ctx.Err()
	}
	return fmt.Errorf("crawler: %s: %w", phase, err)
}

// Health exposes the crawl's per-host breaker registry.
func (c *Crawler) Health() *httpkit.HealthRegistry { return c.health }

// HTTPStats snapshots the shared client's counters (requests, retries,
// hedges fired/won, breaker short-circuits).
func (c *Crawler) HTTPStats() httpkit.Stats { return c.client.Stats() }

// HostLimits reports the adaptive limiter's current per-host windows
// (nil when adaptation is off).
func (c *Crawler) HostLimits() map[string]int { return c.lim.Limits() }

// Run executes the full §3 pipeline and returns the dataset. With a
// Checkpoint configured, progress persists across cancellation: calling
// Run again resumes at the first incomplete phase and skips work units
// that already finished.
func (c *Crawler) Run(ctx context.Context) (*Dataset, error) {
	t, err := c.begin()
	if err != nil {
		return nil, err
	}
	prog := t.prog
	ds := prog.Dataset

	// abort saves best-effort so an interrupted run can resume, then
	// surfaces the phase error.
	abort := func(err error) (*Dataset, error) {
		_ = t.flush()
		return nil, err
	}

	// Phase 1 (§3.1): instance index.
	if prog.Phase < phaseIndex {
		instances, err := c.index.List(ctx)
		if err != nil {
			return abort(fmt.Errorf("crawler: instance index: %w", err))
		}
		t.update(func(p *Progress) {
			p.Dataset.Instances = instances
			p.Phase = phaseIndex
		})
		if err := t.flush(); err != nil {
			return nil, err
		}
	}
	c.logf("index: %d instances", len(ds.Instances))

	// Phase 2 (§3.1): tweet collection.
	if prog.Phase < phaseTweets {
		if err := c.collectTweets(ctx, t); err != nil {
			return abort(err)
		}
	}
	c.logf("collected %d tweets", len(ds.CollectedTweets))

	// Phase 3 (§3.1): account mapping.
	if prog.Phase < phaseMapping {
		if err := c.mapAccounts(ctx, t); err != nil {
			return abort(err)
		}
	}
	c.logf("mapped %d account pairs", len(ds.Pairs))

	// Phase 4 (§3.2): timelines on both platforms. The hook fires on
	// every run (including resumes) that still has timeline work left.
	if c.cfg.BeforeTimelines != nil && prog.Phase < phaseMastoTL {
		c.cfg.BeforeTimelines()
	}
	if prog.Phase < phaseTwitterTL {
		if err := c.crawlTwitterTimelines(ctx, t); err != nil {
			return abort(err)
		}
	}
	if prog.Phase < phaseMastoTL {
		if err := c.crawlMastodonTimelines(ctx, t); err != nil {
			return abort(err)
		}
	}

	// Phase 5 (§3.3): stratified followee sample.
	if prog.Phase < phaseFollowees {
		if err := c.crawlFollowees(ctx, t); err != nil {
			return abort(err)
		}
	}

	// Phase 6 (§3.1, Fig. 3): weekly activity.
	if prog.Phase < phaseActivity {
		if err := c.crawlActivity(ctx, t); err != nil {
			return abort(err)
		}
	}

	// Phase 7 (§6.3): toxicity scoring.
	if c.cfg.ScoreToxicity && prog.Phase < phaseToxicity {
		if err := c.scoreToxicity(ctx, t); err != nil {
			return abort(err)
		}
	}
	if err := t.flush(); err != nil {
		return nil, err
	}
	return ds, nil
}

// collectTweets runs the instance-link and keyword query families over
// the collection window and dedups into ds.CollectedTweets. Each query
// is one resumable work unit; a terminally failed query is recorded as a
// coverage gap rather than failing the crawl.
func (c *Crawler) collectTweets(ctx context.Context, t *tracker) error {
	start, end := vclock.CollectionStart, vclock.CollectionEnd.Add(24*time.Hour)
	type query struct {
		q     string
		class QueryClass
	}
	var queries []query
	for _, inst := range t.prog.Dataset.Instances {
		queries = append(queries, query{fmt.Sprintf("url:%q", inst.Name), ClassInstanceLink})
	}
	for _, kw := range c.cfg.Keywords {
		queries = append(queries, query{kw, ClassKeyword})
	}
	// Snapshot the done set before scheduling: workers mutate the live one.
	done := make(map[string]bool, len(t.prog.DoneQueries))
	for q, ok := range t.prog.DoneQueries {
		done[q] = ok
	}

	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, q := range queries {
		q := q
		if done[q.q] {
			continue
		}
		g.Go(func() error {
			tweets, err := underLimit(ctx, c, c.twHost, func() ([]TweetJSON, error) {
				return c.tw.SearchAll(ctx, q.q, start, end, c.cfg.MaxSearchPages)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				c.rep.note(c.rep.failedQueries, q.q, err)
				t.update(func(p *Progress) { p.DoneQueries[q.q] = true })
				return nil
			}
			t.update(func(p *Progress) {
				for _, tw := range tweets {
					prev, dup := p.SeenTweets[tw.ID]
					// Instance-link class wins on dedup: a tweet carrying a
					// handle link is strictly more informative. The rule is
					// order-independent, so resumed runs converge to the
					// same corpus.
					if !dup || (prev.Class == ClassKeyword && q.class == ClassInstanceLink) {
						p.SeenTweets[tw.ID] = SeenTweet{Tweet: tw, Class: q.class}
					}
				}
				p.DoneQueries[q.q] = true
			})
			return nil
		})
	}
	if err := waitPhase(ctx, g, "tweet collection"); err != nil {
		return err
	}
	t.update(func(p *Progress) {
		for _, h := range p.SeenTweets {
			at, ok := parseTweetTime(h.Tweet.CreatedAt)
			if !ok {
				continue
			}
			p.Dataset.CollectedTweets = append(p.Dataset.CollectedTweets, CollectedTweet{
				ID:       h.Tweet.ID,
				AuthorID: h.Tweet.AuthorID,
				Time:     at,
				Text:     h.Tweet.Text,
				Source:   h.Tweet.Source,
				Class:    h.Class,
			})
		}
		sort.Slice(p.Dataset.CollectedTweets, func(i, j int) bool {
			a, b := p.Dataset.CollectedTweets[i], p.Dataset.CollectedTweets[j]
			if !a.Time.Equal(b.Time) {
				return a.Time.Before(b.Time)
			}
			return a.ID < b.ID
		})
		p.SeenTweets = map[string]SeenTweet{}
		p.DoneQueries = map[string]bool{}
		p.Phase = phaseTweets
	})
	return t.flush()
}

// mapAccounts applies §3.1's hierarchical matching to every collected
// author, then verifies each mapped handle against its instance. Each
// author is one resumable work unit.
func (c *Crawler) mapAccounts(ctx context.Context, t *tracker) error {
	ds := t.prog.Dataset
	known := match.KnownInstances{}
	for _, inst := range ds.Instances {
		known[strings.ToLower(inst.Name)] = true
	}
	// Group collected tweets per author.
	byAuthor := map[string][]string{}
	for _, tw := range ds.CollectedTweets {
		byAuthor[tw.AuthorID] = append(byAuthor[tw.AuthorID], tw.Text)
	}
	authors := make([]string, 0, len(byAuthor))
	for a := range byAuthor {
		authors = append(authors, a)
	}
	sort.Strings(authors)
	done := make(map[string]bool, len(t.prog.DoneAuthors))
	for a, ok := range t.prog.DoneAuthors {
		done[a] = ok
	}

	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, authorID := range authors {
		authorID := authorID
		if done[authorID] {
			continue
		}
		g.Go(func() error {
			markDone := func() {
				t.update(func(p *Progress) { p.DoneAuthors[authorID] = true })
			}
			user, err := underLimit(ctx, c, c.twHost, func() (*UserJSON, error) {
				return c.tw.UserByID(ctx, authorID)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// Account gone between collection and mapping: skip.
				c.rep.note(c.rep.droppedAuthors, authorID, err)
				markDone()
				return nil
			}
			profile := match.Profile{
				Username:    user.Username,
				DisplayName: user.Name,
				Description: user.Description,
				Location:    user.Location,
				URL:         user.URL,
			}
			res, ok := match.Map(profile, byAuthor[authorID], known)
			if !ok {
				markDone()
				return nil
			}
			pair := AccountPair{
				TwitterID:        user.ID,
				TwitterUsername:  user.Username,
				Verified:         user.Verified,
				TwitterFollowers: user.PublicMetrics.Followers,
				TwitterFollowing: user.PublicMetrics.Following,
				Handle:           res.Handle,
				MatchSource:      res.Source,
				SameUsername:     strings.EqualFold(user.Username, res.Handle.Username),
			}
			if at, ok := parseTweetTime(user.CreatedAt); ok {
				pair.TwitterCreatedAt = at
			}
			// Verify against the instance and reconstruct the user's
			// migration chain. Three cases:
			//  - plain account: no move involved;
			//  - we found the ABANDONED account (it has a moved record
			//    pointing forward);
			//  - we found the DESTINATION account (its also_known_as
			//    alias points backwards at the first instance).
			if acc, lerr := underPlan(ctx, c, strings.ToLower(res.Handle.Domain), func() (*MastoAccountJSON, error) {
				return c.masto.Lookup(ctx, res.Handle.Domain, res.Handle.Username)
			}); lerr == nil {
				pair.MastodonVerified = true
				pair.MastodonAccountID = acc.ID
				pair.MastodonFollowers = acc.FollowersCount
				pair.MastodonFollowing = acc.FollowingCount
				pair.MastodonStatuses = acc.StatusesCount
				if at, ok := parseTweetTime(acc.CreatedAt); ok {
					pair.MastodonCreatedAt = at
				}
				switch {
				case acc.Moved != nil:
					moved := &MovedRecord{AccountID: acc.Moved.ID}
					moved.Handle = handleFromURL(acc.Moved.URL, acc.Moved.Username)
					if at, ok := parseTweetTime(acc.Moved.CreatedAt); ok {
						moved.MovedAt = at
					}
					pair.Moved = moved
					// Counts on the live account are the meaningful ones.
					pair.MastodonFollowers = acc.Moved.FollowersCount
					pair.MastodonFollowing = acc.Moved.FollowingCount
					pair.MastodonStatuses = acc.Moved.StatusesCount
				case len(acc.AlsoKnownAs) > 0:
					// We discovered the destination; normalize the pair
					// so Handle is always the FIRST account.
					oldHandle := handleFromURL(acc.AlsoKnownAs[0], usernameFromURL(acc.AlsoKnownAs[0]))
					old, lerr := underPlan(ctx, c, strings.ToLower(oldHandle.Domain), func() (*MastoAccountJSON, error) {
						return c.masto.Lookup(ctx, oldHandle.Domain, oldHandle.Username)
					})
					if lerr != nil && ctx.Err() != nil {
						return ctx.Err()
					}
					if lerr == nil {
						pair.Moved = &MovedRecord{
							Handle:    res.Handle,
							AccountID: acc.ID,
						}
						if at, ok := parseTweetTime(acc.CreatedAt); ok {
							pair.Moved.MovedAt = at
						}
						pair.Handle = oldHandle
						pair.MastodonAccountID = old.ID
						pair.SameUsername = strings.EqualFold(user.Username, oldHandle.Username)
						if at, ok := parseTweetTime(old.CreatedAt); ok {
							pair.MastodonCreatedAt = at
						}
					}
				}
			} else if httpkit.IsStatus(lerr, 404) {
				// Handle does not resolve: false-positive mapping, drop.
				markDone()
				return nil
			} else if ctx.Err() != nil {
				return ctx.Err()
			}
			t.update(func(p *Progress) {
				p.Dataset.Pairs = append(p.Dataset.Pairs, pair)
				p.DoneAuthors[authorID] = true
			})
			return nil
		})
	}
	if err := waitPhase(ctx, g, "account mapping"); err != nil {
		return err
	}
	t.update(func(p *Progress) {
		sort.Slice(p.Dataset.Pairs, func(i, j int) bool {
			return p.Dataset.Pairs[i].TwitterID < p.Dataset.Pairs[j].TwitterID
		})
		p.DoneAuthors = map[string]bool{}
		p.Phase = phaseMapping
	})
	return t.flush()
}

// handleFromURL reconstructs a handle from an account URL plus username.
func handleFromURL(u, username string) match.Handle {
	h := match.Handle{Username: username}
	if rest, ok := strings.CutPrefix(u, "https://"); ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			h.Domain = rest[:i]
		}
	}
	return h
}

// usernameFromURL extracts the @user segment of a profile URL.
func usernameFromURL(u string) string {
	if i := strings.LastIndex(u, "/@"); i >= 0 {
		return u[i+2:]
	}
	return ""
}

// crawlTwitterTimelines fetches every pair's tweets with the §3.2
// failure taxonomy. Presence in ds.TwitterTimelines is the resume
// marker: every finished unit (including taxonomy failures) writes an
// entry.
func (c *Crawler) crawlTwitterTimelines(ctx context.Context, t *tracker) error {
	start, end := vclock.StudyStart, vclock.StudyEnd.Add(24*time.Hour)
	ds := t.prog.Dataset
	done := make(map[string]bool, len(ds.TwitterTimelines))
	for id := range ds.TwitterTimelines {
		done[id] = true
	}
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for i := range ds.Pairs {
		pair := &ds.Pairs[i]
		if done[pair.TwitterID] {
			continue
		}
		g.Go(func() error {
			tl := &TwitterTimeline{State: StateOK}
			tweets, err := underLimit(ctx, c, c.twHost, func() ([]TweetJSON, error) {
				return c.tw.Timeline(ctx, pair.TwitterID, start, end)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				switch {
				case httpkit.IsStatus(err, 404):
					tl.State = StateDeleted
				case httpkit.IsStatus(err, 403):
					tl.State = StateSuspended
				case httpkit.IsStatus(err, 401):
					tl.State = StateProtected
				default:
					// Transport failure, not an account state: record the
					// gap alongside the taxonomy bucket.
					c.rep.note(c.rep.twitterTLFailures, pair.TwitterID, err)
					tl.State = StateDeleted
				}
			} else {
				for _, tw := range tweets {
					at, ok := parseTweetTime(tw.CreatedAt)
					if !ok {
						continue
					}
					tl.Posts = append(tl.Posts, Post{ID: tw.ID, Time: at, Text: tw.Text, Source: tw.Source, Toxicity: -1})
				}
			}
			t.update(func(p *Progress) { p.Dataset.TwitterTimelines[pair.TwitterID] = tl })
			return nil
		})
	}
	if err := waitPhase(ctx, g, "twitter timelines"); err != nil {
		return err
	}
	t.update(func(p *Progress) { p.Phase = phaseTwitterTL })
	c.logf("twitter timelines: %d", len(ds.TwitterTimelines))
	return t.flush()
}

// crawlMastodonTimelines fetches every pair's statuses, spanning both
// instances for moved accounts. Presence in ds.MastodonTimelines is the
// resume marker.
func (c *Crawler) crawlMastodonTimelines(ctx context.Context, t *tracker) error {
	ds := t.prog.Dataset
	done := make(map[string]bool, len(ds.MastodonTimelines))
	for id := range ds.MastodonTimelines {
		done[id] = true
	}
	g := httpkit.NewGroup(c.cfg.Concurrency)
	for i := range ds.Pairs {
		pair := &ds.Pairs[i]
		if done[pair.TwitterID] {
			continue
		}
		// Planner partition: pairs whose primary instance is quarantined
		// are resolved up front — recorded as instance-down with a gap
		// entry, never scheduled, never dialed.
		if host := strings.ToLower(pair.Handle.Domain); c.plan.decide(host) == planSkip {
			c.rep.noteSkip(host)
			c.rep.note(c.rep.mastoTLFailures, pair.TwitterID, errQuarantineSkip)
			t.update(func(p *Progress) {
				p.Dataset.MastodonTimelines[pair.TwitterID] = &MastodonTimeline{State: StateInstanceDown}
			})
			continue
		}
		g.Go(func() error {
			tl := &MastodonTimeline{State: StateOK}
			fetch := func(domain, accountID string) error {
				sts, err := underPlan(ctx, c, strings.ToLower(domain), func() ([]MastoStatusJSON, error) {
					return c.masto.Statuses(ctx, domain, accountID)
				})
				if err != nil {
					return err
				}
				for _, s := range sts {
					at, ok := parseTweetTime(s.CreatedAt)
					if !ok {
						continue
					}
					tl.Posts = append(tl.Posts, Post{ID: s.ID, Time: at, Text: stripHTML(s.Content), Domain: domain, Toxicity: -1})
				}
				return nil
			}
			var err error
			if pair.MastodonAccountID != "" {
				err = fetch(pair.Handle.Domain, pair.MastodonAccountID)
				if err == nil && pair.Moved != nil {
					err = fetch(pair.Moved.Handle.Domain, pair.Moved.AccountID)
				}
			} else {
				// Unverified pair: try a fresh lookup (it may have failed
				// transiently during mapping).
				acc, lerr := underPlan(ctx, c, strings.ToLower(pair.Handle.Domain), func() (*MastoAccountJSON, error) {
					return c.masto.Lookup(ctx, pair.Handle.Domain, pair.Handle.Username)
				})
				if lerr != nil {
					err = lerr
				} else {
					err = fetch(pair.Handle.Domain, acc.ID)
				}
			}
			if err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			switch {
			case err != nil && httpkit.IsStatus(err, 404):
				tl.State = StateInstanceDown // account vanished
			case err != nil:
				tl.State = StateInstanceDown
				c.rep.note(c.rep.mastoTLFailures, pair.TwitterID, err)
			case len(tl.Posts) == 0:
				tl.State = StateNoStatuses
			}
			sort.Slice(tl.Posts, func(a, b int) bool { return tl.Posts[a].Time.Before(tl.Posts[b].Time) })
			t.update(func(p *Progress) { p.Dataset.MastodonTimelines[pair.TwitterID] = tl })
			return nil
		})
	}
	if err := waitPhase(ctx, g, "mastodon timelines"); err != nil {
		return err
	}
	t.update(func(p *Progress) { p.Phase = phaseMastoTL })
	c.logf("mastodon timelines: %d", len(ds.MastodonTimelines))
	return t.flush()
}

// stripHTML removes the <p> wrapper and entities from status content.
func stripHTML(s string) string {
	s = strings.ReplaceAll(s, "<p>", "")
	s = strings.ReplaceAll(s, "</p>", "\n")
	s = strings.ReplaceAll(s, "<br>", "\n")
	s = strings.ReplaceAll(s, "<br/>", "\n")
	s = strings.ReplaceAll(s, "&amp;", "&")
	s = strings.ReplaceAll(s, "&lt;", "<")
	s = strings.ReplaceAll(s, "&gt;", ">")
	s = strings.ReplaceAll(s, "&#39;", "'")
	s = strings.ReplaceAll(s, "&#34;", `"`)
	s = strings.ReplaceAll(s, "&quot;", `"`)
	return strings.TrimSpace(s)
}

// crawlFollowees implements §3.3: a stratified sample straddling the
// median followee count — half the sample from above the median, half
// from below — then full followee crawls on both platforms. The sample
// is a pure function of the mapped pairs, so a resumed run recomputes it
// identically; DoneFollowees marks the units already crawled (failures
// produce no dataset entry, hence the explicit set).
func (c *Crawler) crawlFollowees(ctx context.Context, t *tracker) error {
	ds := t.prog.Dataset
	// Eligible: pairs whose Twitter account is crawlable.
	var eligible []*AccountPair
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		if tl := ds.TwitterTimelines[p.TwitterID]; tl != nil && tl.State == StateOK {
			eligible = append(eligible, p)
		}
	}
	if len(eligible) == 0 {
		t.update(func(p *Progress) {
			p.DoneFollowees = map[string]bool{}
			p.Phase = phaseFollowees
		})
		return t.flush()
	}
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].TwitterFollowing != eligible[j].TwitterFollowing {
			return eligible[i].TwitterFollowing < eligible[j].TwitterFollowing
		}
		return eligible[i].TwitterID < eligible[j].TwitterID
	})
	n := len(eligible)
	half := int(float64(n) * c.cfg.FolloweeSampleFrac / 2)
	if half < 1 {
		half = 1
	}
	median := n / 2
	sample := map[*AccountPair]bool{}
	// Evenly spaced picks below and above the median: deterministic and
	// spread across the distribution, which is the point of the
	// stratification (representativity, §3.3).
	pick := func(lo, hi, k int) {
		if hi <= lo {
			return
		}
		span := hi - lo
		for i := 0; i < k; i++ {
			idx := lo + (i*span)/k + span/(2*k)
			if idx >= hi {
				idx = hi - 1
			}
			sample[eligible[idx]] = true
		}
	}
	pick(0, median, half)
	pick(median, n, half)
	// All detected switchers join the sample: the §5.3 switch-influence
	// analysis (Fig. 10) needs their ego networks, and at a 4% switch
	// rate a plain 10% sample would catch almost none on scaled-down
	// worlds.
	for _, p := range eligible {
		if p.Moved != nil {
			sample[p] = true
		}
	}

	sampled := make([]*AccountPair, 0, len(sample))
	for p := range sample {
		sampled = append(sampled, p)
	}
	sort.Slice(sampled, func(i, j int) bool { return sampled[i].TwitterID < sampled[j].TwitterID })
	done := make(map[string]bool, len(t.prog.DoneFollowees))
	for id, ok := range t.prog.DoneFollowees {
		done[id] = ok
	}

	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, p := range sampled {
		p := p
		if done[p.TwitterID] {
			continue
		}
		g.Go(func() error {
			markDone := func() {
				t.update(func(pr *Progress) { pr.DoneFollowees[p.TwitterID] = true })
			}
			users, err := underLimit(ctx, c, c.twHost, func() ([]UserJSON, error) {
				return c.tw.Following(ctx, p.TwitterID)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				c.rep.note(c.rep.followeeGaps, p.TwitterID, err)
				markDone()
				return nil
			}
			refs := make([]FolloweeRef, 0, len(users))
			for _, u := range users {
				refs = append(refs, FolloweeRef{TwitterID: u.ID, Username: u.Username})
			}
			t.update(func(pr *Progress) { pr.Dataset.TwitterFollowees[p.TwitterID] = refs })
			// Mastodon following of the live account.
			domain, accID := p.Handle.Domain, p.MastodonAccountID
			if p.Moved != nil {
				domain, accID = p.Moved.Handle.Domain, p.Moved.AccountID
			}
			if accID == "" {
				markDone()
				return nil
			}
			accounts, err := underPlan(ctx, c, strings.ToLower(domain), func() ([]MastoAccountJSON, error) {
				return c.masto.Following(ctx, domain, accID)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				c.rep.note(c.rep.followeeGaps, p.TwitterID, err)
				markDone()
				return nil
			}
			handles := make([]string, 0, len(accounts))
			for _, a := range accounts {
				acct := a.Acct
				if !strings.Contains(acct, "@") {
					acct = acct + "@" + domain
				}
				handles = append(handles, "@"+acct)
			}
			t.update(func(pr *Progress) {
				pr.Dataset.MastodonFollowing[p.TwitterID] = handles
				pr.DoneFollowees[p.TwitterID] = true
			})
			return nil
		})
	}
	if err := waitPhase(ctx, g, "followee sample"); err != nil {
		return err
	}
	t.update(func(p *Progress) {
		p.DoneFollowees = map[string]bool{}
		p.Phase = phaseFollowees
	})
	c.logf("followee sample: %d users", len(ds.TwitterFollowees))
	return t.flush()
}

// crawlActivity fetches weekly activity for every instance that received
// a mapped migrant. DoneActivity marks finished domains (down instances
// drop out with a recorded gap).
func (c *Crawler) crawlActivity(ctx context.Context, t *tracker) error {
	ds := t.prog.Dataset
	domains := map[string]bool{}
	for i := range ds.Pairs {
		domains[ds.Pairs[i].Handle.Domain] = true
		if ds.Pairs[i].Moved != nil {
			domains[ds.Pairs[i].Moved.Handle.Domain] = true
		}
	}
	sorted := make([]string, 0, len(domains))
	for d := range domains {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	done := make(map[string]bool, len(t.prog.DoneActivity))
	for d, ok := range t.prog.DoneActivity {
		done[d] = ok
	}

	g := httpkit.NewGroup(c.cfg.Concurrency)
	for _, domain := range sorted {
		domain := domain
		if done[domain] {
			continue
		}
		// Planner partition: quarantined instances drop out of the
		// activity panel up front with a recorded gap, no dial spent.
		if host := strings.ToLower(domain); c.plan.decide(host) == planSkip {
			c.rep.noteSkip(host)
			c.rep.note(c.rep.activityGaps, domain, errQuarantineSkip)
			t.update(func(p *Progress) { p.DoneActivity[domain] = true })
			continue
		}
		g.Go(func() error {
			acts, err := underPlan(ctx, c, strings.ToLower(domain), func() ([]ActivityJSON, error) {
				return c.masto.Activity(ctx, domain)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// Down instances drop out of the activity panel.
				c.rep.note(c.rep.activityGaps, domain, err)
				t.update(func(p *Progress) { p.DoneActivity[domain] = true })
				return nil
			}
			weeks := make([]WeekActivity, 0, len(acts))
			for _, a := range acts {
				wk, werr := parseUnix(a.Week)
				if werr != nil {
					continue
				}
				st, _ := atoiSafe(a.Statuses)
				lg, _ := atoiSafe(a.Logins)
				rg, _ := atoiSafe(a.Registrations)
				weeks = append(weeks, WeekActivity{Week: wk, Statuses: st, Logins: lg, Registrations: rg})
			}
			sort.Slice(weeks, func(i, j int) bool { return weeks[i].Week.Before(weeks[j].Week) })
			t.update(func(p *Progress) {
				p.Dataset.Activity[domain] = weeks
				p.DoneActivity[domain] = true
			})
			return nil
		})
	}
	if err := waitPhase(ctx, g, "activity"); err != nil {
		return err
	}
	t.update(func(p *Progress) {
		p.DoneActivity = map[string]bool{}
		p.Phase = phaseActivity
	})
	c.logf("activity: %d instances", len(ds.Activity))
	return t.flush()
}

func atoiSafe(s string) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return n, err
}

// scoreToxicity labels every crawled post via the Perspective-style
// service (§6.3). Already-scored posts (Toxicity >= 0, e.g. restored
// from a checkpoint) are skipped, making the phase idempotent. No
// mid-phase checkpoints: workers write posts in place, so saves only
// happen at the phase boundary when they are quiescent.
func (c *Crawler) scoreToxicity(ctx context.Context, t *tracker) error {
	ds := t.prog.Dataset
	g := httpkit.NewGroup(c.cfg.Concurrency)
	scorePosts := func(posts []Post) {
		for i := range posts {
			i := i
			if posts[i].Toxicity >= 0 {
				continue
			}
			g.Go(func() error {
				v, err := underLimit(ctx, c, c.toxHost, func() (float64, error) {
					return c.tox.Score(ctx, posts[i].Text)
				})
				if err != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					return nil // unscored posts keep -1
				}
				posts[i].Toxicity = v
				return nil
			})
		}
	}
	for _, tl := range ds.TwitterTimelines {
		scorePosts(tl.Posts)
	}
	for _, tl := range ds.MastodonTimelines {
		scorePosts(tl.Posts)
	}
	if err := waitPhase(ctx, g, "toxicity"); err != nil {
		return err
	}
	t.update(func(p *Progress) { p.Phase = phaseToxicity })
	c.logf("toxicity scoring done")
	return t.flush()
}
