package crawler

import (
	"sync"
	"testing"
)

// TestMemCheckpointSnapshotsProgress is the aliasing regression test:
// Save must freeze the progress at save time (FileCheckpoint serialize
// semantics), not retain the caller's live pointer.
func TestMemCheckpointSnapshotsProgress(t *testing.T) {
	ck := &MemCheckpoint{}
	prog := newProgress()
	prog.Phase = phaseTweets
	prog.DoneQueries["mastodon"] = true
	if err := ck.Save(prog); err != nil {
		t.Fatal(err)
	}

	// Mutate the original after the save, as the tracker does between
	// periodic saves.
	prog.Phase = phaseActivity
	prog.DoneQueries["#RIPTwitter"] = true
	prog.Dataset.Pairs = append(prog.Dataset.Pairs, AccountPair{TwitterID: "late"})

	got, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != phaseTweets {
		t.Fatalf("saved snapshot phase = %d, want %d (live alias of caller's progress?)", got.Phase, phaseTweets)
	}
	if len(got.DoneQueries) != 1 || !got.DoneQueries["mastodon"] {
		t.Fatalf("saved snapshot queries = %v, want only the pre-save entry", got.DoneQueries)
	}
	if len(got.Dataset.Pairs) != 0 {
		t.Fatalf("post-save pair leaked into snapshot: %+v", got.Dataset.Pairs)
	}

	// Loads hand out isolated copies too: mutating one must not bleed
	// into the stored snapshot or other loads.
	got.DoneQueries["tampered"] = true
	again, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if again.DoneQueries["tampered"] {
		t.Fatal("Load returned a shared copy; mutation bled across loads")
	}
}

// TestMemCheckpointConcurrentSaveLoad exercises the aliasing bug's race
// form under -race: a writer mutating its progress between saves while a
// reader walks loaded snapshots. With live-alias semantics this is a
// data race on the maps; with snapshot semantics it is clean.
func TestMemCheckpointConcurrentSaveLoad(t *testing.T) {
	ck := &MemCheckpoint{}
	prog := newProgress()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			prog.DoneQueries[string(rune('a'+i%26))] = true
			prog.Phase = i % phaseToxicity
			if err := ck.Save(prog); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			got, err := ck.Load()
			if err != nil {
				t.Error(err)
				return
			}
			if got == nil {
				continue
			}
			n := 0
			for q := range got.DoneQueries {
				_ = q
				n++
			}
			if n > 26 {
				t.Errorf("impossible query count %d", n)
				return
			}
		}
	}()
	wg.Wait()
}
