package fediverse

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"flock/internal/vclock"
	"flock/internal/world"
)

// AccountDTO mirrors the Mastodon account entity fields the crawler
// reads.
type AccountDTO struct {
	ID             string      `json:"id"`
	Username       string      `json:"username"`
	Acct           string      `json:"acct"`
	DisplayName    string      `json:"display_name"`
	Note           string      `json:"note"`
	URL            string      `json:"url"`
	CreatedAt      string      `json:"created_at"`
	FollowersCount int         `json:"followers_count"`
	FollowingCount int         `json:"following_count"`
	StatusesCount  int         `json:"statuses_count"`
	Moved          *AccountDTO `json:"moved,omitempty"`
	// AlsoKnownAs lists prior account URLs (the alias a Move requires),
	// letting crawlers walk a migration backwards.
	AlsoKnownAs []string `json:"also_known_as,omitempty"`
}

// StatusDTO mirrors the Mastodon status entity.
type StatusDTO struct {
	ID        string     `json:"id"`
	CreatedAt string     `json:"created_at"`
	Content   string     `json:"content"`
	URL       string     `json:"url"`
	Account   AccountDTO `json:"account"`
}

// ActivityDTO is one weekly bucket of /api/v1/instance/activity. Counts
// are strings, exactly like Mastodon's API.
type ActivityDTO struct {
	Week          string `json:"week"`
	Statuses      string `json:"statuses"`
	Logins        string `json:"logins"`
	Registrations string `json:"registrations"`
}

// InstanceDTO is the /api/v1/instance payload subset.
type InstanceDTO struct {
	URI         string `json:"uri"`
	Title       string `json:"title"`
	Description string `json:"short_description"`
	Stats       struct {
		UserCount   int `json:"user_count"`
		StatusCount int `json:"status_count"`
		DomainCount int `json:"domain_count"`
	} `json:"stats"`
}

const timeLayout = time.RFC3339

// Handler serves all instances, dispatching on the request Host.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/instance", s.withInstance(s.handleInstance))
	mux.HandleFunc("GET /api/v1/instance/activity", s.withInstance(s.handleActivity))
	mux.HandleFunc("GET /api/v1/accounts/lookup", s.withInstance(s.handleLookup))
	mux.HandleFunc("GET /api/v1/accounts/{id}", s.withInstance(s.handleAccount))
	mux.HandleFunc("GET /api/v1/accounts/{id}/statuses", s.withInstance(s.handleStatuses))
	mux.HandleFunc("GET /api/v1/accounts/{id}/following", s.withInstance(s.handleFollowing))
	mux.HandleFunc("GET /api/v1/timelines/public", s.withInstance(s.handleTimeline))
	return mux
}

type instHandler func(w http.ResponseWriter, r *http.Request, st *instanceState)

// withInstance resolves the Host header to an instance and applies rate
// limiting.
func (s *Service) withInstance(h instHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		host := strings.ToLower(r.Host)
		if i := strings.LastIndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		st, ok := s.byHost[host]
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown instance " + host})
			return
		}
		if !s.allow(host) {
			w.Header().Set("X-RateLimit-Remaining", "0")
			w.Header().Set("X-RateLimit-Reset", s.clock()().Add(s.window).UTC().Format(timeLayout))
			w.Header().Set("Retry-After", strconv.Itoa(int(s.window.Seconds())))
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "Too many requests"})
			return
		}
		h(w, r, st)
	}
}

func (s *Service) allow(host string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.limit <= 0 {
		return true
	}
	b := s.buckets[host]
	now := s.now()
	if b == nil || now.Sub(b.start) >= s.window {
		b = &bucket{start: now}
		s.buckets[host] = b
	}
	if b.count >= s.limit {
		return false
	}
	b.count++
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// accountDTO renders an account, following moved pointers one level.
func (s *Service) accountDTO(acc *Account, withMoved bool) AccountDTO {
	u := acc.User
	domain := s.w.Instances[acc.Instance].Domain
	dto := AccountDTO{
		ID:          acc.LocalID,
		Username:    u.MastodonUsername,
		Acct:        u.MastodonUsername,
		DisplayName: u.DisplayName,
		Note:        "<p>" + html.EscapeString(fmt.Sprintf("%s — on the fediverse since %s", u.DisplayName, acc.CreatedAt.Format("Jan 2006"))) + "</p>",
		URL:         "https://" + domain + "/@" + u.MastodonUsername,
		CreatedAt:   acc.CreatedAt.UTC().Format(timeLayout),
	}
	dto.FollowersCount = len(u.MastodonFollowers) + u.NativeFollowers
	dto.FollowingCount = len(u.MastodonFollowees) + u.NativeFollowees
	dto.StatusesCount = len(s.w.StatusesByUser[u.ID])
	if withMoved && acc.MovedTo != nil {
		moved := s.accountDTO(acc.MovedTo, false)
		dto.Moved = &moved
	}
	if acc.MovedFrom != nil {
		fromDomain := s.w.Instances[acc.MovedFrom.Instance].Domain
		dto.AlsoKnownAs = append(dto.AlsoKnownAs,
			"https://"+fromDomain+"/@"+acc.MovedFrom.User.MastodonUsername)
	}
	return dto
}

// remoteAcct renders the acct field as seen from viewing instance:
// "user" for locals, "user@domain" for remotes.
func remoteAcct(dto *AccountDTO, accountInst, viewingInst int, domain string) {
	if accountInst != viewingInst {
		dto.Acct = dto.Username + "@" + domain
	}
}

func (s *Service) handleInstance(w http.ResponseWriter, _ *http.Request, st *instanceState) {
	migrantsHere := 0
	for _, acc := range st.byUsername {
		if acc.MovedTo == nil {
			migrantsHere++
		}
	}
	dto := InstanceDTO{
		URI:         st.inst.Domain,
		Title:       st.inst.Domain,
		Description: fmt.Sprintf("a %s mastodon server", st.inst.Category),
	}
	dto.Stats.UserCount = st.inst.TotalUsers(migrantsHere)
	dto.Stats.StatusCount = len(st.localStatuses) + st.inst.NativeUsers*40
	dto.Stats.DomainCount = 1 + len(s.states)/2
	writeJSON(w, http.StatusOK, dto)
}

func (s *Service) handleActivity(w http.ResponseWriter, _ *http.Request, st *instanceState) {
	series := s.w.Activity[st.inst.ID]
	// Mastodon returns the last 12 weeks, most recent first.
	out := make([]ActivityDTO, 0, len(series))
	for i := len(series) - 1; i >= 0; i-- {
		wk := series[i]
		out = append(out, ActivityDTO{
			Week:          strconv.FormatInt(wk.WeekStart.Unix(), 10),
			Statuses:      strconv.Itoa(wk.Statuses),
			Logins:        strconv.Itoa(wk.Logins),
			Registrations: strconv.Itoa(wk.Registrations),
		})
		if len(out) == 12 {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleLookup(w http.ResponseWriter, r *http.Request, st *instanceState) {
	acct := strings.ToLower(strings.TrimPrefix(r.URL.Query().Get("acct"), "@"))
	if i := strings.IndexByte(acct, '@'); i >= 0 {
		// user@domain form: only resolvable locally if domain matches.
		if acct[i+1:] != strings.ToLower(st.inst.Domain) {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "Record not found"})
			return
		}
		acct = acct[:i]
	}
	acc, ok := st.byUsername[acct]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "Record not found"})
		return
	}
	writeJSON(w, http.StatusOK, s.accountDTO(acc, true))
}

func (s *Service) handleAccount(w http.ResponseWriter, r *http.Request, st *instanceState) {
	acc, ok := st.byID[r.PathValue("id")]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "Record not found"})
		return
	}
	writeJSON(w, http.StatusOK, s.accountDTO(acc, true))
}

func (s *Service) handleStatuses(w http.ResponseWriter, r *http.Request, st *instanceState) {
	acc, ok := st.byID[r.PathValue("id")]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "Record not found"})
		return
	}
	qs := r.URL.Query()
	limit := clampLimit(qs.Get("limit"), 20, 40)
	var maxID uint64 = ^uint64(0)
	if v := qs.Get("max_id"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid max_id"})
			return
		}
		maxID = id
	}
	// Statuses by this user on THIS instance, newest first.
	all := s.w.StatusesByUser[acc.User.ID]
	out := []StatusDTO{}
	for i := len(all) - 1; i >= 0 && len(out) < limit; i-- {
		status := &all[i]
		if status.InstanceID != acc.Instance {
			continue
		}
		if uint64(status.ID) >= maxID {
			continue
		}
		out = append(out, s.statusDTO(status, acc))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) statusDTO(status *world.Status, acc *Account) StatusDTO {
	domain := s.w.Instances[status.InstanceID].Domain
	return StatusDTO{
		ID:        status.ID.String(),
		CreatedAt: status.Time.UTC().Format(timeLayout),
		Content:   "<p>" + html.EscapeString(status.Text) + "</p>",
		URL:       "https://" + domain + "/@" + acc.User.MastodonUsername + "/" + status.ID.String(),
		Account:   s.accountDTO(acc, false),
	}
}

func (s *Service) handleFollowing(w http.ResponseWriter, r *http.Request, st *instanceState) {
	acc, ok := st.byID[r.PathValue("id")]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "Record not found"})
		return
	}
	qs := r.URL.Query()
	limit := clampLimit(qs.Get("limit"), 40, 80)
	offset := 0
	if v := qs.Get("max_id"); v != "" {
		// We use max_id as a plain offset cursor for simplicity; Mastodon
		// uses opaque Link headers, which the client treats as opaque
		// anyway.
		o, err := strconv.Atoi(v)
		if err != nil || o < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid max_id"})
			return
		}
		offset = o
	}
	followees := acc.User.MastodonFollowees
	out := []AccountDTO{}
	end := offset + limit
	for i := offset; i < len(followees) && i < end; i++ {
		fu := s.w.Users[followees[i]]
		fInst := fu.FinalInstance()
		fAcc := s.accounts[[2]int{fInst, fu.ID}]
		if fAcc == nil {
			continue
		}
		dto := s.accountDTO(fAcc, false)
		remoteAcct(&dto, fInst, acc.Instance, s.w.Instances[fInst].Domain)
		out = append(out, dto)
	}
	if end < len(followees) {
		w.Header().Set("Link", fmt.Sprintf(`<https://%s/api/v1/accounts/%s/following?max_id=%d>; rel="next"`, st.inst.Domain, acc.LocalID, end))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleTimeline(w http.ResponseWriter, r *http.Request, st *instanceState) {
	qs := r.URL.Query()
	localOnly := qs.Get("local") == "true"
	limit := clampLimit(qs.Get("limit"), 20, 40)
	var maxID uint64 = ^uint64(0)
	if v := qs.Get("max_id"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid max_id"})
			return
		}
		maxID = id
	}
	out := []StatusDTO{}
	collect := func(refs []statusRef) {
		for i := len(refs) - 1; i >= 0 && len(out) < limit; i-- {
			status := s.status(refs[i])
			if uint64(status.ID) >= maxID {
				continue
			}
			owner := s.w.Users[status.UserID]
			acc := s.accounts[[2]int{status.InstanceID, owner.ID}]
			if acc == nil {
				continue
			}
			dto := s.statusDTO(status, acc)
			remoteAcct(&dto.Account, status.InstanceID, st.inst.ID, s.w.Instances[status.InstanceID].Domain)
			out = append(out, dto)
		}
	}
	if localOnly {
		collect(st.localStatuses)
	} else {
		// Federated view: merge local + subscribed remote, newest first.
		merged := make([]statusRef, 0, len(st.localStatuses)+len(st.federated))
		merged = append(merged, st.localStatuses...)
		merged = append(merged, st.federated...)
		sortRefs(s, merged)
		collect(merged)
	}
	writeJSON(w, http.StatusOK, out)
}

func sortRefs(s *Service, refs []statusRef) {
	sortSlice := func(a, b statusRef) bool {
		sa, sb := s.status(a), s.status(b)
		if !sa.Time.Equal(sb.Time) {
			return sa.Time.Before(sb.Time)
		}
		return sa.ID < sb.ID
	}
	sort.SliceStable(refs, func(i, j int) bool { return sortSlice(refs[i], refs[j]) })
}

func clampLimit(v string, def, max int) int {
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

// WeeksCovered reports the study weeks the activity endpoint spans, a
// convenience for tests and the crawler's sanity checks.
func WeeksCovered() int {
	return vclock.Week(vclock.StudyEnd) - vclock.Week(vclock.StudyStart) + 1
}
