// Package fediverse simulates the federated Mastodon universe the
// paper crawled (§2, §3):
//
//   - one HTTP server per instance (dispatched by Host), each exposing
//     the Mastodon endpoints the crawl used: instance info, the weekly
//     activity endpoint, account lookup, account statuses and account
//     following, plus public timelines (local and federated)
//   - federation semantics: users registered on one instance follow
//     users on another; the local instance subscribes on their behalf, so
//     remote statuses appear in the federated timeline (§2)
//   - account moves: a user who switches instance leaves behind a
//     record pointing at the new account, which is how instance switching
//     (§5.3) is observable to a crawler
//   - the operational failure the paper hit: whole instances down at
//     crawl time (handled at the network fabric layer; see RegisterAll)
//
// Counts returned by the activity endpoint are JSON strings, matching
// Mastodon's actual (string-typed) payloads — a detail that bites every
// real fediverse crawler and is therefore worth reproducing.
package fediverse

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flock/internal/memnet"
	"flock/internal/vclock"
	"flock/internal/world"
)

// Account is one Mastodon account: a migrant on a particular instance. A
// user who switched instances has two Accounts, the first marked moved.
type Account struct {
	LocalID  string
	User     *world.User
	Instance int
	// MovedTo points at the user's account on the next instance (nil
	// unless this account was abandoned in a switch).
	MovedTo *Account
	// MovedFrom points back at the abandoned account (Mastodon's
	// also_known_as alias, which a Move requires).
	MovedFrom *Account
	// CreatedAt is the account registration time on this instance.
	CreatedAt time.Time
}

// Acct returns the local acct name (username).
func (a *Account) Acct() string { return a.User.MastodonUsername }

// instanceState is the serving state of one instance.
type instanceState struct {
	inst       *world.Instance
	byUsername map[string]*Account
	byID       map[string]*Account
	// localStatuses are statuses posted on this instance, time-ascending
	// (positions into the owning user's StatusesByUser slice).
	localStatuses []statusRef
	// federated are remote statuses subscribed through local follows.
	federated []statusRef
}

type statusRef struct {
	UserID int
	Idx    int
}

// Service owns all instance states and the shared handler.
type Service struct {
	w      *world.World
	states []*instanceState
	byHost map[string]*instanceState
	// accounts indexed by (instance, user) for cross-linking.
	accounts map[[2]int]*Account

	mu      sync.Mutex
	buckets map[string]*bucket
	limit   int // requests per window per instance (0 = off)
	window  time.Duration
	now     vclock.NowFunc
}

type bucket struct {
	start time.Time
	count int
}

// New builds the serving state from the world.
func New(w *world.World) *Service {
	s := &Service{
		w:        w,
		byHost:   make(map[string]*instanceState),
		accounts: make(map[[2]int]*Account),
		buckets:  make(map[string]*bucket),
		window:   5 * time.Minute,
		now:      vclock.Wall,
	}
	for _, inst := range w.Instances {
		st := &instanceState{
			inst:       inst,
			byUsername: make(map[string]*Account),
			byID:       make(map[string]*Account),
		}
		s.states = append(s.states, st)
		if inst.Domain != "" {
			s.byHost[strings.ToLower(inst.Domain)] = st
		}
	}

	// Register accounts: first instance always; second instance if the
	// user switched, with the first account marked moved.
	nextID := make([]int, len(w.Instances))
	register := func(user *world.User, instID int, createdAt time.Time) *Account {
		st := s.states[instID]
		nextID[instID]++
		acc := &Account{
			LocalID:   fmt.Sprintf("%d", 108000000000000000+int64(instID)*1000000+int64(nextID[instID])),
			User:      user,
			Instance:  instID,
			CreatedAt: createdAt,
		}
		st.byUsername[strings.ToLower(user.MastodonUsername)] = acc
		st.byID[acc.LocalID] = acc
		s.accounts[[2]int{instID, user.ID}] = acc
		return acc
	}
	for _, uIdx := range w.Migrants {
		user := w.Users[uIdx]
		first := register(user, user.FirstInstance, user.MastodonCreatedAt)
		if user.SecondInstance >= 0 {
			second := register(user, user.SecondInstance, user.SwitchedAt)
			first.MovedTo = second
			second.MovedFrom = first
		}
	}

	// Distribute statuses to their instances.
	for _, uIdx := range w.Migrants {
		for i, status := range w.StatusesByUser[uIdx] {
			s.states[status.InstanceID].localStatuses = append(
				s.states[status.InstanceID].localStatuses, statusRef{UserID: uIdx, Idx: i})
		}
	}
	for _, st := range s.states {
		sort.Slice(st.localStatuses, func(a, b int) bool {
			sa, sb := s.status(st.localStatuses[a]), s.status(st.localStatuses[b])
			if !sa.Time.Equal(sb.Time) {
				return sa.Time.Before(sb.Time)
			}
			return sa.ID < sb.ID
		})
	}

	// Federation: an instance subscribes to every remote user a local
	// account follows; the remote user's statuses flow to the federated
	// timeline (§2's "union of remote statuses retrieved by all users on
	// the instance").
	for i := range s.states {
		s.buildFederated(i)
	}
	return s
}

func (s *Service) status(ref statusRef) *world.Status {
	return &s.w.StatusesByUser[ref.UserID][ref.Idx]
}

// buildFederated computes instance i's federated timeline.
func (s *Service) buildFederated(i int) {
	st := s.states[i]
	subscribed := map[int]bool{} // remote world-user IDs
	for _, acc := range st.byUsername {
		if acc.MovedTo != nil {
			continue // moved-away accounts no longer pull follows here
		}
		for _, f := range acc.User.MastodonFollowees {
			fu := s.w.Users[f]
			if fu.FinalInstance() != i {
				subscribed[f] = true
			}
		}
	}
	for f := range subscribed {
		fu := s.w.Users[f]
		for idx, status := range s.w.StatusesByUser[f] {
			_ = fu
			if status.InstanceID != i {
				st.federated = append(st.federated, statusRef{UserID: f, Idx: idx})
			}
		}
	}
	sort.Slice(st.federated, func(a, b int) bool {
		sa, sb := s.status(st.federated[a]), s.status(st.federated[b])
		if !sa.Time.Equal(sb.Time) {
			return sa.Time.Before(sb.Time)
		}
		return sa.ID < sb.ID
	})
}

// SetClock replaces the service's clock (rate-limit windows and reset
// headers). nil restores the wall clock.
func (s *Service) SetClock(now vclock.NowFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now == nil {
		now = vclock.Wall
	}
	s.now = now
}

// clock reads the service clock under the mutex.
func (s *Service) clock() vclock.NowFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// SetRateLimit enables per-instance rate limiting: n requests per window.
func (s *Service) SetRateLimit(n int, window time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
	if window > 0 {
		s.window = window
	}
}

// Domains returns all served (claimed) instance domains.
func (s *Service) Domains() []string {
	out := make([]string, 0, len(s.byHost))
	for d := range s.byHost {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// AccountFor returns the account of a user on an instance (nil if none).
func (s *Service) AccountFor(instID, userID int) *Account {
	return s.accounts[[2]int{instID, userID}]
}

// RegisterAll serves every instance on the fabric. All instances start
// reachable; apply the world's outages with ApplyOutages when the
// simulated crawl reaches the timeline phase (the paper's instance
// deaths happened between discovery and timeline crawl, §3.2). It
// returns a stop function.
func (s *Service) RegisterAll(ctx context.Context, f *memnet.Fabric) (stop func(), err error) {
	handler := s.Handler()
	var stops []func()
	for _, st := range s.states {
		if st.inst.Domain == "" {
			continue
		}
		sf, err := f.Serve(ctx, st.inst.Domain, handler)
		if err != nil {
			for _, fn := range stops {
				fn()
			}
			return nil, err
		}
		stops = append(stops, sf)
	}
	return func() {
		for _, fn := range stops {
			fn()
		}
	}, nil
}

// ApplyOutages takes the world's down instances offline on the fabric.
func (s *Service) ApplyOutages(f *memnet.Fabric) {
	for _, st := range s.states {
		if st.inst.Down && st.inst.Domain != "" {
			f.SetDown(st.inst.Domain, true)
		}
	}
}
