package fediverse

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"flock/internal/memnet"
	"flock/internal/vclock"
	"flock/internal/world"
)

var (
	fw   *world.World
	fsvc *Service
	fab  *memnet.Fabric
	cli  *http.Client
)

func setup(t testing.TB) {
	if fsvc != nil {
		return
	}
	cfg := world.DefaultConfig(300)
	cfg.Seed = 11
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw = w
	fsvc = New(w)
	fab = memnet.NewFabric()
	if _, err := fsvc.RegisterAll(context.Background(), fab); err != nil {
		t.Fatal(err)
	}
	cli = fab.Client()
}

func get(t testing.TB, u string, out any) *http.Response {
	resp, err := cli.Get(u)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == 200 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", u, err, body)
		}
	}
	return resp
}

// liveMigrant finds a migrant whose final instance is up.
func liveMigrant(t testing.TB, pred func(*world.User) bool) *world.User {
	for _, idx := range fw.Migrants {
		u := fw.Users[idx]
		if fw.Instances[u.FinalInstance()].Down {
			continue
		}
		if pred(u) {
			return u
		}
	}
	t.Skip("no live migrant matches")
	return nil
}

func TestInstanceInfo(t *testing.T) {
	setup(t)
	var dto InstanceDTO
	get(t, "https://mastodon.social/api/v1/instance", &dto)
	if dto.URI != "mastodon.social" {
		t.Fatalf("uri %q", dto.URI)
	}
	if dto.Stats.UserCount <= 0 {
		t.Fatal("no users")
	}
}

func TestUnknownHost404(t *testing.T) {
	setup(t)
	stop, err := fab.Serve(context.Background(), "ghost.example", fsvc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp := get(t, "https://ghost.example/api/v1/instance", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestActivityEndpoint(t *testing.T) {
	setup(t)
	var acts []ActivityDTO
	get(t, "https://mastodon.social/api/v1/instance/activity", &acts)
	if len(acts) < 8 {
		t.Fatalf("%d weeks", len(acts))
	}
	// Counts are strings, weeks are unix seconds, newest first.
	prev := int64(1 << 62)
	for _, a := range acts {
		wk, err := strconv.ParseInt(a.Week, 10, 64)
		if err != nil {
			t.Fatalf("week %q not unix: %v", a.Week, err)
		}
		if wk >= prev {
			t.Fatal("weeks not newest-first")
		}
		prev = wk
		if _, err := strconv.Atoi(a.Statuses); err != nil {
			t.Fatalf("statuses %q not numeric string", a.Statuses)
		}
	}
}

func TestAccountLookup(t *testing.T) {
	setup(t)
	u := liveMigrant(t, func(u *world.User) bool { return u.SecondInstance < 0 })
	domain := fw.Instances[u.FirstInstance].Domain
	var acc AccountDTO
	get(t, "https://"+domain+"/api/v1/accounts/lookup?acct="+u.MastodonUsername, &acc)
	if acc.Username != u.MastodonUsername {
		t.Fatalf("username %q", acc.Username)
	}
	if !strings.Contains(acc.URL, domain) {
		t.Fatalf("url %q", acc.URL)
	}
	if acc.StatusesCount != len(fw.StatusesByUser[u.ID]) {
		t.Fatalf("statuses count %d want %d", acc.StatusesCount, len(fw.StatusesByUser[u.ID]))
	}
}

func TestAccountLookupUnknown(t *testing.T) {
	setup(t)
	resp := get(t, "https://mastodon.social/api/v1/accounts/lookup?acct=definitely_not_a_user", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMovedAccount(t *testing.T) {
	setup(t)
	var switcher *world.User
	for _, idx := range fw.Migrants {
		u := fw.Users[idx]
		if u.SecondInstance >= 0 &&
			!fw.Instances[u.FirstInstance].Down && !fw.Instances[u.SecondInstance].Down {
			switcher = u
			break
		}
	}
	if switcher == nil {
		t.Skip("no live switcher in world")
	}
	firstDomain := fw.Instances[switcher.FirstInstance].Domain
	var acc AccountDTO
	get(t, "https://"+firstDomain+"/api/v1/accounts/lookup?acct="+switcher.MastodonUsername, &acc)
	if acc.Moved == nil {
		t.Fatal("switched account lacks moved record")
	}
	secondDomain := fw.Instances[switcher.SecondInstance].Domain
	if !strings.Contains(acc.Moved.URL, secondDomain) {
		t.Fatalf("moved points at %q, want %q", acc.Moved.URL, secondDomain)
	}
}

func TestStatusesEndpoint(t *testing.T) {
	setup(t)
	u := liveMigrant(t, func(u *world.User) bool {
		return !u.Silent && u.SecondInstance < 0 && len(fw.StatusesByUser[u.ID]) > 5
	})
	domain := fw.Instances[u.FirstInstance].Domain
	var acc AccountDTO
	get(t, "https://"+domain+"/api/v1/accounts/lookup?acct="+u.MastodonUsername, &acc)
	var sts []StatusDTO
	get(t, "https://"+domain+"/api/v1/accounts/"+acc.ID+"/statuses?limit=10", &sts)
	if len(sts) == 0 {
		t.Fatal("no statuses")
	}
	for _, s := range sts {
		if !strings.HasPrefix(s.Content, "<p>") {
			t.Fatalf("content not HTML: %q", s.Content)
		}
		if s.Account.ID != acc.ID {
			t.Fatal("status account mismatch")
		}
	}
}

func TestStatusesPaginationDrains(t *testing.T) {
	setup(t)
	u := liveMigrant(t, func(u *world.User) bool {
		return !u.Silent && u.SecondInstance < 0 && len(fw.StatusesByUser[u.ID]) > 45
	})
	domain := fw.Instances[u.FirstInstance].Domain
	var acc AccountDTO
	get(t, "https://"+domain+"/api/v1/accounts/lookup?acct="+u.MastodonUsername, &acc)

	seen := map[string]bool{}
	maxID := ""
	for {
		u := "https://" + domain + "/api/v1/accounts/" + acc.ID + "/statuses?limit=40"
		if maxID != "" {
			u += "&max_id=" + maxID
		}
		var page []StatusDTO
		get(t, u, &page)
		if len(page) == 0 {
			break
		}
		for _, s := range page {
			if seen[s.ID] {
				t.Fatal("duplicate status across pages")
			}
			seen[s.ID] = true
		}
		maxID = page[len(page)-1].ID
	}
	if len(seen) != len(fw.StatusesByUser[u.ID]) {
		t.Fatalf("drained %d statuses, world has %d", len(seen), len(fw.StatusesByUser[u.ID]))
	}
}

func TestFollowingEndpoint(t *testing.T) {
	setup(t)
	u := liveMigrant(t, func(u *world.User) bool {
		return u.SecondInstance < 0 && len(u.MastodonFollowees) > 3
	})
	domain := fw.Instances[u.FirstInstance].Domain
	var acc AccountDTO
	get(t, "https://"+domain+"/api/v1/accounts/lookup?acct="+u.MastodonUsername, &acc)
	var accounts []AccountDTO
	get(t, "https://"+domain+"/api/v1/accounts/"+acc.ID+"/following?limit=80", &accounts)
	if len(accounts) == 0 {
		t.Fatal("no followees returned")
	}
	// Remote accounts must carry user@domain acct forms.
	sawRemote := false
	for _, a := range accounts {
		if strings.Contains(a.Acct, "@") {
			sawRemote = true
			parts := strings.SplitN(a.Acct, "@", 2)
			if parts[1] == domain {
				t.Fatalf("local account rendered as remote: %s", a.Acct)
			}
		}
	}
	_ = sawRemote // remote follows are likely but not guaranteed for this user
}

func TestFollowingPagination(t *testing.T) {
	setup(t)
	u := liveMigrant(t, func(u *world.User) bool {
		return u.SecondInstance < 0 && len(u.MastodonFollowees) > 12
	})
	domain := fw.Instances[u.FirstInstance].Domain
	var acc AccountDTO
	get(t, "https://"+domain+"/api/v1/accounts/lookup?acct="+u.MastodonUsername, &acc)
	total := 0
	offset := 0
	for {
		var page []AccountDTO
		resp := get(t, fmt.Sprintf("https://%s/api/v1/accounts/%s/following?limit=5&max_id=%d", domain, acc.ID, offset), &page)
		total += len(page)
		link := resp.Header.Get("Link")
		if link == "" {
			break
		}
		offset += 5
		if offset > 10000 {
			t.Fatal("pagination runaway")
		}
	}
	// The served list only contains mapped migrants (natives are
	// aggregate counts), so compare against MastodonFollowees.
	if total != len(u.MastodonFollowees) {
		t.Fatalf("paged following = %d, want %d", total, len(u.MastodonFollowees))
	}
}

func TestLocalTimeline(t *testing.T) {
	setup(t)
	var sts []StatusDTO
	get(t, "https://mastodon.social/api/v1/timelines/public?local=true&limit=40", &sts)
	if len(sts) == 0 {
		t.Skip("no local statuses on mastodon.social")
	}
	for _, s := range sts {
		if strings.Contains(s.Account.Acct, "@") {
			t.Fatalf("remote account %q in local timeline", s.Account.Acct)
		}
	}
}

func TestFederatedTimelineIncludesRemote(t *testing.T) {
	setup(t)
	var sts []StatusDTO
	get(t, "https://mastodon.social/api/v1/timelines/public?limit=40", &sts)
	if len(sts) == 0 {
		t.Skip("empty federated timeline")
	}
	remote := 0
	for _, s := range sts {
		if strings.Contains(s.Account.Acct, "@") {
			remote++
		}
	}
	if remote == 0 {
		t.Log("federated timeline had no remote statuses in top 40 (possible but unusual)")
	}
}

func TestDownInstanceUnreachable(t *testing.T) {
	// Use a dedicated fabric: ApplyOutages mutates reachability and the
	// shared test fabric must stay fully up for other tests.
	w, err := world.Generate(world.DefaultConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	s := New(w)
	f := memnet.NewFabric()
	defer f.Close()
	if _, err := s.RegisterAll(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	var down *world.Instance
	for _, inst := range w.Instances {
		if inst.Down && inst.Domain != "" {
			down = inst
			break
		}
	}
	if down == nil {
		t.Skip("no down instance")
	}
	c := f.Client()
	// Reachable before outages are applied.
	resp, err := c.Get("https://" + down.Domain + "/api/v1/instance")
	if err != nil {
		t.Fatalf("instance unreachable before outages: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.ApplyOutages(f)
	// Drop pooled keep-alive connections: outages only affect new dials,
	// exactly like real TCP.
	if tr, ok := c.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	if _, err := c.Get("https://" + down.Domain + "/api/v1/instance"); err == nil {
		t.Fatal("down instance served a response after ApplyOutages")
	}
}

func TestRateLimit(t *testing.T) {
	w, err := world.Generate(world.DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	s := New(w)
	s.SetRateLimit(3, time.Minute)
	f := memnet.NewFabric()
	defer f.Close()
	if _, err := s.RegisterAll(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	c := f.Client()
	var last *http.Response
	for i := 0; i < 4; i++ {
		resp, err := c.Get("https://mastodon.social/api/v1/instance")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		last = resp
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("4th request status %d, want 429", last.StatusCode)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
}

func TestSwitcherStatusesSplitAcrossInstances(t *testing.T) {
	setup(t)
	var switcher *world.User
	for _, idx := range fw.Migrants {
		u := fw.Users[idx]
		if u.SecondInstance < 0 || u.Silent {
			continue
		}
		if fw.Instances[u.FirstInstance].Down || fw.Instances[u.SecondInstance].Down {
			continue
		}
		// Needs posts on both sides of the switch.
		var before, after bool
		for _, s := range fw.StatusesByUser[u.ID] {
			if s.InstanceID == u.FirstInstance {
				before = true
			}
			if s.InstanceID == u.SecondInstance {
				after = true
			}
		}
		if before && after {
			switcher = u
			break
		}
	}
	if switcher == nil {
		t.Skip("no suitable switcher")
	}
	count := func(instID int) int {
		domain := fw.Instances[instID].Domain
		var acc AccountDTO
		get(t, "https://"+domain+"/api/v1/accounts/lookup?acct="+switcher.MastodonUsername, &acc)
		n := 0
		maxID := ""
		for {
			u := "https://" + domain + "/api/v1/accounts/" + acc.ID + "/statuses?limit=40"
			if maxID != "" {
				u += "&max_id=" + maxID
			}
			var page []StatusDTO
			get(t, u, &page)
			if len(page) == 0 {
				return n
			}
			n += len(page)
			maxID = page[len(page)-1].ID
		}
	}
	n1, n2 := count(switcher.FirstInstance), count(switcher.SecondInstance)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("statuses not split: first=%d second=%d", n1, n2)
	}
	if n1+n2 != len(fw.StatusesByUser[switcher.ID]) {
		t.Fatalf("split %d+%d != %d", n1, n2, len(fw.StatusesByUser[switcher.ID]))
	}
}

func TestWeeksCovered(t *testing.T) {
	if WeeksCovered() < 8 {
		t.Fatalf("WeeksCovered = %d", WeeksCovered())
	}
	_ = vclock.StudyDays
}
