// Package parallel provides the repo's deterministic map-reduce kernels:
// bounded-worker fan-out primitives whose outputs are bit-identical to a
// serial execution, for any worker count, on every run.
//
// # The determinism contract
//
// Every combinator guarantees that its result is a pure function of
// (n, the per-index callbacks) — never of the worker count, the
// scheduler's interleaving, or which goroutine happened to process which
// index. The guarantee rests on three rules:
//
//  1. MapSlice writes each index's result into its own pre-allocated
//     slot, so output order is index order regardless of completion
//     order. Callers that fold the slots afterwards do so serially in
//     index order, which keeps floating-point accumulation order fixed.
//
//  2. ReduceSharded splits [0, n) into shards whose boundaries depend
//     only on n (never on the worker count), processes each shard
//     serially in ascending index order, and merges the per-shard
//     partials in ascending shard order after every shard completes.
//     Even a non-commutative merge (floating-point sums, ordered
//     appends) therefore sees the exact same operand sequence at any
//     parallelism level.
//
//  3. ForEach requires its body to touch only per-index state (slot
//     writes, atomics on commutative integer counters); it makes no
//     ordering promise between indexes, only completion-before-return.
//
// Scheduling is dynamic (workers pull chunks off a shared atomic
// cursor), so a skewed workload — e.g. the quadratic per-user loop of
// the Fig. 14 similarity analysis — still load-balances without
// sacrificing the contract: dynamic assignment decides only *who*
// computes an index, never *where* its result lands.
//
// Worker counts default to GOMAXPROCS and are overridable per call
// (tests pin 1, 2, 8 to prove the byte-identical property; benchmarks
// sweep them for the ablation curves). Workers(0) resolves the default.
//
// All concurrency downstream of the crawl flows through these kernels;
// the fedilint `goroutine` analyzer enforces that naked `go` statements
// stay confined to this package and the transport layers (see LINT.md).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean
// GOMAXPROCS, anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// shardBounds returns the half-open index ranges ReduceSharded uses.
// Boundaries are a pure function of n — NEVER of the worker count — so
// merge operand grouping is identical at every parallelism level. Shards
// target shardSize indexes; the count is capped so partial-merge
// overhead stays bounded on huge inputs.
func shardBounds(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	const shardSize = 64
	const maxShards = 1024
	shards := (n + shardSize - 1) / shardSize
	if shards > maxShards {
		shards = maxShards
	}
	out := make([][2]int, 0, shards)
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// run executes tasks 0..tasks-1 on a bounded pool, pulling task indexes
// off a shared cursor. fn must confine itself to per-task state. A panic
// in any worker is captured and re-raised on the caller's goroutine once
// every worker has drained, so no work is silently lost mid-flight.
func run(workers, tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			fn(t)
		}
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		panicO sync.Once
		panicV any
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicO.Do(func() { panicV = r })
				// Park the cursor past the end so siblings drain fast.
				cursor.Store(int64(tasks))
			}
		}()
		for {
			t := int(cursor.Add(1)) - 1
			if t >= tasks {
				return
			}
			fn(t)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("parallel: worker panicked: %v", panicV))
	}
}

// ForEach calls fn(i) for every i in [0, n) on a pool of at most workers
// goroutines (Workers semantics). It returns once every call has
// completed. fn must only touch state owned by its index.
func ForEach(workers, n int, fn func(i int)) {
	run(workers, n, fn)
}

// MapSlice evaluates fn over [0, n) and returns the results in index
// order: out[i] = fn(i) regardless of scheduling. This is the kernel for
// per-item heavy loops whose per-item results are folded serially
// afterwards (keeping float accumulation order fixed).
func MapSlice[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	run(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ReduceSharded folds [0, n) through per-shard partial accumulators.
// reduce processes one shard serially in ascending index order and
// returns its partial; merge combines two partials (left operand is the
// lower shard). Shard boundaries depend only on n, and partials merge in
// ascending shard order, so the operand sequence — and hence the result,
// even for non-commutative merges — is independent of the worker count.
// The zero value of A is returned when n <= 0.
func ReduceSharded[A any](workers, n int, reduce func(lo, hi int) A, merge func(a, b A) A) A {
	var zero A
	bounds := shardBounds(n)
	if len(bounds) == 0 {
		return zero
	}
	partials := make([]A, len(bounds))
	run(workers, len(bounds), func(s int) {
		partials[s] = reduce(bounds[s][0], bounds[s][1])
	})
	acc := partials[0]
	for s := 1; s < len(partials); s++ {
		acc = merge(acc, partials[s])
	}
	return acc
}
