package parallel

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

var workerSweep = []int{1, 2, 3, 4, 8, 16}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("default workers must be positive")
	}
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range workerSweep {
		const n = 1000
		seen := make([]atomic.Int32, n)
		ForEach(w, n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d visited %d times", w, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("called on empty range") })
	ForEach(4, -3, func(int) { t.Fatal("called on negative range") })
}

func TestMapSliceOrderPreserved(t *testing.T) {
	for _, w := range workerSweep {
		got := MapSlice(w, 257, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d slot %d = %d", w, i, v)
			}
		}
	}
}

func TestMapSliceEmpty(t *testing.T) {
	if out := MapSlice(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("empty map returned %v", out)
	}
}

// TestFloatFoldBitIdentical is the contract's core promise: folding
// MapSlice slots serially gives bit-identical floating-point sums at
// every worker count (the naive atomic/racy alternative would not).
func TestFloatFoldBitIdentical(t *testing.T) {
	const n = 4096
	item := func(i int) float64 { return math.Sin(float64(i)) * 1e-3 / (float64(i) + 0.1) }
	var want float64
	for i := 0; i < n; i++ {
		want += item(i)
	}
	for _, w := range workerSweep {
		slots := MapSlice(w, n, item)
		var got float64
		for _, v := range slots {
			got += v
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d sum %x != serial %x", w, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestReduceShardedNonCommutativeMerge proves shard boundaries and merge
// order are worker-independent even for an order-sensitive merge
// (string concatenation).
func TestReduceShardedNonCommutativeMerge(t *testing.T) {
	const n = 517
	reduce := func(lo, hi int) string {
		var b strings.Builder
		for i := lo; i < hi; i++ {
			b.WriteByte(byte('a' + i%26))
		}
		return b.String()
	}
	merge := func(a, b string) string { return a + b }
	want := reduce(0, n)
	for _, w := range workerSweep {
		if got := ReduceSharded(w, n, reduce, merge); got != want {
			t.Fatalf("workers=%d sharded concat differs from serial", w)
		}
	}
}

func TestReduceShardedFloatBitIdentical(t *testing.T) {
	const n = 3000
	reduce := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1 / (float64(i) + 1.5)
		}
		return s
	}
	merge := func(a, b float64) float64 { return a + b }
	want := ReduceSharded(1, n, reduce, merge)
	for _, w := range workerSweep {
		got := ReduceSharded(w, n, reduce, merge)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d sum differs in final bits", w)
		}
	}
}

func TestReduceShardedEmpty(t *testing.T) {
	got := ReduceSharded(4, 0,
		func(lo, hi int) int { t.Fatal("reduce called"); return 0 },
		func(a, b int) int { t.Fatal("merge called"); return 0 })
	if got != 0 {
		t.Fatalf("empty reduce = %d", got)
	}
}

func TestShardBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 1000, 64*1024 + 7} {
		bounds := shardBounds(n)
		next := 0
		for _, b := range bounds {
			if b[0] != next || b[1] <= b[0] {
				t.Fatalf("n=%d bad shard %v after %d", n, b, next)
			}
			next = b[1]
		}
		if next != n {
			t.Fatalf("n=%d shards cover %d", n, next)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic not propagated")
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestPanicPropagatesSerial(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("serial panic not propagated")
		}
	}()
	ForEach(1, 10, func(i int) { panic("boom") })
}

func BenchmarkForEach(b *testing.B) {
	work := func(i int) {
		s := 0.0
		for k := 0; k < 200; k++ {
			s += math.Sqrt(float64(i + k))
		}
		_ = s
	}
	for _, w := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers_4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForEach(w, 10000, work)
			}
		})
	}
}
