// Package graph implements the directed social ("follow") graph substrate.
//
// The paper's RQ2 is entirely about ego networks: what fraction of a
// user's Twitter followees migrated, migrated first, or chose the same
// instance (§5, Figs. 8 and 10). To study that, the synthetic world needs
// a graph with the salient structure of a real follow graph: heavy-tailed
// in-degree (preferential attachment), strong topical communities (users
// follow within their interest community far more than across), and
// reciprocity. graph provides a deterministic generator with those knobs
// plus the ego-network queries the analysis needs.
package graph

import (
	"fmt"
	"math"
	"sort"

	"flock/internal/parallel"
	"flock/internal/randx"
)

// Graph is a directed graph over nodes 0..N-1. Edge u->v means "u follows
// v". Adjacency is kept both ways so follower and followee queries are
// O(degree). After Compact, both directions live in CSR (compressed
// sparse row) layout: one flat edge array per direction with per-node
// offset views, so whole-graph scans walk contiguous memory instead of
// chasing one heap allocation per node.
type Graph struct {
	n    int
	out  [][]int32 // out[u] = sorted followees of u (view into csrOut when packed)
	in   [][]int32 // in[v] = sorted followers of v (view into csrIn when packed)
	outS []map[int32]struct{}
	// csrOut/csrIn back the adjacency views after Compact; nil while the
	// graph is still in per-node append mode.
	csrOut []int32
	csrIn  []int32
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{
		n:    n,
		out:  make([][]int32, n),
		in:   make([][]int32, n),
		outS: make([]map[int32]struct{}, n),
	}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts u->v if absent; self-loops are ignored. It reports
// whether the edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if g.outS[u] == nil {
		g.outS[u] = make(map[int32]struct{})
	}
	if _, dup := g.outS[u][int32(v)]; dup {
		return false
	}
	g.outS[u][int32(v)] = struct{}{}
	g.out[u] = append(g.out[u], int32(v))
	g.in[v] = append(g.in[v], int32(u))
	return true
}

// HasEdge reports whether u follows v.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || g.outS[u] == nil {
		return false
	}
	_, ok := g.outS[u][int32(v)]
	return ok
}

// Followees returns the nodes u follows. The returned slice must not be
// modified.
func (g *Graph) Followees(u int) []int32 { return g.out[u] }

// Followers returns the nodes following v. The returned slice must not be
// modified.
func (g *Graph) Followers(v int) []int32 { return g.in[v] }

// OutDegree returns len(Followees(u)).
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns len(Followers(v)).
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Edges returns the total edge count.
func (g *Graph) Edges() int {
	t := 0
	for _, adj := range g.out {
		t += len(adj)
	}
	return t
}

// SortAdjacency sorts all adjacency lists ascending and packs them into
// CSR layout, giving deterministic iteration order independent of
// insertion order. Equivalent to Compact(0).
func (g *Graph) SortAdjacency() { g.Compact(0) }

// Compact sorts every adjacency list ascending (fanning nodes out over
// workers; <= 0 means GOMAXPROCS) and repacks both directions into CSR
// layout. The per-node views keep their API: Followees/Followers return
// slices as before, now aliasing the flat arrays. Views are capped at
// their CSR segment, so a later AddEdge on a packed node reallocates
// that node's list instead of clobbering its neighbor's segment. The
// result is independent of the worker count: each node's list is sorted
// in isolation and lands at an offset determined only by degrees.
func (g *Graph) Compact(workers int) {
	pack := func(adj [][]int32) []int32 {
		total := 0
		for _, l := range adj {
			total += len(l)
		}
		flat := make([]int32, 0, total)
		for u, l := range adj {
			lo := len(flat)
			flat = append(flat, l...)
			adj[u] = flat[lo:len(flat):len(flat)]
		}
		return flat
	}
	g.csrOut = pack(g.out)
	g.csrIn = pack(g.in)
	parallel.ForEach(workers, g.n, func(u int) {
		l := g.out[u]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		l = g.in[u]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	})
}

// Metrics summarizes the graph's structure; every field is an integer
// count or a ratio of integer counts, so parallel computation is
// trivially deterministic.
type Metrics struct {
	Nodes int
	Edges int
	// ReciprocalEdges counts ordered pairs (u,v) where both u->v and
	// v->u exist (each mutual pair contributes 2).
	ReciprocalEdges int
	// Isolated counts nodes with neither followers nor followees.
	Isolated     int
	MaxOutDegree int
	MaxInDegree  int
	MeanOut      float64
}

// nodeMetric is the per-node slot of ComputeMetrics.
type nodeMetric struct {
	outDeg, inDeg, recip int
}

// ComputeMetrics scans every node's adjacency on a bounded worker pool
// (<= 0: GOMAXPROCS) and folds the per-node slots serially in node
// order, so the result is identical at any parallelism level.
func (g *Graph) ComputeMetrics(workers int) Metrics {
	slots := parallel.MapSlice(workers, g.n, func(u int) nodeMetric {
		m := nodeMetric{outDeg: len(g.out[u]), inDeg: len(g.in[u])}
		for _, v := range g.out[u] {
			if g.HasEdge(int(v), u) {
				m.recip++
			}
		}
		return m
	})
	mt := Metrics{Nodes: g.n}
	for _, m := range slots {
		mt.Edges += m.outDeg
		mt.ReciprocalEdges += m.recip
		if m.outDeg == 0 && m.inDeg == 0 {
			mt.Isolated++
		}
		if m.outDeg > mt.MaxOutDegree {
			mt.MaxOutDegree = m.outDeg
		}
		if m.inDeg > mt.MaxInDegree {
			mt.MaxInDegree = m.inDeg
		}
	}
	if g.n > 0 {
		mt.MeanOut = float64(mt.Edges) / float64(g.n)
	}
	return mt
}

// Config parameterizes the social graph generator.
type Config struct {
	// N is the number of nodes.
	N int
	// Communities is the number of topical communities (>=1). Nodes are
	// assigned round-robin-with-noise so community sizes are near-equal.
	Communities int
	// MeanOut is the target mean out-degree. Individual out-degrees are
	// drawn from a lognormal around this mean, giving the heavy tail the
	// paper's median-vs-mean gap implies.
	MeanOut float64
	// IntraBias is the probability a follow edge stays inside the
	// follower's community (the rest go anywhere, preferentially).
	IntraBias float64
	// Reciprocity is the probability that adding u->v also adds v->u.
	Reciprocity float64
}

// DefaultConfig mirrors observed microblogging structure: strong
// communities, mean out-degree in the hundreds when scaled.
func DefaultConfig(n int) Config {
	return Config{N: n, Communities: 12, MeanOut: 30, IntraBias: 0.8, Reciprocity: 0.25}
}

// Generate builds a graph per cfg, deterministically from rng. It also
// returns each node's community assignment.
func Generate(cfg Config, rng *randx.Source) (*Graph, []int, error) {
	if cfg.N <= 0 {
		return nil, nil, fmt.Errorf("graph: N must be positive, got %d", cfg.N)
	}
	if cfg.Communities < 1 {
		cfg.Communities = 1
	}
	if cfg.MeanOut <= 0 {
		cfg.MeanOut = 1
	}
	g := New(cfg.N)
	comm := make([]int, cfg.N)
	members := make([][]int, cfg.Communities)
	for i := 0; i < cfg.N; i++ {
		c := i % cfg.Communities
		// Small shuffle noise: 10% of nodes land in a random community,
		// so communities aren't perfectly striped.
		if rng.Bool(0.10) {
			c = rng.Intn(cfg.Communities)
		}
		comm[i] = c
		members[c] = append(members[c], i)
	}

	// Preferential attachment pool: nodes appear once plus once per
	// inbound edge, so popular nodes attract more follows. Seed with one
	// entry per node.
	prefPool := make([]int32, 0, cfg.N*4)
	for i := 0; i < cfg.N; i++ {
		prefPool = append(prefPool, int32(i))
	}
	// Per-community pools for intra-community attachment.
	commPool := make([][]int32, cfg.Communities)
	for c, ms := range members {
		for _, m := range ms {
			commPool[c] = append(commPool[c], int32(m))
		}
	}

	// Lognormal out-degrees calibrated so the mean is about MeanOut:
	// for lognormal, mean = exp(mu + sigma^2/2).
	sigma := 1.0
	mu := logMean(cfg.MeanOut) - sigma*sigma/2

	order := rng.Perm(cfg.N)
	for _, u := range order {
		target := int(rng.LogNormal(mu, sigma))
		if target < 1 {
			target = 1
		}
		if target > cfg.N-1 {
			target = cfg.N - 1
		}
		attempts := 0
		for g.OutDegree(u) < target && attempts < target*8 {
			attempts++
			var v int
			if rng.Bool(cfg.IntraBias) {
				pool := commPool[comm[u]]
				v = int(pool[rng.Intn(len(pool))])
			} else {
				v = int(prefPool[rng.Intn(len(prefPool))])
			}
			if !g.AddEdge(u, v) {
				continue
			}
			prefPool = append(prefPool, int32(v))
			commPool[comm[v]] = append(commPool[comm[v]], int32(v))
			if rng.Bool(cfg.Reciprocity) && g.AddEdge(v, u) {
				prefPool = append(prefPool, int32(u))
				commPool[comm[u]] = append(commPool[comm[u]], int32(u))
			}
		}
	}
	g.SortAdjacency()
	return g, comm, nil
}

// logMean guards log of small means.
func logMean(m float64) float64 {
	if m < 1 {
		m = 1
	}
	return math.Log(m)
}

// EgoStats summarizes a node's ego network against a predicate, the exact
// shape of the paper's Fig. 8 quantities.
type EgoStats struct {
	// Followees is the ego's out-degree.
	Followees int
	// Matching is how many followees satisfy the predicate.
	Matching int
}

// Fraction returns Matching/Followees (0 when the ego follows no one).
func (e EgoStats) Fraction() float64 {
	if e.Followees == 0 {
		return 0
	}
	return float64(e.Matching) / float64(e.Followees)
}

// Ego evaluates pred over u's followees.
func (g *Graph) Ego(u int, pred func(v int) bool) EgoStats {
	st := EgoStats{Followees: g.OutDegree(u)}
	for _, v := range g.out[u] {
		if pred(int(v)) {
			st.Matching++
		}
	}
	return st
}

// CommonFollowees returns how many followees u and w share.
func (g *Graph) CommonFollowees(u, w int) int {
	a, b := g.out[u], g.out[w]
	i, j, common := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			common++
			i++
			j++
		}
	}
	return common
}
