package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"flock/internal/randx"
)

func TestAddEdge(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("first add failed")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate add succeeded")
	}
	if g.AddEdge(1, 1) {
		t.Fatal("self loop added")
	}
	if g.AddEdge(0, 5) || g.AddEdge(-1, 0) {
		t.Fatal("out-of-range edge added")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge direction wrong")
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.Edges() != 1 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestFolloweesFollowersConsistent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(3, 1)
	if got := g.Followees(0); len(got) != 2 {
		t.Fatalf("followees(0) = %v", got)
	}
	if got := g.Followers(1); len(got) != 2 {
		t.Fatalf("followers(1) = %v", got)
	}
}

func TestDegreeConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		g, _, err := Generate(Config{N: 60, Communities: 4, MeanOut: 5, IntraBias: 0.7, Reciprocity: 0.3}, rng)
		if err != nil {
			return false
		}
		sumOut, sumIn := 0, 0
		for u := 0; u < g.N(); u++ {
			sumOut += g.OutDegree(u)
			sumIn += g.InDegree(u)
		}
		return sumOut == sumIn && sumOut == g.Edges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 100, Communities: 5, MeanOut: 8, IntraBias: 0.8, Reciprocity: 0.2}
	g1, c1, _ := Generate(cfg, randx.New(99))
	g2, c2, _ := Generate(cfg, randx.New(99))
	if g1.Edges() != g2.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.Edges(), g2.Edges())
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("communities differ")
		}
	}
	for u := 0; u < g1.N(); u++ {
		a, b := g1.Followees(u), g2.Followees(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}

func TestGenerateRejectsBadN(t *testing.T) {
	if _, _, err := Generate(Config{N: 0}, randx.New(1)); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestGenerateMeanOutDegree(t *testing.T) {
	g, _, err := Generate(Config{N: 2000, Communities: 10, MeanOut: 20, IntraBias: 0.8, Reciprocity: 0.2}, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(g.Edges()) / float64(g.N())
	// Reciprocity adds extra edges; accept a broad band.
	if mean < 10 || mean > 50 {
		t.Fatalf("mean out-degree = %v, want around 20-ish", mean)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	g, _, _ := Generate(Config{N: 3000, Communities: 6, MeanOut: 15, IntraBias: 0.7, Reciprocity: 0.2}, randx.New(13))
	degrees := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		degrees[v] = g.InDegree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	total := 0
	for _, d := range degrees {
		total += d
	}
	top := 0
	for _, d := range degrees[:g.N()/20] { // top 5%
		top += d
	}
	share := float64(top) / float64(total)
	if share < 0.12 {
		t.Fatalf("top-5%% in-degree share = %v, want heavy tail", share)
	}
	// Max degree should dwarf the median.
	med := degrees[g.N()/2]
	if degrees[0] < med*4 {
		t.Fatalf("max degree %d vs median %d: tail too light", degrees[0], med)
	}
}

func TestGenerateCommunityBias(t *testing.T) {
	g, comm, _ := Generate(Config{N: 1000, Communities: 5, MeanOut: 12, IntraBias: 0.8, Reciprocity: 0.1}, randx.New(21))
	intra, total := 0, 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Followees(u) {
			total++
			if comm[u] == comm[int(v)] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	if frac < 0.6 {
		t.Fatalf("intra-community edge fraction = %v, want > 0.6", frac)
	}
}

func TestEgo(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	migrated := map[int]bool{1: true, 3: true}
	st := g.Ego(0, func(v int) bool { return migrated[v] })
	if st.Followees != 3 || st.Matching != 2 {
		t.Fatalf("ego stats %+v", st)
	}
	if st.Fraction() != 2.0/3.0 {
		t.Fatalf("fraction = %v", st.Fraction())
	}
	empty := g.Ego(4, func(int) bool { return true })
	if empty.Fraction() != 0 {
		t.Fatal("empty ego fraction should be 0")
	}
}

func TestCommonFollowees(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(0, 4)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(1, 5)
	g.SortAdjacency()
	if got := g.CommonFollowees(0, 1); got != 2 {
		t.Fatalf("common = %d", got)
	}
}

func TestSortAdjacency(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.SortAdjacency()
	f := g.Followees(0)
	for i := 1; i < len(f); i++ {
		if f[i-1] >= f[i] {
			t.Fatalf("not sorted: %v", f)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{N: 5000, Communities: 12, MeanOut: 20, IntraBias: 0.8, Reciprocity: 0.25}
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(cfg, randx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEgo(b *testing.B) {
	g, _, _ := Generate(Config{N: 5000, Communities: 12, MeanOut: 20, IntraBias: 0.8, Reciprocity: 0.25}, randx.New(1))
	pred := func(v int) bool { return v%7 == 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Ego(i%g.N(), pred)
	}
}

func TestCompactPreservesAdjacency(t *testing.T) {
	g, _, err := Generate(Config{N: 200, Communities: 4, MeanOut: 10, IntraBias: 0.7, Reciprocity: 0.3}, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Generate already compacted; rebuild an uncompacted twin to diff.
	twin := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Followees(u) {
			twin.AddEdge(u, int(v))
		}
	}
	for _, w := range []int{1, 2, 8} {
		twin2 := New(g.N())
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Followees(u) {
				twin2.AddEdge(u, int(v))
			}
		}
		twin2.Compact(w)
		for u := 0; u < g.N(); u++ {
			a, b := g.Followees(u), twin2.Followees(u)
			if len(a) != len(b) {
				t.Fatalf("workers=%d node %d followee count %d != %d", w, u, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d node %d slot %d: %d != %d", w, u, i, b[i], a[i])
				}
			}
			fa, fb := g.Followers(u), twin2.Followers(u)
			if len(fa) != len(fb) {
				t.Fatalf("workers=%d node %d follower count differs", w, u)
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("workers=%d node %d follower slot %d differs", w, u, i)
				}
			}
		}
	}
}

func TestAddEdgeAfterCompactDoesNotCorruptNeighbors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.Compact(1)
	before := append([]int32(nil), g.Followees(1)...)
	// Appending to node 0's packed view must not overwrite node 1's
	// segment in the shared flat array.
	g.AddEdge(0, 3)
	after := g.Followees(1)
	if len(after) != len(before) {
		t.Fatalf("node 1 adjacency length changed: %v -> %v", before, after)
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("node 1 adjacency corrupted: %v -> %v", before, after)
		}
	}
	if g.OutDegree(0) != 3 || !g.HasEdge(0, 3) {
		t.Fatal("post-compact AddEdge lost")
	}
}

func TestComputeMetricsDeterministicAcrossWorkers(t *testing.T) {
	g, _, err := Generate(DefaultConfig(500), randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	want := g.ComputeMetrics(1)
	if want.Edges != g.Edges() {
		t.Fatalf("metrics edges %d != %d", want.Edges, g.Edges())
	}
	if want.ReciprocalEdges%2 != 0 {
		t.Fatalf("reciprocal edge count must be even, got %d", want.ReciprocalEdges)
	}
	if want.ReciprocalEdges == 0 {
		t.Fatal("generator with Reciprocity=0.25 produced no mutual edges")
	}
	for _, w := range []int{2, 4, 8} {
		if got := g.ComputeMetrics(w); got != want {
			t.Fatalf("workers=%d metrics %+v != %+v", w, got, want)
		}
	}
}

func TestComputeMetricsSmall(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.Compact(1)
	m := g.ComputeMetrics(4)
	if m.Edges != 2 || m.ReciprocalEdges != 2 || m.Isolated != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.MaxOutDegree != 1 || m.MaxInDegree != 1 {
		t.Fatalf("degree maxima = %+v", m)
	}
	if empty := New(0).ComputeMetrics(4); empty.Nodes != 0 || empty.MeanOut != 0 {
		t.Fatalf("empty metrics = %+v", empty)
	}
}
