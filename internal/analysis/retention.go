package analysis

import (
	"time"

	"flock/internal/crawler"
	"flock/internal/stats"
	"flock/internal/vclock"
)

// Retention implements the paper's stated future work (§8): "whether
// migrating users retain their Mastodon accounts or return to Twitter".
// Within the study window we classify each migrant by where they were
// still active during the final stretch:
//
//   - Retained: posted on Mastodon during the last RetentionWindow days;
//   - Returned: stopped posting on Mastodon before that but kept
//     tweeting during it (back on the bird);
//   - Lapsed: active on neither platform at the end of the window;
//   - Silent: never posted a status at all (excluded from the rates).
type RetentionResult struct {
	RetainedFrac float64
	ReturnedFrac float64
	LapsedFrac   float64
	Classified   int
	// DaysActive is the per-user CDF of distinct days with at least one
	// status, a simple engagement depth measure.
	DaysActive *stats.ECDF
	// DailyActiveUsers counts migrants posting on Mastodon per study
	// day (the retention curve's raw series).
	DailyActiveUsers []int
}

// RetentionWindow is the end-of-study activity window, in days.
const RetentionWindow = 14

// RQ4Retention computes the retention extension over crawled timelines.
func RQ4Retention(ds *crawler.Dataset) *RetentionResult {
	out := &RetentionResult{DailyActiveUsers: make([]int, vclock.StudyDays)}
	cutoff := vclock.StudyEnd.Add(-time.Duration(RetentionWindow-1) * 24 * time.Hour)

	var retained, returned, lapsed int
	var daysActive []float64
	daily := make([]map[string]bool, vclock.StudyDays)
	for d := range daily {
		daily[d] = map[string]bool{}
	}
	for id, mtl := range ds.MastodonTimelines {
		if mtl.State != crawler.StateOK || len(mtl.Posts) == 0 {
			continue
		}
		days := map[int]bool{}
		mastodonLate := false
		for _, p := range mtl.Posts {
			if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
				days[d] = true
				daily[d][id] = true
			}
			if !p.Time.Before(cutoff) {
				mastodonLate = true
			}
		}
		daysActive = append(daysActive, float64(len(days)))
		twitterLate := false
		if ttl := ds.TwitterTimelines[id]; ttl != nil && ttl.State == crawler.StateOK {
			for _, p := range ttl.Posts {
				if !p.Time.Before(cutoff) {
					twitterLate = true
					break
				}
			}
		}
		switch {
		case mastodonLate:
			retained++
		case twitterLate:
			returned++
		default:
			lapsed++
		}
	}
	out.Classified = retained + returned + lapsed
	if out.Classified > 0 {
		n := float64(out.Classified)
		out.RetainedFrac = float64(retained) / n
		out.ReturnedFrac = float64(returned) / n
		out.LapsedFrac = float64(lapsed) / n
	}
	out.DaysActive = stats.NewECDF(daysActive)
	for d := range daily {
		out.DailyActiveUsers[d] = len(daily[d])
	}
	return out
}
