package analysis

import (
	"time"

	"flock/internal/crawler"
	"flock/internal/parallel"
	"flock/internal/stats"
	"flock/internal/vclock"
)

// Retention implements the paper's stated future work (§8): "whether
// migrating users retain their Mastodon accounts or return to Twitter".
// Within the study window we classify each migrant by where they were
// still active during the final stretch:
//
//   - Retained: posted on Mastodon during the last RetentionWindow days;
//   - Returned: stopped posting on Mastodon before that but kept
//     tweeting during it (back on the bird);
//   - Lapsed: active on neither platform at the end of the window;
//   - Silent: never posted a status at all (excluded from the rates).
type RetentionResult struct {
	RetainedFrac float64
	ReturnedFrac float64
	LapsedFrac   float64
	Classified   int
	// DaysActive is the per-user CDF of distinct days with at least one
	// status, a simple engagement depth measure.
	DaysActive *stats.ECDF
	// DailyActiveUsers counts migrants posting on Mastodon per study
	// day (the retention curve's raw series).
	DailyActiveUsers []int
}

// RetentionWindow is the end-of-study activity window, in days.
const RetentionWindow = 14

// retention classes for the per-user fold.
const (
	retSilent = iota
	retRetained
	retReturned
	retLapsed
)

// RQ4Retention computes the retention extension over crawled timelines.
func (e Engine) RQ4Retention(ds *crawler.Dataset) *RetentionResult {
	out := &RetentionResult{DailyActiveUsers: make([]int, vclock.StudyDays)}
	cutoff := vclock.StudyEnd.Add(-time.Duration(RetentionWindow-1) * 24 * time.Hour)

	ids := sortedKeys(ds.MastodonTimelines)
	type userRow struct {
		class      int
		activeDays [vclock.StudyDays]bool
		daysActive float64
	}
	slots := parallel.MapSlice(e.Workers, len(ids), func(i int) userRow {
		id := ids[i]
		mtl := ds.MastodonTimelines[id]
		if mtl.State != crawler.StateOK || len(mtl.Posts) == 0 {
			return userRow{class: retSilent}
		}
		var r userRow
		days := 0
		mastodonLate := false
		for _, p := range mtl.Posts {
			if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
				if !r.activeDays[d] {
					r.activeDays[d] = true
					days++
				}
			}
			if !p.Time.Before(cutoff) {
				mastodonLate = true
			}
		}
		r.daysActive = float64(days)
		twitterLate := false
		if ttl := ds.TwitterTimelines[id]; ttl != nil && ttl.State == crawler.StateOK {
			for _, p := range ttl.Posts {
				if !p.Time.Before(cutoff) {
					twitterLate = true
					break
				}
			}
		}
		switch {
		case mastodonLate:
			r.class = retRetained
		case twitterLate:
			r.class = retReturned
		default:
			r.class = retLapsed
		}
		return r
	})

	var retained, returned, lapsed int
	var daysActive []float64
	for i := range slots {
		r := &slots[i]
		switch r.class {
		case retSilent:
			continue
		case retRetained:
			retained++
		case retReturned:
			returned++
		case retLapsed:
			lapsed++
		}
		daysActive = append(daysActive, r.daysActive)
		for d := range r.activeDays {
			if r.activeDays[d] {
				out.DailyActiveUsers[d]++
			}
		}
	}
	out.Classified = retained + returned + lapsed
	if out.Classified > 0 {
		n := float64(out.Classified)
		out.RetainedFrac = float64(retained) / n
		out.ReturnedFrac = float64(returned) / n
		out.LapsedFrac = float64(lapsed) / n
	}
	out.DaysActive = stats.NewECDF(daysActive)
	return out
}
