package analysis

import (
	"sort"

	"flock/internal/crawler"
	"flock/internal/textsim"
)

// Engine runs every analysis on the deterministic parallel kernels of
// internal/parallel. The zero value is valid: Workers <= 0 resolves to
// GOMAXPROCS and Cache == nil disables cross-pass embedding reuse.
//
// Determinism contract: for a fixed dataset, every Engine method returns
// a byte-identical result (under stable JSON encoding) at any Workers
// setting and across repeated runs. Per-item heavy work fans out through
// parallel.MapSlice into index-ordered slots and is folded serially, so
// floating-point accumulation order never depends on scheduling; sharded
// reductions merge only commutative integer counters and sets, in fixed
// shard order. Map-keyed inputs are always iterated via sorted key
// lists, never raw map order.
type Engine struct {
	// Workers bounds the worker pool per analysis (<= 0: GOMAXPROCS).
	Workers int
	// Cache, when non-nil, memoizes embeddings across analyses — the
	// Fig. 14 texts repeat heavily across RQ passes and runs.
	Cache *textsim.Cache
}

// sortedKeys returns the keys of a string-keyed map in sorted order, the
// engine's canonical way to turn map-shaped crawl data into a
// deterministic work list.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Free-function forms of every analysis, kept for callers that do not
// need worker control; each delegates to a default Engine (GOMAXPROCS
// workers, no shared cache).

// RQ1 computes the centralization results.
func RQ1(ds *crawler.Dataset) *Centralization { return Engine{}.RQ1(ds) }

// SocialNetworkSizes computes Fig. 7 over all verified pairs.
func SocialNetworkSizes(ds *crawler.Dataset) *NetworkSizes { return Engine{}.SocialNetworkSizes(ds) }

// RQ2Contagion computes the social-influence results.
func RQ2Contagion(ds *crawler.Dataset) *Contagion { return Engine{}.RQ2Contagion(ds) }

// RQ2Switching computes the instance-switching results.
func RQ2Switching(ds *crawler.Dataset) *Switching { return Engine{}.RQ2Switching(ds) }

// Timelines computes Fig. 11 over the crawled timelines.
func Timelines(ds *crawler.Dataset) *DailyActivity { return Engine{}.Timelines(ds) }

// RQ3Sources computes the tweet-source results.
func RQ3Sources(ds *crawler.Dataset) *Sources { return Engine{}.RQ3Sources(ds) }

// RQ3Overlap computes cross-platform content similarity.
func RQ3Overlap(ds *crawler.Dataset, opt OverlapOptions) *Overlap {
	return Engine{}.RQ3Overlap(ds, opt)
}

// RQ3Hashtags extracts the top-30 hashtags per platform.
func RQ3Hashtags(ds *crawler.Dataset) *HashtagTables { return Engine{}.RQ3Hashtags(ds) }

// RQ3Toxicity computes toxicity prevalence on both platforms.
func RQ3Toxicity(ds *crawler.Dataset, opt ToxicityOptions) *ToxicityResult {
	return Engine{}.RQ3Toxicity(ds, opt)
}

// RQ4Retention computes the retention extension over crawled timelines.
func RQ4Retention(ds *crawler.Dataset) *RetentionResult { return Engine{}.RQ4Retention(ds) }

// CollectionFigure computes Fig. 2 from the collection corpus.
func CollectionFigure(ds *crawler.Dataset) *CollectionSeries { return Engine{}.CollectionFigure(ds) }

// ActivityFigure aggregates the per-instance weekly activity crawl.
func ActivityFigure(ds *crawler.Dataset) *ActivitySeries { return Engine{}.ActivityFigure(ds) }
