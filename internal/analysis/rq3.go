package analysis

import (
	"sort"
	"strings"

	"flock/internal/crawler"
	"flock/internal/parallel"
	"flock/internal/stats"
	"flock/internal/textkit"
	"flock/internal/textsim"
	"flock/internal/vclock"
)

// CrossposterSources are the §6.1 bridge client names.
var CrossposterSources = map[string]bool{
	"Mastodon Twitter Crossposter": true,
	"Moa Bridge":                   true,
}

// DailyActivity is Fig. 11: tweets and statuses per study day.
type DailyActivity struct {
	Days     []string // "Oct 01" labels
	Tweets   []int
	Statuses []int
}

// dayCounts is a fixed-size per-shard histogram over study days; shard
// merges are elementwise integer adds (commutative).
type dayCounts [vclock.StudyDays]int

func (a *dayCounts) add(b *dayCounts) {
	for d := range a {
		a[d] += b[d]
	}
}

// countTimelineDays histograms posts over study days, sharded across
// workers; posts(i) yields the i-th user's timeline in id-sorted order.
func countTimelineDays(workers, n int, posts func(i int) []crawler.Post) *dayCounts {
	out := parallel.ReduceSharded(workers, n,
		func(lo, hi int) *dayCounts {
			var c dayCounts
			for i := lo; i < hi; i++ {
				for _, p := range posts(i) {
					if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
						c[d]++
					}
				}
			}
			return &c
		},
		func(a, b *dayCounts) *dayCounts { a.add(b); return a })
	if out == nil {
		out = &dayCounts{}
	}
	return out
}

// Timelines computes Fig. 11 over the crawled timelines.
func (e Engine) Timelines(ds *crawler.Dataset) *DailyActivity {
	out := &DailyActivity{
		Days:     make([]string, vclock.StudyDays),
		Tweets:   make([]int, vclock.StudyDays),
		Statuses: make([]int, vclock.StudyDays),
	}
	for d := 0; d < vclock.StudyDays; d++ {
		out.Days[d] = vclock.FormatDay(vclock.DayStart(d))
	}
	twIDs := sortedKeys(ds.TwitterTimelines)
	msIDs := sortedKeys(ds.MastodonTimelines)
	tweets := countTimelineDays(e.Workers, len(twIDs), func(i int) []crawler.Post {
		return ds.TwitterTimelines[twIDs[i]].Posts
	})
	statuses := countTimelineDays(e.Workers, len(msIDs), func(i int) []crawler.Post {
		return ds.MastodonTimelines[msIDs[i]].Posts
	})
	copy(out.Tweets, tweets[:])
	copy(out.Statuses, statuses[:])
	return out
}

// SourceCount is one Fig. 12 bar: tweets via a client, before and after
// the takeover.
type SourceCount struct {
	Name string
	Pre  int
	Post int
}

// Growth returns the pre-to-post growth (post/pre - 1); pre==0 yields
// +inf handled as a large value for sorting, reported as-is.
func (s SourceCount) Growth() float64 {
	if s.Pre == 0 {
		if s.Post == 0 {
			return 0
		}
		return float64(s.Post) // effectively unbounded
	}
	return float64(s.Post-s.Pre) / float64(s.Pre)
}

// Sources is the Fig. 12 + Fig. 13 + §6.1 result.
type Sources struct {
	// Top30 sources by total volume.
	Top30 []SourceCount
	// CrossposterGrowth per bridge (paper: +1128.95% and +1732.26%).
	CrossposterGrowth map[string]float64
	// CrossposterUserFrac: migrants using a bridge at least once
	// (paper: 5.73%).
	CrossposterUserFrac float64
	// DailyCrossposterUsers is Fig. 13: distinct bridge users per day.
	DailyCrossposterUsers []int
}

// sourcesPartial is the per-shard accumulator of the source scan: counts
// and user sets only, merged by addition and union (commutative).
type sourcesPartial struct {
	counts            map[string]*SourceCount
	crossUsers        map[string]bool
	dailyUsers        []map[string]bool
	usersWithTimeline int
}

// RQ3Sources computes the tweet-source results.
func (e Engine) RQ3Sources(ds *crawler.Dataset) *Sources {
	out := &Sources{
		CrossposterGrowth:     map[string]float64{},
		DailyCrossposterUsers: make([]int, vclock.StudyDays),
	}
	ids := sortedKeys(ds.TwitterTimelines)
	agg := parallel.ReduceSharded(e.Workers, len(ids),
		func(lo, hi int) sourcesPartial {
			part := sourcesPartial{
				counts:     map[string]*SourceCount{},
				crossUsers: map[string]bool{},
				dailyUsers: make([]map[string]bool, vclock.StudyDays),
			}
			for i := lo; i < hi; i++ {
				userID := ids[i]
				tl := ds.TwitterTimelines[userID]
				if tl.State != crawler.StateOK {
					continue
				}
				part.usersWithTimeline++
				for _, p := range tl.Posts {
					c := part.counts[p.Source]
					if c == nil {
						c = &SourceCount{Name: p.Source}
						part.counts[p.Source] = c
					}
					if vclock.PostTakeover(p.Time) {
						c.Post++
					} else {
						c.Pre++
					}
					if CrossposterSources[p.Source] {
						part.crossUsers[userID] = true
						if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
							if part.dailyUsers[d] == nil {
								part.dailyUsers[d] = map[string]bool{}
							}
							part.dailyUsers[d][userID] = true
						}
					}
				}
			}
			return part
		},
		func(a, b sourcesPartial) sourcesPartial {
			for name, c := range b.counts {
				if ac := a.counts[name]; ac != nil {
					ac.Pre += c.Pre
					ac.Post += c.Post
				} else {
					a.counts[name] = c
				}
			}
			for u := range b.crossUsers {
				a.crossUsers[u] = true
			}
			for d, users := range b.dailyUsers {
				if users == nil {
					continue
				}
				if a.dailyUsers[d] == nil {
					a.dailyUsers[d] = users
					continue
				}
				for u := range users {
					a.dailyUsers[d][u] = true
				}
			}
			a.usersWithTimeline += b.usersWithTimeline
			return a
		})
	if agg.counts == nil {
		return out
	}
	rows := make([]SourceCount, 0, len(agg.counts))
	for _, c := range agg.counts {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		ti, tj := rows[i].Pre+rows[i].Post, rows[j].Pre+rows[j].Post
		if ti != tj {
			return ti > tj
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > 30 {
		rows = rows[:30]
	}
	out.Top30 = rows
	for name := range CrossposterSources {
		if c, ok := agg.counts[name]; ok {
			out.CrossposterGrowth[name] = c.Growth()
		}
	}
	if agg.usersWithTimeline > 0 {
		out.CrossposterUserFrac = float64(len(agg.crossUsers)) / float64(agg.usersWithTimeline)
	}
	for d, users := range agg.dailyUsers {
		out.DailyCrossposterUsers[d] = len(users)
	}
	return out
}

// Overlap is the Fig. 14 / §6.1 content-similarity result.
type Overlap struct {
	// IdenticalFrac / SimilarFrac are per-user CDFs of the fraction of
	// Mastodon statuses identical/similar to the user's tweets.
	IdenticalFrac *stats.ECDF
	SimilarFrac   *stats.ECDF
	MeanIdentical float64 // paper: 1.53%
	MeanSimilar   float64 // paper: 16.57%
	// CompletelyDifferentFrac: users whose similar-status fraction is
	// below DifferentFloor (paper: 84.45% "post completely different
	// content"). An exact-zero definition is unusable: at any similarity
	// threshold a per-status false-positive rate of even 2% would give
	// most 60-status users at least one spurious match.
	CompletelyDifferentFrac float64
	UsersCompared           int
}

// DifferentFloor is the similar-fraction below which a user counts as
// posting "completely different" content on the two platforms.
const DifferentFloor = 0.05

// OverlapOptions tunes the Fig. 14 computation.
type OverlapOptions struct {
	// Threshold is the similarity cutoff (paper: 0.7 on SBERT cosine).
	Threshold float64
	// MaxUsers caps how many users are compared (0 = all); the
	// comparison is quadratic per user.
	MaxUsers int
}

// RQ3Overlap computes cross-platform content similarity. This is the
// hot path of the whole analysis suite (quadratic text comparison per
// user), so users fan out across workers; each user's index build and
// scan stay serial inside its slot, and embeddings go through the
// engine's shared cache when one is configured.
func (e Engine) RQ3Overlap(ds *crawler.Dataset, opt OverlapOptions) *Overlap {
	if opt.Threshold == 0 {
		opt.Threshold = textsim.DefaultThreshold
	}
	out := &Overlap{}

	// Eligibility pass (cheap, serial) over sorted ids, respecting the
	// MaxUsers cap exactly as the serial version did.
	var eligible []string
	for _, id := range sortedKeys(ds.MastodonTimelines) {
		if opt.MaxUsers > 0 && len(eligible) >= opt.MaxUsers {
			break
		}
		mtl := ds.MastodonTimelines[id]
		ttl := ds.TwitterTimelines[id]
		if mtl == nil || ttl == nil || mtl.State != crawler.StateOK || ttl.State != crawler.StateOK {
			continue
		}
		if len(mtl.Posts) == 0 || len(ttl.Posts) == 0 {
			continue
		}
		eligible = append(eligible, id)
	}
	out.UsersCompared = len(eligible)

	type userRow struct {
		idFrac, simFrac float64
		different       bool
	}
	slots := parallel.MapSlice(e.Workers, len(eligible), func(u int) userRow {
		mtl := ds.MastodonTimelines[eligible[u]]
		ttl := ds.TwitterTimelines[eligible[u]]
		texts := make([]string, len(ttl.Posts))
		for i, p := range ttl.Posts {
			texts[i] = p.Text
		}
		idx := textsim.NewIndexParallel(texts, 1, e.Cache)
		identical, similar := 0, 0
		for _, sp := range mtl.Posts {
			best, sim := idx.BestMatch(e.Cache.Embed(sp.Text))
			if best < 0 {
				continue
			}
			switch {
			case textsim.Identical(sp.Text, texts[best]):
				identical++
			case sim >= opt.Threshold:
				similar++
			}
		}
		n := float64(len(mtl.Posts))
		return userRow{
			idFrac:    float64(identical) / n,
			simFrac:   float64(identical+similar) / n,
			different: float64(identical+similar)/n < DifferentFloor,
		}
	})
	idFracs := make([]float64, len(slots))
	simFracs := make([]float64, len(slots))
	different := 0
	for i, r := range slots {
		idFracs[i] = r.idFrac
		simFracs[i] = r.simFrac
		if r.different {
			different++
		}
	}
	out.IdenticalFrac = stats.NewECDF(idFracs)
	out.SimilarFrac = stats.NewECDF(simFracs)
	out.MeanIdentical = stats.Mean(idFracs)
	out.MeanSimilar = stats.Mean(simFracs)
	if out.UsersCompared > 0 {
		out.CompletelyDifferentFrac = float64(different) / float64(out.UsersCompared)
	}
	return out
}

// HashtagTables is the Fig. 15 result.
type HashtagTables struct {
	Twitter  []stats.FreqCount
	Mastodon []stats.FreqCount
}

// countHashtags tallies hashtags across the id-sorted timelines,
// sharded across workers with a commutative map-addition merge;
// posts(i) yields the i-th user's timeline in id-sorted order.
func countHashtags(workers, n int, posts func(i int) []crawler.Post) map[string]int {
	counts := parallel.ReduceSharded(workers, n,
		func(lo, hi int) map[string]int {
			m := map[string]int{}
			for i := lo; i < hi; i++ {
				for _, p := range posts(i) {
					for _, h := range textkit.Hashtags(p.Text) {
						m[h]++
					}
				}
			}
			return m
		},
		func(a, b map[string]int) map[string]int {
			for h, n := range b {
				a[h] += n
			}
			return a
		})
	if counts == nil {
		counts = map[string]int{}
	}
	return counts
}

// RQ3Hashtags extracts the top-30 hashtags per platform.
func (e Engine) RQ3Hashtags(ds *crawler.Dataset) *HashtagTables {
	twIDs := sortedKeys(ds.TwitterTimelines)
	msIDs := sortedKeys(ds.MastodonTimelines)
	tw := countHashtags(e.Workers, len(twIDs), func(i int) []crawler.Post {
		return ds.TwitterTimelines[twIDs[i]].Posts
	})
	ms := countHashtags(e.Workers, len(msIDs), func(i int) []crawler.Post {
		return ds.MastodonTimelines[msIDs[i]].Posts
	})
	return &HashtagTables{
		Twitter:  stats.TopK(tw, 30),
		Mastodon: stats.TopK(ms, 30),
	}
}

// ToxicityResult is the Fig. 16 / §6.3 result.
type ToxicityResult struct {
	// TweetToxicFrac / StatusToxicFrac are the per-user CDFs.
	TweetToxicFrac  *stats.ECDF
	StatusToxicFrac *stats.ECDF
	// Overall post-level rates (paper: 5.49% / 2.80%).
	OverallTweetToxic  float64
	OverallStatusToxic float64
	// Per-user means (paper: 4.02% / 2.07%).
	MeanUserTweetToxic  float64
	MeanUserStatusToxic float64
	// BothPlatformsFrac: users with >= 1 toxic post on each platform
	// (paper: 14.26%).
	BothPlatformsFrac float64
	ScoredTweets      int
	ScoredStatuses    int
}

// ToxicityOptions tunes the toxicity analysis.
type ToxicityOptions struct {
	// Threshold classifies a post toxic (paper: 0.5; 0.8 is the stricter
	// variant some prior work uses).
	Threshold float64
	// ScoreFn scores posts whose crawl-time Toxicity is missing (<0).
	// nil skips unscored posts. Must be safe for concurrent use — the
	// per-user scoring loop fans out across workers.
	ScoreFn func(text string) float64
}

// RQ3Toxicity computes toxicity prevalence on both platforms.
func (e Engine) RQ3Toxicity(ds *crawler.Dataset, opt ToxicityOptions) *ToxicityResult {
	if opt.Threshold == 0 {
		opt.Threshold = 0.5
	}
	out := &ToxicityResult{}

	score := func(p *crawler.Post) (float64, bool) {
		if p.Toxicity >= 0 {
			return p.Toxicity, true
		}
		if opt.ScoreFn != nil {
			return opt.ScoreFn(p.Text), true
		}
		return 0, false
	}

	ids := sortedKeys(ds.TwitterTimelines)
	type userRow struct {
		tTox, tAll, sTox, sAll int
	}
	slots := parallel.MapSlice(e.Workers, len(ids), func(i int) userRow {
		ttl := ds.TwitterTimelines[ids[i]]
		mtl := ds.MastodonTimelines[ids[i]]
		var r userRow
		if ttl != nil && ttl.State == crawler.StateOK {
			for j := range ttl.Posts {
				v, ok := score(&ttl.Posts[j])
				if !ok {
					continue
				}
				r.tAll++
				if v > opt.Threshold {
					r.tTox++
				}
			}
		}
		if mtl != nil && mtl.State == crawler.StateOK {
			for j := range mtl.Posts {
				v, ok := score(&mtl.Posts[j])
				if !ok {
					continue
				}
				r.sAll++
				if v > opt.Threshold {
					r.sTox++
				}
			}
		}
		return r
	})
	var userTweetFracs, userStatusFracs []float64
	var totalTweets, toxicTweets, totalStatuses, toxicStatuses int
	both := 0
	users := 0
	for _, r := range slots {
		totalTweets += r.tAll
		toxicTweets += r.tTox
		totalStatuses += r.sAll
		toxicStatuses += r.sTox
		if r.tAll > 0 {
			userTweetFracs = append(userTweetFracs, float64(r.tTox)/float64(r.tAll))
		}
		if r.sAll > 0 {
			userStatusFracs = append(userStatusFracs, float64(r.sTox)/float64(r.sAll))
		}
		if r.tAll > 0 || r.sAll > 0 {
			users++
			if r.tTox > 0 && r.sTox > 0 {
				both++
			}
		}
	}
	out.TweetToxicFrac = stats.NewECDF(userTweetFracs)
	out.StatusToxicFrac = stats.NewECDF(userStatusFracs)
	out.MeanUserTweetToxic = stats.Mean(userTweetFracs)
	out.MeanUserStatusToxic = stats.Mean(userStatusFracs)
	out.ScoredTweets = totalTweets
	out.ScoredStatuses = totalStatuses
	if totalTweets > 0 {
		out.OverallTweetToxic = float64(toxicTweets) / float64(totalTweets)
	}
	if totalStatuses > 0 {
		out.OverallStatusToxic = float64(toxicStatuses) / float64(totalStatuses)
	}
	if users > 0 {
		out.BothPlatformsFrac = float64(both) / float64(users)
	}
	return out
}

// CollectionSeries is Fig. 2: daily collected tweets by query class.
type CollectionSeries struct {
	Days          []string
	InstanceLinks []int
	Keywords      []int
}

// CollectionFigure computes Fig. 2 from the collection corpus.
func (e Engine) CollectionFigure(ds *crawler.Dataset) *CollectionSeries {
	out := &CollectionSeries{
		Days:          make([]string, vclock.StudyDays),
		InstanceLinks: make([]int, vclock.StudyDays),
		Keywords:      make([]int, vclock.StudyDays),
	}
	for d := 0; d < vclock.StudyDays; d++ {
		out.Days[d] = vclock.FormatDay(vclock.DayStart(d))
	}
	type pair struct{ links, keywords dayCounts }
	agg := parallel.ReduceSharded(e.Workers, len(ds.CollectedTweets),
		func(lo, hi int) *pair {
			var p pair
			for i := lo; i < hi; i++ {
				ct := &ds.CollectedTweets[i]
				d := vclock.Day(ct.Time)
				if d < 0 || d >= vclock.StudyDays {
					continue
				}
				if ct.Class == crawler.ClassInstanceLink {
					p.links[d]++
				} else {
					p.keywords[d]++
				}
			}
			return &p
		},
		func(a, b *pair) *pair {
			a.links.add(&b.links)
			a.keywords.add(&b.keywords)
			return a
		})
	if agg != nil {
		copy(out.InstanceLinks, agg.links[:])
		copy(out.Keywords, agg.keywords[:])
	}
	return out
}

// ActivitySeries is Fig. 3: fediverse-wide weekly activity, summed over
// crawled instances.
type ActivitySeries struct {
	Weeks         []string
	Registrations []int
	Logins        []int
	Statuses      []int
}

// ActivityFigure aggregates the per-instance weekly activity crawl. The
// input is small (one row per instance-week), so this stays serial.
func (e Engine) ActivityFigure(ds *crawler.Dataset) *ActivitySeries {
	agg := map[string]*[3]int{}
	var weeks []string
	for _, series := range ds.Activity {
		for _, wk := range series {
			key := wk.Week.UTC().Format("2006-01-02")
			a := agg[key]
			if a == nil {
				a = &[3]int{}
				agg[key] = a
				weeks = append(weeks, key)
			}
			a[0] += wk.Registrations
			a[1] += wk.Logins
			a[2] += wk.Statuses
		}
	}
	sort.Strings(weeks)
	out := &ActivitySeries{}
	for _, wk := range weeks {
		a := agg[wk]
		out.Weeks = append(out.Weeks, wk)
		out.Registrations = append(out.Registrations, a[0])
		out.Logins = append(out.Logins, a[1])
		out.Statuses = append(out.Statuses, a[2])
	}
	return out
}

// sourceIsOfficial reports whether a client is a first-party Twitter
// client (used in the report's Fig. 12 narrative).
func sourceIsOfficial(name string) bool {
	return strings.HasPrefix(name, "Twitter ") || name == "TweetDeck"
}
