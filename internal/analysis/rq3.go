package analysis

import (
	"sort"
	"strings"

	"flock/internal/crawler"
	"flock/internal/stats"
	"flock/internal/textkit"
	"flock/internal/textsim"
	"flock/internal/vclock"
)

// CrossposterSources are the §6.1 bridge client names.
var CrossposterSources = map[string]bool{
	"Mastodon Twitter Crossposter": true,
	"Moa Bridge":                   true,
}

// DailyActivity is Fig. 11: tweets and statuses per study day.
type DailyActivity struct {
	Days     []string // "Oct 01" labels
	Tweets   []int
	Statuses []int
}

// Timelines computes Fig. 11 over the crawled timelines.
func Timelines(ds *crawler.Dataset) *DailyActivity {
	out := &DailyActivity{
		Days:     make([]string, vclock.StudyDays),
		Tweets:   make([]int, vclock.StudyDays),
		Statuses: make([]int, vclock.StudyDays),
	}
	for d := 0; d < vclock.StudyDays; d++ {
		out.Days[d] = vclock.FormatDay(vclock.DayStart(d))
	}
	for _, tl := range ds.TwitterTimelines {
		for _, p := range tl.Posts {
			if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
				out.Tweets[d]++
			}
		}
	}
	for _, tl := range ds.MastodonTimelines {
		for _, p := range tl.Posts {
			if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
				out.Statuses[d]++
			}
		}
	}
	return out
}

// SourceCount is one Fig. 12 bar: tweets via a client, before and after
// the takeover.
type SourceCount struct {
	Name string
	Pre  int
	Post int
}

// Growth returns the pre-to-post growth (post/pre - 1); pre==0 yields
// +inf handled as a large value for sorting, reported as-is.
func (s SourceCount) Growth() float64 {
	if s.Pre == 0 {
		if s.Post == 0 {
			return 0
		}
		return float64(s.Post) // effectively unbounded
	}
	return float64(s.Post-s.Pre) / float64(s.Pre)
}

// Sources is the Fig. 12 + Fig. 13 + §6.1 result.
type Sources struct {
	// Top30 sources by total volume.
	Top30 []SourceCount
	// CrossposterGrowth per bridge (paper: +1128.95% and +1732.26%).
	CrossposterGrowth map[string]float64
	// CrossposterUserFrac: migrants using a bridge at least once
	// (paper: 5.73%).
	CrossposterUserFrac float64
	// DailyCrossposterUsers is Fig. 13: distinct bridge users per day.
	DailyCrossposterUsers []int
}

// RQ3Sources computes the tweet-source results.
func RQ3Sources(ds *crawler.Dataset) *Sources {
	out := &Sources{
		CrossposterGrowth:     map[string]float64{},
		DailyCrossposterUsers: make([]int, vclock.StudyDays),
	}
	counts := map[string]*SourceCount{}
	crossUsers := map[string]bool{}
	dailyUsers := make([]map[string]bool, vclock.StudyDays)
	for d := range dailyUsers {
		dailyUsers[d] = map[string]bool{}
	}
	usersWithTimeline := 0
	for userID, tl := range ds.TwitterTimelines {
		if tl.State != crawler.StateOK {
			continue
		}
		usersWithTimeline++
		for _, p := range tl.Posts {
			c := counts[p.Source]
			if c == nil {
				c = &SourceCount{Name: p.Source}
				counts[p.Source] = c
			}
			if vclock.PostTakeover(p.Time) {
				c.Post++
			} else {
				c.Pre++
			}
			if CrossposterSources[p.Source] {
				crossUsers[userID] = true
				if d := vclock.Day(p.Time); d >= 0 && d < vclock.StudyDays {
					dailyUsers[d][userID] = true
				}
			}
		}
	}
	rows := make([]SourceCount, 0, len(counts))
	for _, c := range counts {
		rows = append(rows, *c)
	}
	sort.Slice(rows, func(i, j int) bool {
		ti, tj := rows[i].Pre+rows[i].Post, rows[j].Pre+rows[j].Post
		if ti != tj {
			return ti > tj
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > 30 {
		rows = rows[:30]
	}
	out.Top30 = rows
	for name := range CrossposterSources {
		if c, ok := counts[name]; ok {
			out.CrossposterGrowth[name] = c.Growth()
		}
	}
	if usersWithTimeline > 0 {
		out.CrossposterUserFrac = float64(len(crossUsers)) / float64(usersWithTimeline)
	}
	for d := range dailyUsers {
		out.DailyCrossposterUsers[d] = len(dailyUsers[d])
	}
	return out
}

// Overlap is the Fig. 14 / §6.1 content-similarity result.
type Overlap struct {
	// IdenticalFrac / SimilarFrac are per-user CDFs of the fraction of
	// Mastodon statuses identical/similar to the user's tweets.
	IdenticalFrac *stats.ECDF
	SimilarFrac   *stats.ECDF
	MeanIdentical float64 // paper: 1.53%
	MeanSimilar   float64 // paper: 16.57%
	// CompletelyDifferentFrac: users whose similar-status fraction is
	// below DifferentFloor (paper: 84.45% "post completely different
	// content"). An exact-zero definition is unusable: at any similarity
	// threshold a per-status false-positive rate of even 2% would give
	// most 60-status users at least one spurious match.
	CompletelyDifferentFrac float64
	UsersCompared           int
}

// DifferentFloor is the similar-fraction below which a user counts as
// posting "completely different" content on the two platforms.
const DifferentFloor = 0.05

// OverlapOptions tunes the Fig. 14 computation.
type OverlapOptions struct {
	// Threshold is the similarity cutoff (paper: 0.7 on SBERT cosine).
	Threshold float64
	// MaxUsers caps how many users are compared (0 = all); the
	// comparison is quadratic per user.
	MaxUsers int
}

// RQ3Overlap computes cross-platform content similarity.
func RQ3Overlap(ds *crawler.Dataset, opt OverlapOptions) *Overlap {
	if opt.Threshold == 0 {
		opt.Threshold = textsim.DefaultThreshold
	}
	out := &Overlap{}
	var idFracs, simFracs []float64
	different := 0

	ids := make([]string, 0, len(ds.MastodonTimelines))
	for id := range ds.MastodonTimelines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if opt.MaxUsers > 0 && out.UsersCompared >= opt.MaxUsers {
			break
		}
		mtl := ds.MastodonTimelines[id]
		ttl := ds.TwitterTimelines[id]
		if mtl == nil || ttl == nil || mtl.State != crawler.StateOK || ttl.State != crawler.StateOK {
			continue
		}
		if len(mtl.Posts) == 0 || len(ttl.Posts) == 0 {
			continue
		}
		out.UsersCompared++
		texts := make([]string, len(ttl.Posts))
		for i, p := range ttl.Posts {
			texts[i] = p.Text
		}
		idx := textsim.NewIndex(texts)
		identical, similar := 0, 0
		for _, sp := range mtl.Posts {
			best, sim := idx.BestMatch(textsim.Embed(sp.Text))
			if best < 0 {
				continue
			}
			switch {
			case textsim.Identical(sp.Text, texts[best]):
				identical++
			case sim >= opt.Threshold:
				similar++
			}
		}
		n := float64(len(mtl.Posts))
		idFracs = append(idFracs, float64(identical)/n)
		simFracs = append(simFracs, float64(identical+similar)/n)
		if float64(identical+similar)/n < DifferentFloor {
			different++
		}
	}
	out.IdenticalFrac = stats.NewECDF(idFracs)
	out.SimilarFrac = stats.NewECDF(simFracs)
	out.MeanIdentical = stats.Mean(idFracs)
	out.MeanSimilar = stats.Mean(simFracs)
	if out.UsersCompared > 0 {
		out.CompletelyDifferentFrac = float64(different) / float64(out.UsersCompared)
	}
	return out
}

// HashtagTables is the Fig. 15 result.
type HashtagTables struct {
	Twitter  []stats.FreqCount
	Mastodon []stats.FreqCount
}

// RQ3Hashtags extracts the top-30 hashtags per platform.
func RQ3Hashtags(ds *crawler.Dataset) *HashtagTables {
	tw := map[string]int{}
	ms := map[string]int{}
	for _, tl := range ds.TwitterTimelines {
		for _, p := range tl.Posts {
			for _, h := range textkit.Hashtags(p.Text) {
				tw[h]++
			}
		}
	}
	for _, tl := range ds.MastodonTimelines {
		for _, p := range tl.Posts {
			for _, h := range textkit.Hashtags(p.Text) {
				ms[h]++
			}
		}
	}
	return &HashtagTables{
		Twitter:  stats.TopK(tw, 30),
		Mastodon: stats.TopK(ms, 30),
	}
}

// ToxicityResult is the Fig. 16 / §6.3 result.
type ToxicityResult struct {
	// TweetToxicFrac / StatusToxicFrac are the per-user CDFs.
	TweetToxicFrac  *stats.ECDF
	StatusToxicFrac *stats.ECDF
	// Overall post-level rates (paper: 5.49% / 2.80%).
	OverallTweetToxic  float64
	OverallStatusToxic float64
	// Per-user means (paper: 4.02% / 2.07%).
	MeanUserTweetToxic  float64
	MeanUserStatusToxic float64
	// BothPlatformsFrac: users with >= 1 toxic post on each platform
	// (paper: 14.26%).
	BothPlatformsFrac float64
	ScoredTweets      int
	ScoredStatuses    int
}

// ToxicityOptions tunes the toxicity analysis.
type ToxicityOptions struct {
	// Threshold classifies a post toxic (paper: 0.5; 0.8 is the stricter
	// variant some prior work uses).
	Threshold float64
	// ScoreFn scores posts whose crawl-time Toxicity is missing (<0).
	// nil skips unscored posts.
	ScoreFn func(text string) float64
}

// RQ3Toxicity computes toxicity prevalence on both platforms.
func RQ3Toxicity(ds *crawler.Dataset, opt ToxicityOptions) *ToxicityResult {
	if opt.Threshold == 0 {
		opt.Threshold = 0.5
	}
	out := &ToxicityResult{}
	var userTweetFracs, userStatusFracs []float64
	var totalTweets, toxicTweets, totalStatuses, toxicStatuses int
	both := 0
	users := 0

	score := func(p *crawler.Post) (float64, bool) {
		if p.Toxicity >= 0 {
			return p.Toxicity, true
		}
		if opt.ScoreFn != nil {
			return opt.ScoreFn(p.Text), true
		}
		return 0, false
	}

	ids := make([]string, 0, len(ds.TwitterTimelines))
	for id := range ds.TwitterTimelines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ttl := ds.TwitterTimelines[id]
		mtl := ds.MastodonTimelines[id]
		var tTox, tAll, sTox, sAll int
		if ttl != nil && ttl.State == crawler.StateOK {
			for i := range ttl.Posts {
				v, ok := score(&ttl.Posts[i])
				if !ok {
					continue
				}
				tAll++
				if v > opt.Threshold {
					tTox++
				}
			}
		}
		if mtl != nil && mtl.State == crawler.StateOK {
			for i := range mtl.Posts {
				v, ok := score(&mtl.Posts[i])
				if !ok {
					continue
				}
				sAll++
				if v > opt.Threshold {
					sTox++
				}
			}
		}
		totalTweets += tAll
		toxicTweets += tTox
		totalStatuses += sAll
		toxicStatuses += sTox
		if tAll > 0 {
			userTweetFracs = append(userTweetFracs, float64(tTox)/float64(tAll))
		}
		if sAll > 0 {
			userStatusFracs = append(userStatusFracs, float64(sTox)/float64(sAll))
		}
		if tAll > 0 || sAll > 0 {
			users++
			if tTox > 0 && sTox > 0 {
				both++
			}
		}
	}
	out.TweetToxicFrac = stats.NewECDF(userTweetFracs)
	out.StatusToxicFrac = stats.NewECDF(userStatusFracs)
	out.MeanUserTweetToxic = stats.Mean(userTweetFracs)
	out.MeanUserStatusToxic = stats.Mean(userStatusFracs)
	out.ScoredTweets = totalTweets
	out.ScoredStatuses = totalStatuses
	if totalTweets > 0 {
		out.OverallTweetToxic = float64(toxicTweets) / float64(totalTweets)
	}
	if totalStatuses > 0 {
		out.OverallStatusToxic = float64(toxicStatuses) / float64(totalStatuses)
	}
	if users > 0 {
		out.BothPlatformsFrac = float64(both) / float64(users)
	}
	return out
}

// CollectionSeries is Fig. 2: daily collected tweets by query class.
type CollectionSeries struct {
	Days          []string
	InstanceLinks []int
	Keywords      []int
}

// CollectionFigure computes Fig. 2 from the collection corpus.
func CollectionFigure(ds *crawler.Dataset) *CollectionSeries {
	out := &CollectionSeries{
		Days:          make([]string, vclock.StudyDays),
		InstanceLinks: make([]int, vclock.StudyDays),
		Keywords:      make([]int, vclock.StudyDays),
	}
	for d := 0; d < vclock.StudyDays; d++ {
		out.Days[d] = vclock.FormatDay(vclock.DayStart(d))
	}
	for _, ct := range ds.CollectedTweets {
		d := vclock.Day(ct.Time)
		if d < 0 || d >= vclock.StudyDays {
			continue
		}
		if ct.Class == crawler.ClassInstanceLink {
			out.InstanceLinks[d]++
		} else {
			out.Keywords[d]++
		}
	}
	return out
}

// ActivitySeries is Fig. 3: fediverse-wide weekly activity, summed over
// crawled instances.
type ActivitySeries struct {
	Weeks         []string
	Registrations []int
	Logins        []int
	Statuses      []int
}

// ActivityFigure aggregates the per-instance weekly activity crawl.
func ActivityFigure(ds *crawler.Dataset) *ActivitySeries {
	agg := map[string]*[3]int{}
	var weeks []string
	for _, series := range ds.Activity {
		for _, wk := range series {
			key := wk.Week.UTC().Format("2006-01-02")
			a := agg[key]
			if a == nil {
				a = &[3]int{}
				agg[key] = a
				weeks = append(weeks, key)
			}
			a[0] += wk.Registrations
			a[1] += wk.Logins
			a[2] += wk.Statuses
		}
	}
	sort.Strings(weeks)
	out := &ActivitySeries{}
	for _, wk := range weeks {
		a := agg[wk]
		out.Weeks = append(out.Weeks, wk)
		out.Registrations = append(out.Registrations, a[0])
		out.Logins = append(out.Logins, a[1])
		out.Statuses = append(out.Statuses, a[2])
	}
	return out
}

// sourceIsOfficial reports whether a client is a first-party Twitter
// client (used in the report's Fig. 12 narrative).
func sourceIsOfficial(name string) bool {
	return strings.HasPrefix(name, "Twitter ") || name == "TweetDeck"
}
