package analysis

import (
	"math"
	"testing"
	"time"

	"flock/internal/crawler"
	"flock/internal/vclock"
)

func TestRQ4Retention(t *testing.T) {
	ds := crawler.NewDataset()
	early := vclock.StudyStart.Add(5 * 24 * time.Hour)
	late := vclock.StudyEnd.Add(-2 * 24 * time.Hour)

	// u0: retained — statuses through the end.
	mkTimelines(ds, "u0",
		[]crawler.Post{{ID: "t0", Time: early, Text: "x", Toxicity: -1}},
		[]crawler.Post{
			{ID: "s0", Time: early, Text: "a", Toxicity: -1},
			{ID: "s1", Time: late, Text: "b", Toxicity: -1},
		})
	// u1: returned — stopped on Mastodon, still tweeting late.
	mkTimelines(ds, "u1",
		[]crawler.Post{{ID: "t1", Time: late, Text: "y", Toxicity: -1}},
		[]crawler.Post{{ID: "s2", Time: early, Text: "c", Toxicity: -1}})
	// u2: lapsed — quiet on both at the end.
	mkTimelines(ds, "u2",
		[]crawler.Post{{ID: "t2", Time: early, Text: "z", Toxicity: -1}},
		[]crawler.Post{{ID: "s3", Time: early, Text: "d", Toxicity: -1}})
	// u3: silent on Mastodon — excluded entirely.
	ds.TwitterTimelines["u3"] = &crawler.TwitterTimeline{State: crawler.StateOK}
	ds.MastodonTimelines["u3"] = &crawler.MastodonTimeline{State: crawler.StateNoStatuses}

	r := RQ4Retention(ds)
	if r.Classified != 3 {
		t.Fatalf("classified %d", r.Classified)
	}
	third := 1.0 / 3
	if math.Abs(r.RetainedFrac-third) > 1e-9 ||
		math.Abs(r.ReturnedFrac-third) > 1e-9 ||
		math.Abs(r.LapsedFrac-third) > 1e-9 {
		t.Fatalf("fracs %v/%v/%v", r.RetainedFrac, r.ReturnedFrac, r.LapsedFrac)
	}
	if r.DaysActive.N() != 3 {
		t.Fatalf("days-active samples %d", r.DaysActive.N())
	}
	// u0 posted on 2 distinct days; the max of the CDF reflects it.
	if got := r.DaysActive.Quantile(1); got != 2 {
		t.Fatalf("max days active %v", got)
	}
	// Daily series: day 5 has 3 distinct active users.
	if r.DailyActiveUsers[5] != 3 {
		t.Fatalf("day-5 active %d", r.DailyActiveUsers[5])
	}
}

func TestRQ4RetentionEmpty(t *testing.T) {
	r := RQ4Retention(crawler.NewDataset())
	if r.Classified != 0 || r.RetainedFrac != 0 {
		t.Fatal("empty dataset retention")
	}
}
