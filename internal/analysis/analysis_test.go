package analysis

import (
	"fmt"
	"math"
	"testing"
	"time"

	"flock/internal/crawler"
	"flock/internal/match"
	"flock/internal/vclock"
)

// mkPair builds a verified pair on domain with the given join time.
func mkPair(id int, domain string, joined time.Time) crawler.AccountPair {
	return crawler.AccountPair{
		TwitterID:         fmt.Sprintf("u%d", id),
		TwitterUsername:   fmt.Sprintf("user%d", id),
		Handle:            match.Handle{Username: fmt.Sprintf("user%d", id), Domain: domain},
		MastodonVerified:  true,
		MastodonAccountID: fmt.Sprintf("m%d", id),
		MastodonCreatedAt: joined,
	}
}

func TestRQ1Basics(t *testing.T) {
	ds := crawler.NewDataset()
	pre := vclock.Takeover.Add(-30 * 24 * time.Hour)
	post := vclock.Takeover.Add(5 * 24 * time.Hour)
	// 6 users on big.example, 1 on tiny.example (single-user), 1 pre.
	for i := 0; i < 6; i++ {
		p := mkPair(i, "big.example", post)
		if i == 0 {
			p.MastodonCreatedAt = pre
		}
		if i == 1 {
			p.Verified = true
		}
		if i < 4 {
			p.SameUsername = true
		}
		ds.Pairs = append(ds.Pairs, p)
	}
	ds.Pairs = append(ds.Pairs, mkPair(6, "tiny.example", post))
	ds.Instances = []crawler.IndexedInstance{
		{Name: "big.example", Users: 5000},
		{Name: "tiny.example", Users: 1},
		{Name: "empty.example", Users: 800},
		{Name: "alsoempty.example", Users: 2},
	}
	c := RQ1(ds)
	if c.InstancesReceiving != 2 {
		t.Fatalf("receiving = %d", c.InstancesReceiving)
	}
	if math.Abs(c.PreTakeoverAccountFrac-1.0/7) > 1e-9 {
		t.Fatalf("pre-takeover frac %v", c.PreTakeoverAccountFrac)
	}
	if math.Abs(c.VerifiedFrac-1.0/7) > 1e-9 {
		t.Fatalf("verified %v", c.VerifiedFrac)
	}
	if math.Abs(c.SameUsernameFrac-4.0/7) > 1e-9 {
		t.Fatalf("same username %v", c.SameUsernameFrac)
	}
	if math.Abs(c.SingleUserInstanceFrac-0.5) > 1e-9 {
		t.Fatalf("single-user frac %v", c.SingleUserInstanceFrac)
	}
	if c.TopInstances[0].Domain != "big.example" || c.TopInstances[0].Post != 5 || c.TopInstances[0].Pre != 1 {
		t.Fatalf("top instance %+v", c.TopInstances[0])
	}
	// Top 25% of 4 indexed instances = big.example alone = 6/7 users.
	if math.Abs(c.Top25Share-6.0/7) > 1e-9 {
		t.Fatalf("top25 %v", c.Top25Share)
	}
}

func TestRQ1EmptyDataset(t *testing.T) {
	c := RQ1(crawler.NewDataset())
	if c.InstancesReceiving != 0 || len(c.TopInstances) != 0 {
		t.Fatal("empty dataset should produce empty result")
	}
}

func TestSocialNetworkSizes(t *testing.T) {
	ds := crawler.NewDataset()
	joined := vclock.Takeover.Add(24 * time.Hour)
	for i := 0; i < 4; i++ {
		p := mkPair(i, "x.example", joined)
		p.TwitterFollowers = 100 * (i + 1)
		p.TwitterFollowing = 50 * (i + 1)
		p.MastodonFollowers = 5 * i // first user has zero
		p.MastodonFollowing = 3 * (i + 1)
		ds.Pairs = append(ds.Pairs, p)
	}
	n := SocialNetworkSizes(ds)
	if n.MedianTwitterFollowers != 200 {
		t.Fatalf("median tw followers %v", n.MedianTwitterFollowers)
	}
	if n.NoMastodonFollowersFrac != 0.25 {
		t.Fatalf("no-mastodon-followers %v", n.NoMastodonFollowersFrac)
	}
	if n.NoTwitterFollowersFrac != 0 {
		t.Fatalf("no-twitter-followers %v", n.NoTwitterFollowersFrac)
	}
}

func TestRQ2Contagion(t *testing.T) {
	ds := crawler.NewDataset()
	day := func(d int) time.Time { return vclock.Takeover.Add(time.Duration(d) * 24 * time.Hour) }
	// ego migrated day 5; followees: f1 migrated day 2 same instance,
	// f2 migrated day 8 other instance, f3 never migrated.
	ego := mkPair(0, "home.example", day(5))
	f1 := mkPair(1, "home.example", day(2))
	f2 := mkPair(2, "away.example", day(8))
	ds.Pairs = append(ds.Pairs, ego, f1, f2)
	ds.TwitterFollowees["u0"] = []crawler.FolloweeRef{
		{TwitterID: "u1", Username: "user1"},
		{TwitterID: "u2", Username: "user2"},
		{TwitterID: "u99", Username: "stayer"},
	}
	c := RQ2Contagion(ds)
	if c.SampleSize != 1 {
		t.Fatalf("sample size %d", c.SampleSize)
	}
	if math.Abs(c.MeanFracMigrated-2.0/3) > 1e-9 {
		t.Fatalf("migrated frac %v", c.MeanFracMigrated)
	}
	if math.Abs(c.MeanFracBefore-0.5) > 1e-9 {
		t.Fatalf("before frac %v", c.MeanFracBefore)
	}
	if math.Abs(c.MeanFracSameInstance-0.5) > 1e-9 {
		t.Fatalf("same-instance frac %v", c.MeanFracSameInstance)
	}
	if c.UserFirstFrac != 0 || c.UserLastFrac != 0 {
		t.Fatalf("first/last %v/%v", c.UserFirstFrac, c.UserLastFrac)
	}
}

func TestRQ2ContagionFirstMover(t *testing.T) {
	ds := crawler.NewDataset()
	day := func(d int) time.Time { return vclock.Takeover.Add(time.Duration(d) * 24 * time.Hour) }
	ego := mkPair(0, "a.example", day(1))
	late := mkPair(1, "a.example", day(9))
	ds.Pairs = append(ds.Pairs, ego, late)
	ds.TwitterFollowees["u0"] = []crawler.FolloweeRef{{TwitterID: "u1", Username: "user1"}}
	c := RQ2Contagion(ds)
	if c.UserFirstFrac != 1 {
		t.Fatalf("first mover not detected: %v", c.UserFirstFrac)
	}
}

func TestRQ2Switching(t *testing.T) {
	ds := crawler.NewDataset()
	day := func(d int) time.Time { return vclock.Takeover.Add(time.Duration(d) * 24 * time.Hour) }
	// Switcher: first flagship.example -> second topic.example at day 10.
	sw := mkPair(0, "flagship.example", day(1))
	sw.Moved = &crawler.MovedRecord{
		Handle:    match.Handle{Username: "user0", Domain: "topic.example"},
		AccountID: "m0b",
		MovedAt:   day(10),
	}
	// Followees: f1 on topic.example since day 3 (before switch), f2 on
	// flagship.example, f3 not migrated.
	f1 := mkPair(1, "topic.example", day(3))
	f2 := mkPair(2, "flagship.example", day(4))
	// Extra pairs to make flagship.example a "big" domain.
	p3 := mkPair(3, "flagship.example", day(2))
	p4 := mkPair(4, "flagship.example", day(2))
	ds.Pairs = append(ds.Pairs, sw, f1, f2, p3, p4)
	ds.TwitterFollowees["u0"] = []crawler.FolloweeRef{
		{TwitterID: "u1", Username: "user1"},
		{TwitterID: "u2", Username: "user2"},
		{TwitterID: "u99", Username: "stayer"},
	}
	s := RQ2Switching(ds)
	if s.Switchers != 1 || math.Abs(s.SwitcherFrac-0.2) > 1e-9 {
		t.Fatalf("switchers %d frac %v", s.Switchers, s.SwitcherFrac)
	}
	if s.PostTakeoverFrac != 1 {
		t.Fatalf("post-takeover %v", s.PostTakeoverFrac)
	}
	if s.Chord.Flow("flagship.example", "topic.example") != 1 {
		t.Fatal("chord flow missing")
	}
	if s.FlagshipToTopicalFrac != 1 {
		t.Fatalf("flagship->topical %v", s.FlagshipToTopicalFrac)
	}
	if s.SwitchersWithEgo != 1 {
		t.Fatalf("switchers with ego %d", s.SwitchersWithEgo)
	}
	if math.Abs(s.MeanFracSecond-0.5) > 1e-9 {
		t.Fatalf("frac second %v", s.MeanFracSecond)
	}
	if math.Abs(s.MeanFracSecondBefore-1.0) > 1e-9 {
		t.Fatalf("frac second before %v", s.MeanFracSecondBefore)
	}
	if got := s.TopSwitchTargets(1); len(got) != 1 || got[0].Key != "topic.example" {
		t.Fatalf("top targets %v", got)
	}
}

func mkTimelines(ds *crawler.Dataset, id string, tweets, statuses []crawler.Post) {
	ds.TwitterTimelines[id] = &crawler.TwitterTimeline{State: crawler.StateOK, Posts: tweets}
	ds.MastodonTimelines[id] = &crawler.MastodonTimeline{State: crawler.StateOK, Posts: statuses}
}

func TestTimelinesBuckets(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.StudyStart.Add(36 * time.Hour) // day 1
	mkTimelines(ds, "u0",
		[]crawler.Post{{ID: "1", Time: at, Text: "x", Toxicity: -1}},
		[]crawler.Post{{ID: "2", Time: at.Add(24 * time.Hour), Text: "y", Toxicity: -1}})
	d := Timelines(ds)
	if d.Tweets[1] != 1 || d.Statuses[2] != 1 {
		t.Fatalf("buckets wrong: %v %v", d.Tweets[:4], d.Statuses[:4])
	}
}

func TestRQ3Sources(t *testing.T) {
	ds := crawler.NewDataset()
	pre := vclock.Takeover.Add(-24 * time.Hour)
	post := vclock.Takeover.Add(24 * time.Hour)
	mkTimelines(ds, "u0", []crawler.Post{
		{ID: "1", Time: pre, Text: "a", Source: "Twitter Web App", Toxicity: -1},
		{ID: "2", Time: post, Text: "b", Source: "Twitter Web App", Toxicity: -1},
		{ID: "3", Time: post, Text: "c", Source: "Moa Bridge", Toxicity: -1},
		{ID: "4", Time: post.Add(time.Hour), Text: "d", Source: "Moa Bridge", Toxicity: -1},
	}, nil)
	mkTimelines(ds, "u1", []crawler.Post{
		{ID: "5", Time: post, Text: "e", Source: "Twitter for iPhone", Toxicity: -1},
	}, nil)
	s := RQ3Sources(ds)
	if s.CrossposterUserFrac != 0.5 {
		t.Fatalf("crossposter user frac %v", s.CrossposterUserFrac)
	}
	if s.DailyCrossposterUsers[vclock.Day(post)] != 1 {
		t.Fatal("daily crossposter users wrong")
	}
	var moa *SourceCount
	for i := range s.Top30 {
		if s.Top30[i].Name == "Moa Bridge" {
			moa = &s.Top30[i]
		}
	}
	if moa == nil || moa.Pre != 0 || moa.Post != 2 {
		t.Fatalf("moa row %+v", moa)
	}
}

func TestSourceGrowth(t *testing.T) {
	if g := (SourceCount{Pre: 10, Post: 120}).Growth(); math.Abs(g-11) > 1e-9 {
		t.Fatalf("growth %v", g)
	}
	if g := (SourceCount{Pre: 0, Post: 0}).Growth(); g != 0 {
		t.Fatalf("zero growth %v", g)
	}
}

func TestRQ3Overlap(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover
	tweetText := "announcing my brand new project on decentralized social networks tonight"
	mkTimelines(ds, "u0",
		[]crawler.Post{{ID: "1", Time: at, Text: tweetText, Toxicity: -1}},
		[]crawler.Post{
			{ID: "2", Time: at, Text: tweetText, Toxicity: -1},                                      // identical
			{ID: "3", Time: at, Text: "totally unrelated gardening words about soil", Toxicity: -1}, // different
		})
	o := RQ3Overlap(ds, OverlapOptions{})
	if o.UsersCompared != 1 {
		t.Fatalf("users compared %d", o.UsersCompared)
	}
	if math.Abs(o.MeanIdentical-0.5) > 1e-9 {
		t.Fatalf("identical %v", o.MeanIdentical)
	}
	if o.MeanSimilar < 0.5 {
		t.Fatalf("similar %v (identical counts as similar)", o.MeanSimilar)
	}
	if o.CompletelyDifferentFrac != 0 {
		t.Fatalf("different %v", o.CompletelyDifferentFrac)
	}
}

func TestRQ3OverlapMaxUsers(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("u%d", i)
		mkTimelines(ds, id,
			[]crawler.Post{{ID: "t" + id, Time: at, Text: "hello world post", Toxicity: -1}},
			[]crawler.Post{{ID: "s" + id, Time: at, Text: "different text entirely here", Toxicity: -1}})
	}
	o := RQ3Overlap(ds, OverlapOptions{MaxUsers: 2})
	if o.UsersCompared != 2 {
		t.Fatalf("max users ignored: %d", o.UsersCompared)
	}
}

func TestRQ3Hashtags(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover
	mkTimelines(ds, "u0",
		[]crawler.Post{{ID: "1", Time: at, Text: "match tonight #Football #football", Toxicity: -1}},
		[]crawler.Post{{ID: "2", Time: at, Text: "hello #fediverse", Toxicity: -1}})
	h := RQ3Hashtags(ds)
	if len(h.Twitter) == 0 || h.Twitter[0].Key != "#football" || h.Twitter[0].Count != 2 {
		t.Fatalf("twitter tags %v", h.Twitter)
	}
	if len(h.Mastodon) == 0 || h.Mastodon[0].Key != "#fediverse" {
		t.Fatalf("mastodon tags %v", h.Mastodon)
	}
}

func TestRQ3ToxicityWithScores(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover
	mkTimelines(ds, "u0",
		[]crawler.Post{
			{ID: "1", Time: at, Text: "a", Toxicity: 0.9},
			{ID: "2", Time: at, Text: "b", Toxicity: 0.1},
		},
		[]crawler.Post{
			{ID: "3", Time: at, Text: "c", Toxicity: 0.8},
			{ID: "4", Time: at, Text: "d", Toxicity: 0.2},
			{ID: "5", Time: at, Text: "e", Toxicity: 0.2},
			{ID: "6", Time: at, Text: "f", Toxicity: 0.2},
		})
	x := RQ3Toxicity(ds, ToxicityOptions{})
	if x.OverallTweetToxic != 0.5 {
		t.Fatalf("tweet toxicity %v", x.OverallTweetToxic)
	}
	if x.OverallStatusToxic != 0.25 {
		t.Fatalf("status toxicity %v", x.OverallStatusToxic)
	}
	if x.BothPlatformsFrac != 1 {
		t.Fatalf("both platforms %v", x.BothPlatformsFrac)
	}
}

func TestRQ3ToxicityThreshold(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover
	mkTimelines(ds, "u0",
		[]crawler.Post{{ID: "1", Time: at, Text: "a", Toxicity: 0.6}}, nil)
	strict := RQ3Toxicity(ds, ToxicityOptions{Threshold: 0.8})
	if strict.OverallTweetToxic != 0 {
		t.Fatal("0.6 counted toxic at 0.8 threshold")
	}
	loose := RQ3Toxicity(ds, ToxicityOptions{Threshold: 0.5})
	if loose.OverallTweetToxic != 1 {
		t.Fatal("0.6 not toxic at 0.5 threshold")
	}
}

func TestRQ3ToxicityScoreFn(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover
	mkTimelines(ds, "u0",
		[]crawler.Post{{ID: "1", Time: at, Text: "unscored", Toxicity: -1}}, nil)
	// Without ScoreFn: skipped.
	x := RQ3Toxicity(ds, ToxicityOptions{})
	if x.ScoredTweets != 0 {
		t.Fatal("unscored post counted")
	}
	// With ScoreFn: scored.
	x = RQ3Toxicity(ds, ToxicityOptions{ScoreFn: func(string) float64 { return 0.9 }})
	if x.ScoredTweets != 1 || x.OverallTweetToxic != 1 {
		t.Fatalf("scorefn path: %+v", x)
	}
}

func TestCollectionFigure(t *testing.T) {
	ds := crawler.NewDataset()
	at := vclock.Takeover.Add(time.Hour)
	ds.CollectedTweets = []crawler.CollectedTweet{
		{ID: "1", Time: at, Class: crawler.ClassInstanceLink},
		{ID: "2", Time: at, Class: crawler.ClassKeyword},
		{ID: "3", Time: at, Class: crawler.ClassKeyword},
	}
	c := CollectionFigure(ds)
	d := vclock.Day(at)
	if c.InstanceLinks[d] != 1 || c.Keywords[d] != 2 {
		t.Fatalf("collection buckets: %d %d", c.InstanceLinks[d], c.Keywords[d])
	}
}

func TestActivityFigure(t *testing.T) {
	ds := crawler.NewDataset()
	wk1 := vclock.WeekStart(vclock.Week(vclock.StudyStart))
	wk2 := wk1.Add(7 * 24 * time.Hour)
	ds.Activity["a.example"] = []crawler.WeekActivity{
		{Week: wk1, Registrations: 1, Logins: 2, Statuses: 3},
		{Week: wk2, Registrations: 10, Logins: 20, Statuses: 30},
	}
	ds.Activity["b.example"] = []crawler.WeekActivity{
		{Week: wk1, Registrations: 5, Logins: 5, Statuses: 5},
	}
	a := ActivityFigure(ds)
	if len(a.Weeks) != 2 {
		t.Fatalf("weeks %v", a.Weeks)
	}
	if a.Registrations[0] != 6 || a.Statuses[0] != 8 {
		t.Fatalf("aggregation wrong: %v %v", a.Registrations, a.Statuses)
	}
	if a.Registrations[1] != 10 {
		t.Fatal("second week wrong")
	}
}

func TestDomainIsPersonal(t *testing.T) {
	if !domainIsPersonal("alice.page") || domainIsPersonal("mastodon.social") {
		t.Fatal("personal domain heuristic")
	}
}

func TestSourceIsOfficial(t *testing.T) {
	if !sourceIsOfficial("Twitter Web App") || !sourceIsOfficial("TweetDeck") {
		t.Fatal("official sources")
	}
	if sourceIsOfficial("Moa Bridge") {
		t.Fatal("bridge flagged official")
	}
}
