// Package analysis computes every result in the paper's evaluation
// (Figs. 1–16 plus the in-text statistics) from a crawled Dataset. It
// never touches world ground truth: its inputs are exactly what the
// paper's authors had.
package analysis

import (
	"sort"
	"time"

	"flock/internal/crawler"
	"flock/internal/parallel"
	"flock/internal/stats"
	"flock/internal/vclock"
)

// InstanceCount is one bar of Fig. 4: migrants whose accounts were
// created before vs after the acquisition, per instance.
type InstanceCount struct {
	Domain string
	Pre    int
	Post   int
}

// Total returns Pre+Post.
func (c InstanceCount) Total() int { return c.Pre + c.Post }

// SizeBucket is one instance-size quantile of Fig. 6 with the CDFs of
// its users' Mastodon network sizes and status counts.
type SizeBucket struct {
	Label     string
	Instances int
	Users     int
	Followers *stats.ECDF
	Followees *stats.ECDF
	Statuses  *stats.ECDF
}

// Centralization is the RQ1 result set (§4, Figs. 4–6).
type Centralization struct {
	// TopInstances are the Fig. 4 bars (descending by total).
	TopInstances []InstanceCount
	// TopShareCurve is Fig. 5: fraction of users on the top-x% instances.
	TopShareCurve []stats.Point
	// Top25Share is the headline number (paper: 96%).
	Top25Share float64
	// PreTakeoverAccountFrac: accounts created before the acquisition
	// (paper: 21%).
	PreTakeoverAccountFrac float64
	// SingleUserInstanceFrac: instances with exactly one migrant
	// (paper: 13.16%).
	SingleUserInstanceFrac float64
	// Buckets are the Fig. 6 size quantiles (ascending size), with
	// "single-user" broken out as its own first bucket.
	Buckets []SizeBucket
	// SingleVsLargest compares single-user-instance users to users of
	// the largest-quantile instances (paper: +64.88% followers, +99.04%
	// followees, +121.14% statuses).
	SingleVsLargest struct {
		FollowerBoost float64
		FolloweeBoost float64
		StatusBoost   float64
	}
	// InstancesReceiving is the count of distinct instances with >= 1
	// migrant (paper: 2,879).
	InstancesReceiving int
	// VerifiedFrac is the share of legacy-verified migrants (paper: 4%).
	VerifiedFrac float64
	// SameUsernameFrac is the share reusing their Twitter username
	// (paper: 72%).
	SameUsernameFrac float64
	// Gini of migrants across instances (not in the paper; a compact
	// centralization scalar for the report).
	Gini float64
}

// rq1Partial is the per-shard accumulator of the RQ1 pair scan: only
// commutative integer counters, so merge order cannot matter.
type rq1Partial struct {
	perInstance  map[string]*InstanceCount
	pre          int
	verified     int
	sameUsername int
}

// RQ1 computes the centralization results.
func (e Engine) RQ1(ds *crawler.Dataset) *Centralization {
	out := &Centralization{}

	// Migrants per final instance, split by account-creation time.
	agg := parallel.ReduceSharded(e.Workers, len(ds.Pairs),
		func(lo, hi int) rq1Partial {
			part := rq1Partial{perInstance: map[string]*InstanceCount{}}
			for i := lo; i < hi; i++ {
				p := &ds.Pairs[i]
				domain := p.FinalDomain()
				c := part.perInstance[domain]
				if c == nil {
					c = &InstanceCount{Domain: domain}
					part.perInstance[domain] = c
				}
				isPre := p.MastodonVerified && p.MastodonCreatedAt.Before(vclock.Takeover)
				if isPre {
					c.Pre++
					part.pre++
				} else {
					c.Post++
				}
				if p.Verified {
					part.verified++
				}
				if p.SameUsername {
					part.sameUsername++
				}
			}
			return part
		},
		func(a, b rq1Partial) rq1Partial {
			for domain, c := range b.perInstance {
				if ac := a.perInstance[domain]; ac != nil {
					ac.Pre += c.Pre
					ac.Post += c.Post
				} else {
					a.perInstance[domain] = c
				}
			}
			a.pre += b.pre
			a.verified += b.verified
			a.sameUsername += b.sameUsername
			return a
		})
	n := len(ds.Pairs)
	if n == 0 {
		return out
	}
	perInstance := agg.perInstance
	out.PreTakeoverAccountFrac = float64(agg.pre) / float64(n)
	out.VerifiedFrac = float64(agg.verified) / float64(n)
	out.SameUsernameFrac = float64(agg.sameUsername) / float64(n)
	out.InstancesReceiving = len(perInstance)

	counts := make([]InstanceCount, 0, len(perInstance))
	for _, c := range perInstance {
		counts = append(counts, *c)
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].Total() != counts[j].Total() {
			return counts[i].Total() > counts[j].Total()
		}
		return counts[i].Domain < counts[j].Domain
	})
	if len(counts) > 30 {
		out.TopInstances = counts[:30]
	} else {
		out.TopInstances = counts
	}

	// Fig. 5 ranks ALL indexed instances by size (user count from the
	// index crawl) and plots the share of migrated users hosted by the
	// top x%. Instances that received no migrants contribute rank but no
	// mass — that is what makes "96% of users on the top 25% of
	// instances" and "13.16% of instances have a single user"
	// simultaneously satisfiable.
	migrantsOn := map[string]int{}
	for _, c := range counts {
		migrantsOn[c.Domain] = c.Total()
	}
	rank := make([]int, 0, len(ds.Instances))
	mass := make([]int, 0, len(ds.Instances))
	seen := map[string]bool{}
	for _, inst := range ds.Instances {
		rank = append(rank, inst.Users)
		mass = append(mass, migrantsOn[inst.Name])
		seen[inst.Name] = true
	}
	// Receiving domains missing from the index (rare: freshly created
	// personal servers) still belong on the curve.
	for _, c := range counts {
		if !seen[c.Domain] {
			rank = append(rank, 1)
			mass = append(mass, c.Total())
		}
	}
	single := 0
	for _, c := range counts {
		if c.Total() == 1 {
			single++
		}
	}
	out.TopShareCurve = stats.TopShareBy(rank, mass, 100)
	if len(out.TopShareCurve) >= 25 {
		out.Top25Share = out.TopShareCurve[24].Y
	}
	out.SingleUserInstanceFrac = float64(single) / float64(len(counts))
	massOnly := make([]int, len(counts))
	for i, c := range counts {
		massOnly[i] = c.Total()
	}
	out.Gini = stats.Gini(massOnly)

	out.computeBuckets(e, ds, perInstance)
	return out
}

// computeBuckets builds the Fig. 6 quantile CDFs over the §4 cohort:
// users who joined after the acquisition with accounts at least 30 days
// old at crawl time.
func (c *Centralization) computeBuckets(e Engine, ds *crawler.Dataset, perInstance map[string]*InstanceCount) {
	type userRow struct {
		ok        bool
		size      int // instance migrant count
		followers float64
		followees float64
		statuses  float64
	}
	// Eligibility and row extraction fan out per pair; the filter fold
	// below runs serially in pair order so rows keep a stable order.
	slots := parallel.MapSlice(e.Workers, len(ds.Pairs), func(i int) userRow {
		p := &ds.Pairs[i]
		if !p.MastodonVerified {
			return userRow{}
		}
		if p.MastodonCreatedAt.Before(vclock.Takeover) {
			return userRow{} // §4: joined after the acquisition
		}
		if vclock.CrawlTime.Sub(p.MastodonCreatedAt) < 30*24*time.Hour {
			return userRow{} // §4: at least 30 days old for a fair comparison
		}
		ic := perInstance[p.FinalDomain()]
		if ic == nil {
			return userRow{}
		}
		return userRow{
			ok:        true,
			size:      ic.Total(),
			followers: float64(p.MastodonFollowers),
			followees: float64(p.MastodonFollowing),
			statuses:  float64(p.MastodonStatuses),
		}
	})
	var rows []userRow
	for _, r := range slots {
		if r.ok {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return
	}
	// Bucket 0: single-user instances; buckets 1..4: size quartiles of
	// the rest.
	var singles []userRow
	var rest []userRow
	for _, r := range rows {
		if r.size == 1 {
			singles = append(singles, r)
		} else {
			rest = append(rest, r)
		}
	}
	mk := func(label string, rs []userRow, instSet map[int]bool) SizeBucket {
		var fol, fee, st []float64
		for _, r := range rs {
			fol = append(fol, r.followers)
			fee = append(fee, r.followees)
			st = append(st, r.statuses)
		}
		return SizeBucket{
			Label:     label,
			Instances: len(instSet),
			Users:     len(rs),
			Followers: stats.NewECDF(fol),
			Followees: stats.NewECDF(fee),
			Statuses:  stats.NewECDF(st),
		}
	}
	singleInst := map[int]bool{}
	for range singles {
		singleInst[1] = true
	}
	c.Buckets = append(c.Buckets, mk("single-user", singles, singleInst))
	if len(rest) > 0 {
		sizesF := make([]float64, len(rest))
		for i, r := range rest {
			sizesF[i] = float64(r.size)
		}
		buckets := stats.QuantileBuckets(sizesF, 4)
		grouped := make([][]userRow, 4)
		instSets := make([]map[int]bool, 4)
		for i := range instSets {
			instSets[i] = map[int]bool{}
		}
		for i, b := range buckets {
			grouped[b] = append(grouped[b], rest[i])
			instSets[b][rest[i].size] = true
		}
		labels := []string{"q1 (smallest)", "q2", "q3", "q4 (largest)"}
		for i, g := range grouped {
			c.Buckets = append(c.Buckets, mk(labels[i], g, instSets[i]))
		}
	}
	// Single vs largest quantile boosts.
	if len(c.Buckets) >= 2 {
		s := c.Buckets[0]
		l := c.Buckets[len(c.Buckets)-1]
		if s.Users > 0 && l.Users > 0 {
			boost := func(a, b *stats.ECDF) float64 {
				am, bm := meanOf(a), meanOf(b)
				if bm == 0 {
					return 0
				}
				return (am - bm) / bm
			}
			c.SingleVsLargest.FollowerBoost = boost(s.Followers, l.Followers)
			c.SingleVsLargest.FolloweeBoost = boost(s.Followees, l.Followees)
			c.SingleVsLargest.StatusBoost = boost(s.Statuses, l.Statuses)
		}
	}
}

// meanOf computes the mean of an ECDF's samples via its points.
func meanOf(e *stats.ECDF) float64 {
	if e.N() == 0 {
		return 0
	}
	pts := e.Points(e.N())
	var sum float64
	for _, p := range pts {
		sum += p.X
	}
	return sum / float64(len(pts))
}
