package analysis

import (
	"sort"
	"strings"

	"flock/internal/crawler"
	"flock/internal/parallel"
	"flock/internal/stats"
	"flock/internal/vclock"
)

// NetworkSizes is the Fig. 7 result: CDFs of follower/followee counts on
// both platforms plus the §5.1 in-text statistics.
type NetworkSizes struct {
	TwitterFollowers  *stats.ECDF
	TwitterFollowees  *stats.ECDF
	MastodonFollowers *stats.ECDF
	MastodonFollowees *stats.ECDF

	MedianTwitterFollowers  float64
	MedianTwitterFollowees  float64
	MedianMastodonFollowers float64
	MedianMastodonFollowees float64

	// NoTwitterFollowersFrac etc. (paper: 0.11%, 0.35%, 6.01%, 3.6%).
	NoTwitterFollowersFrac  float64
	NoTwitterFolloweesFrac  float64
	NoMastodonFollowersFrac float64
	NoMastodonFolloweesFrac float64
	// MoreMastodonFollowersFrac: users with more followers on Mastodon
	// than Twitter (paper: 1.65%).
	MoreMastodonFollowersFrac float64
}

// SocialNetworkSizes computes Fig. 7 over all verified pairs.
func (e Engine) SocialNetworkSizes(ds *crawler.Dataset) *NetworkSizes {
	out := &NetworkSizes{}
	type row struct {
		ok                 bool
		twF, twE, mF, mE   float64
		noTwF, noTwE, noMF bool
		noME, moreM        bool
	}
	slots := parallel.MapSlice(e.Workers, len(ds.Pairs), func(i int) row {
		p := &ds.Pairs[i]
		if !p.MastodonVerified {
			return row{}
		}
		return row{
			ok:    true,
			twF:   float64(p.TwitterFollowers),
			twE:   float64(p.TwitterFollowing),
			mF:    float64(p.MastodonFollowers),
			mE:    float64(p.MastodonFollowing),
			noTwF: p.TwitterFollowers == 0,
			noTwE: p.TwitterFollowing == 0,
			noMF:  p.MastodonFollowers == 0,
			noME:  p.MastodonFollowing == 0,
			moreM: p.MastodonFollowers > p.TwitterFollowers,
		}
	})
	var twF, twE, mF, mE []float64
	var noTwF, noTwE, noMF, noME, moreM int
	n := 0
	for _, r := range slots {
		if !r.ok {
			continue
		}
		n++
		twF = append(twF, r.twF)
		twE = append(twE, r.twE)
		mF = append(mF, r.mF)
		mE = append(mE, r.mE)
		if r.noTwF {
			noTwF++
		}
		if r.noTwE {
			noTwE++
		}
		if r.noMF {
			noMF++
		}
		if r.noME {
			noME++
		}
		if r.moreM {
			moreM++
		}
	}
	if n == 0 {
		return out
	}
	out.TwitterFollowers = stats.NewECDF(twF)
	out.TwitterFollowees = stats.NewECDF(twE)
	out.MastodonFollowers = stats.NewECDF(mF)
	out.MastodonFollowees = stats.NewECDF(mE)
	out.MedianTwitterFollowers = out.TwitterFollowers.Median()
	out.MedianTwitterFollowees = out.TwitterFollowees.Median()
	out.MedianMastodonFollowers = out.MastodonFollowers.Median()
	out.MedianMastodonFollowees = out.MastodonFollowees.Median()
	fn := float64(n)
	out.NoTwitterFollowersFrac = float64(noTwF) / fn
	out.NoTwitterFolloweesFrac = float64(noTwE) / fn
	out.NoMastodonFollowersFrac = float64(noMF) / fn
	out.NoMastodonFolloweesFrac = float64(noME) / fn
	out.MoreMastodonFollowersFrac = float64(moreM) / fn
	return out
}

// Contagion is the Fig. 8 / §5.2 result over the followee sample.
type Contagion struct {
	// FracMigrated / FracBefore / FracSameInstance are the Fig. 8 CDFs:
	// per sampled user, the fraction of their Twitter followees that
	// (i) migrated, (ii) migrated before the user, (iii) landed on the
	// same instance (of those that migrated).
	FracMigrated     *stats.ECDF
	FracBefore       *stats.ECDF
	FracSameInstance *stats.ECDF

	MeanFracMigrated     float64 // paper: 5.99%
	NoneMigratedFrac     float64 // paper: 3.94%
	UserFirstFrac        float64 // paper: 4.98%
	UserLastFrac         float64 // paper: 4.58%
	MeanFracBefore       float64 // paper: 45.76%
	MeanFracSameInstance float64 // paper: 14.72%
	// MastodonSocialShareOfSame: of users whose followees co-located,
	// the share on mastodon.social (paper: 30.68%).
	MastodonSocialShareOfSame float64
	SampleSize                int
	FolloweeEdges             int
}

// RQ2Contagion computes the social-influence results.
func (e Engine) RQ2Contagion(ds *crawler.Dataset) *Contagion {
	out := &Contagion{}
	pairs := ds.PairByTwitterID()

	// Sorted user IDs make the per-user fold order (and hence every
	// float accumulation below) independent of Go map iteration order.
	ids := sortedKeys(ds.TwitterFollowees)

	type egoRow struct {
		ok            bool
		followees     int
		fracMigrated  float64
		migrated      int
		fracBefore    float64
		fracSame      float64
		anyBefore     bool
		anyAfter      bool
		sameColocated bool
		myDomain      string
	}
	slots := parallel.MapSlice(e.Workers, len(ids), func(i int) egoRow {
		userID := ids[i]
		followees := ds.TwitterFollowees[userID]
		me := pairs[userID]
		if me == nil || !me.MastodonVerified {
			return egoRow{}
		}
		r := egoRow{ok: true, followees: len(followees)}
		if len(followees) == 0 {
			return r
		}
		migrated := 0
		before := 0
		sameInst := 0
		myDomain := me.FinalDomain()
		myJoin := me.MastodonCreatedAt
		for _, f := range followees {
			fp := pairs[f.TwitterID]
			if fp == nil || !fp.MastodonVerified {
				continue
			}
			migrated++
			if fp.MastodonCreatedAt.Before(myJoin) {
				before++
				r.anyBefore = true
			} else {
				r.anyAfter = true
			}
			if fp.FinalDomain() == myDomain {
				sameInst++
			}
		}
		r.fracMigrated = float64(migrated) / float64(len(followees))
		r.migrated = migrated
		if migrated > 0 {
			r.fracBefore = float64(before) / float64(migrated)
			r.fracSame = float64(sameInst) / float64(migrated)
			r.sameColocated = sameInst > 0
			r.myDomain = myDomain
		}
		return r
	})

	var fracMigrated, fracBefore, fracSame []float64
	var none, first, last int
	sameByDomain := map[string]int{}
	sameTotal := 0
	for _, r := range slots {
		if !r.ok {
			continue
		}
		out.SampleSize++
		out.FolloweeEdges += r.followees
		if r.followees == 0 {
			continue
		}
		fracMigrated = append(fracMigrated, r.fracMigrated)
		if r.migrated == 0 {
			none++
			continue
		}
		fracBefore = append(fracBefore, r.fracBefore)
		fracSame = append(fracSame, r.fracSame)
		if !r.anyBefore {
			first++ // user migrated before every migrating followee
		}
		if !r.anyAfter {
			last++
		}
		if r.sameColocated {
			sameByDomain[r.myDomain]++
			sameTotal++
		}
	}
	out.FracMigrated = stats.NewECDF(fracMigrated)
	out.FracBefore = stats.NewECDF(fracBefore)
	out.FracSameInstance = stats.NewECDF(fracSame)
	out.MeanFracMigrated = stats.Mean(fracMigrated)
	out.MeanFracBefore = stats.Mean(fracBefore)
	out.MeanFracSameInstance = stats.Mean(fracSame)
	if out.SampleSize > 0 {
		out.NoneMigratedFrac = float64(none) / float64(out.SampleSize)
		out.UserFirstFrac = float64(first) / float64(out.SampleSize)
		out.UserLastFrac = float64(last) / float64(out.SampleSize)
	}
	if sameTotal > 0 {
		out.MastodonSocialShareOfSame = float64(sameByDomain["mastodon.social"]) / float64(sameTotal)
	}
	return out
}

// Switching is the §5.3 / Figs. 9–10 result.
type Switching struct {
	// SwitcherFrac: share of pairs with a moved record (paper: 4.09%).
	SwitcherFrac float64
	// PostTakeoverFrac: switches dated after the takeover (paper: 97.22%).
	PostTakeoverFrac float64
	// Chord is the Fig. 9 first-instance -> second-instance flow matrix.
	Chord *stats.Chord
	// FlagshipToTopicalFrac: switches leaving a flagship/general server
	// for a smaller one (the Fig. 9 "common pattern").
	FlagshipToTopicalFrac float64

	// Fig. 10 CDFs over switchers with followee data: fraction of
	// migrated followees on the first instance, on the second instance,
	// and (of those on the second) who arrived before the user switched.
	FracFirst            *stats.ECDF
	FracSecond           *stats.ECDF
	FracSecondBefore     *stats.ECDF
	MeanFracFirst        float64 // paper: 11.4%
	MeanFracSecond       float64 // paper: 46.98%
	MeanFracSecondBefore float64 // paper: 77.42%
	Switchers            int
	SwitchersWithEgo     int
}

// RQ2Switching computes the instance-switching results.
func (e Engine) RQ2Switching(ds *crawler.Dataset) *Switching {
	out := &Switching{Chord: stats.NewChord()}
	if len(ds.Pairs) == 0 {
		return out
	}
	pairs := ds.PairByTwitterID()

	// Count migrants per first-instance domain to spot flagships (top 3
	// by incoming migrants approximate the paper's flagship set). The
	// domain universe is bounded by the instance index, so pre-sizing
	// avoids rehash churn on large crawls.
	perDomain := make(map[string]int, len(ds.Instances))
	for i := range ds.Pairs {
		perDomain[ds.Pairs[i].Handle.Domain]++
	}
	type dc struct {
		d string
		n int
	}
	ranked := make([]dc, 0, len(perDomain))
	for d, n := range perDomain {
		ranked = append(ranked, dc{d, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].d < ranked[j].d
	})
	bigDomains := make(map[string]bool, 3)
	k := 3
	if k >= len(ranked) {
		k = len(ranked) - 1 // always leave at least one non-big domain
	}
	for i := 0; i < k; i++ {
		bigDomains[ranked[i].d] = true
	}

	var switchers []*crawler.AccountPair
	postTakeover := 0
	fromBig := 0
	for i := range ds.Pairs {
		p := &ds.Pairs[i]
		if p.Moved == nil {
			continue
		}
		switchers = append(switchers, p)
		out.Chord.Add(p.Handle.Domain, p.Moved.Handle.Domain, 1)
		if vclock.PostTakeover(p.Moved.MovedAt) {
			postTakeover++
		}
		if bigDomains[p.Handle.Domain] && !bigDomains[p.Moved.Handle.Domain] {
			fromBig++
		}
	}
	out.Switchers = len(switchers)
	out.SwitcherFrac = float64(len(switchers)) / float64(len(ds.Pairs))
	if len(switchers) > 0 {
		out.PostTakeoverFrac = float64(postTakeover) / float64(len(switchers))
		out.FlagshipToTopicalFrac = float64(fromBig) / float64(len(switchers))
	}

	// Fig. 10: ego networks of switchers, one slot per switcher.
	type egoRow struct {
		hasEgo          bool
		migrated        int
		fFirst, fSecond float64
		hasSecond       bool
		fSecondBefore   float64
	}
	slots := parallel.MapSlice(e.Workers, len(switchers), func(i int) egoRow {
		p := switchers[i]
		followees, ok := ds.TwitterFollowees[p.TwitterID]
		if !ok {
			return egoRow{}
		}
		r := egoRow{hasEgo: true}
		migrated, onFirst, onSecond, secondBefore := 0, 0, 0, 0
		for _, f := range followees {
			fp := pairs[f.TwitterID]
			if fp == nil || !fp.MastodonVerified {
				continue
			}
			migrated++
			// "at some point also join": first or final domain matches.
			joinsFirst := fp.Handle.Domain == p.Handle.Domain || fp.FinalDomain() == p.Handle.Domain
			joinsSecond := fp.Handle.Domain == p.Moved.Handle.Domain || fp.FinalDomain() == p.Moved.Handle.Domain
			if joinsFirst {
				onFirst++
			}
			if joinsSecond {
				onSecond++
				// When did they arrive at the second instance?
				arrival := fp.MastodonCreatedAt
				if fp.Moved != nil && fp.Moved.Handle.Domain == p.Moved.Handle.Domain {
					arrival = fp.Moved.MovedAt
				}
				if arrival.Before(p.Moved.MovedAt) {
					secondBefore++
				}
			}
		}
		r.migrated = migrated
		if migrated > 0 {
			r.fFirst = float64(onFirst) / float64(migrated)
			r.fSecond = float64(onSecond) / float64(migrated)
			if onSecond > 0 {
				r.hasSecond = true
				r.fSecondBefore = float64(secondBefore) / float64(onSecond)
			}
		}
		return r
	})
	var fFirst, fSecond, fSecondBefore []float64
	for _, r := range slots {
		if !r.hasEgo {
			continue
		}
		out.SwitchersWithEgo++
		if r.migrated == 0 {
			continue
		}
		fFirst = append(fFirst, r.fFirst)
		fSecond = append(fSecond, r.fSecond)
		if r.hasSecond {
			fSecondBefore = append(fSecondBefore, r.fSecondBefore)
		}
	}
	out.FracFirst = stats.NewECDF(fFirst)
	out.FracSecond = stats.NewECDF(fSecond)
	out.FracSecondBefore = stats.NewECDF(fSecondBefore)
	out.MeanFracFirst = stats.Mean(fFirst)
	out.MeanFracSecond = stats.Mean(fSecond)
	out.MeanFracSecondBefore = stats.Mean(fSecondBefore)
	return out
}

// TopSwitchTargets returns the most common destination domains in the
// chord, for the Fig. 9 narrative ("users move from flagship to
// topic-specific instances").
func (s *Switching) TopSwitchTargets(k int) []stats.FreqCount {
	counts := map[string]int{}
	for _, f := range s.Chord.TopFlows(0) {
		counts[f.To] += f.Count
	}
	return stats.TopK(counts, k)
}

// domainIsPersonal is a heuristic used in reporting: personal servers in
// the simulation use the owner's name with a ".page" suffix.
func domainIsPersonal(domain string) bool {
	return strings.HasSuffix(domain, ".page")
}
