// Package trendsvc simulates the Google Trends search-interest series
// behind Fig. 1: daily interest (0-100 normalized to the window peak) for
// "Twitter alternatives", "Mastodon", "Koo" and "Hive Social", with the
// spike structure the paper shows — a jump the day after the takeover
// and echoes at the layoffs and the ultimatum.
package trendsvc

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"time"

	"flock/internal/vclock"
)

// Host is the hostname the service binds on the fabric.
const Host = "trends.test"

// Point is one day of interest.
type Point struct {
	Date     string `json:"date"` // YYYY-MM-DD
	Interest int    `json:"interest"`
}

// SeriesResponse is the /trends/api/series payload.
type SeriesResponse struct {
	Term   string  `json:"term"`
	Points []Point `json:"points"`
}

// terms maps supported search terms to their response profile:
// base level, takeover spike multiplier, persistence.
var terms = map[string]struct {
	base    float64
	spike   float64
	persist float64 // how much post-spike interest persists
}{
	"twitter alternatives": {base: 2, spike: 100, persist: 0.18},
	"mastodon":             {base: 5, spike: 100, persist: 0.45},
	"koo":                  {base: 3, spike: 38, persist: 0.20},
	"hive social":          {base: 1, spike: 30, persist: 0.30},
}

// Terms lists the supported search terms.
func Terms() []string {
	return []string{"twitter alternatives", "mastodon", "koo", "hive social"}
}

// Series computes the daily interest series for a term over the study
// window. Unknown terms return nil.
func Series(term string) []Point {
	prof, ok := terms[strings.ToLower(term)]
	if !ok {
		return nil
	}
	spikeDay := vclock.Day(vclock.Takeover) + 1 // paper: spike on Oct 28
	layoffsDay := vclock.Day(vclock.Layoffs)
	ultimatumDay := vclock.Day(vclock.Ultimatum)

	raw := make([]float64, vclock.StudyDays)
	for d := range raw {
		v := prof.base
		v += bump(d, spikeDay, 3.2, prof.spike)
		v += bump(d, layoffsDay, 3.0, prof.spike*0.45)
		v += bump(d, ultimatumDay, 3.5, prof.spike*0.40)
		if d > spikeDay {
			v += prof.spike * prof.persist * math.Exp(-float64(d-spikeDay)/25)
		}
		raw[d] = v
	}
	// Normalize to 0-100 like Trends.
	peak := 0.0
	for _, v := range raw {
		if v > peak {
			peak = v
		}
	}
	pts := make([]Point, vclock.StudyDays)
	for d, v := range raw {
		pts[d] = Point{
			Date:     vclock.DayStart(d).Format("2006-01-02"),
			Interest: int(math.Round(100 * v / peak)),
		}
	}
	return pts
}

// bump is an asymmetric spike: sharp rise at day0, exponential decay.
func bump(d, day0 int, tau, height float64) float64 {
	if d < day0 {
		return 0
	}
	return height * math.Exp(-float64(d-day0)/tau)
}

// Handler serves GET /trends/api/series?term=X.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /trends/api/series", func(w http.ResponseWriter, r *http.Request) {
		term := r.URL.Query().Get("term")
		pts := Series(term)
		if pts == nil {
			http.Error(w, `{"error":"unknown term"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(SeriesResponse{Term: strings.ToLower(term), Points: pts})
	})
	return mux
}

// PeakDate returns the date of a term's peak interest, for tests and the
// Fig. 1 renderer.
func PeakDate(term string) (time.Time, bool) {
	pts := Series(term)
	if pts == nil {
		return time.Time{}, false
	}
	best, bestI := 0, -1
	for i, p := range pts {
		if p.Interest > best {
			best, bestI = p.Interest, i
		}
	}
	return vclock.DayStart(bestI), bestI >= 0
}
