package trendsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flock/internal/vclock"
)

func TestSeriesShape(t *testing.T) {
	for _, term := range Terms() {
		pts := Series(term)
		if len(pts) != vclock.StudyDays {
			t.Fatalf("%s: %d points", term, len(pts))
		}
		peak := 0
		for _, p := range pts {
			if p.Interest < 0 || p.Interest > 100 {
				t.Fatalf("%s: interest %d out of range", term, p.Interest)
			}
			if p.Interest > peak {
				peak = p.Interest
			}
		}
		if peak != 100 {
			t.Fatalf("%s: peak = %d, want normalized to 100", term, peak)
		}
	}
}

func TestSpikeAfterTakeover(t *testing.T) {
	// Paper: "a large spike on October 28, the day after Musk's
	// takeover".
	peak, ok := PeakDate("twitter alternatives")
	if !ok {
		t.Fatal("no peak")
	}
	want := vclock.Takeover.Add(24 * time.Hour)
	if !peak.Equal(want) {
		t.Fatalf("peak at %s, want %s", peak, want)
	}
}

func TestPreTakeoverQuiet(t *testing.T) {
	pts := Series("mastodon")
	takeover := vclock.Day(vclock.Takeover)
	for d := 0; d < takeover; d++ {
		if pts[d].Interest > 20 {
			t.Fatalf("day %d interest %d before takeover", d, pts[d].Interest)
		}
	}
}

func TestMastodonOutlastsKoo(t *testing.T) {
	// Mastodon's interest persists; Koo's spike fades faster relative to
	// its own peak.
	m, k := Series("mastodon"), Series("koo")
	end := vclock.StudyDays - 1
	if m[end].Interest <= k[end].Interest {
		t.Fatalf("end-of-window interest: mastodon %d vs koo %d", m[end].Interest, k[end].Interest)
	}
}

func TestUnknownTerm(t *testing.T) {
	if Series("friendster") != nil {
		t.Fatal("unknown term returned data")
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trends/api/series?term=mastodon")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Term != "mastodon" || len(sr.Points) != vclock.StudyDays {
		t.Fatalf("bad response: %s %d", sr.Term, len(sr.Points))
	}
	resp2, err := http.Get(srv.URL + "/trends/api/series?term=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown term status %d", resp2.StatusCode)
	}
}
