package indexsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"flock/internal/world"
)

func newService(t *testing.T) (*world.World, *Service, *httptest.Server) {
	t.Helper()
	cfg := world.DefaultConfig(150)
	cfg.Seed = 3
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(w)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return w, s, srv
}

func fetch(t *testing.T, url string) (ListResponse, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr ListResponse
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
	}
	return lr, resp
}

func TestListAll(t *testing.T) {
	w, s, srv := newService(t)
	lr, _ := fetch(t, srv.URL+"/api/1.0/instances/list?count=0")
	if len(lr.Instances) != s.Len() {
		t.Fatalf("listed %d, service has %d", len(lr.Instances), s.Len())
	}
	if lr.Pagination.Total != s.Len() {
		t.Fatal("total mismatch")
	}
	// Claimed instances (with domains) should all be present.
	named := 0
	for _, inst := range w.Instances {
		if inst.Domain != "" {
			named++
		}
	}
	if len(lr.Instances) != named {
		t.Fatalf("listed %d, world has %d named", len(lr.Instances), named)
	}
}

func TestListSortedByUsers(t *testing.T) {
	_, _, srv := newService(t)
	lr, _ := fetch(t, srv.URL+"/api/1.0/instances/list?count=0")
	for i := 1; i < len(lr.Instances); i++ {
		if lr.Instances[i].Users > lr.Instances[i-1].Users {
			t.Fatal("not sorted by users desc")
		}
	}
	if lr.Instances[0].Name != "mastodon.social" {
		t.Fatalf("largest instance is %q", lr.Instances[0].Name)
	}
}

func TestListPagination(t *testing.T) {
	_, s, srv := newService(t)
	seen := map[string]bool{}
	page := 0
	for {
		lr, _ := fetch(t, srv.URL+"/api/1.0/instances/list?count=10&page="+strconv.Itoa(page))
		for _, inst := range lr.Instances {
			if seen[inst.Name] {
				t.Fatalf("instance %q duplicated across pages", inst.Name)
			}
			seen[inst.Name] = true
		}
		if lr.Pagination.NextPage == "" {
			break
		}
		page++
		if page > 1000 {
			t.Fatal("runaway pagination")
		}
	}
	if len(seen) != s.Len() {
		t.Fatalf("pagination covered %d of %d", len(seen), s.Len())
	}
}

func TestDownFlagged(t *testing.T) {
	w, _, srv := newService(t)
	lr, _ := fetch(t, srv.URL+"/api/1.0/instances/list?count=0")
	downWorld := 0
	for _, inst := range w.Instances {
		if inst.Down && inst.Domain != "" {
			downWorld++
		}
	}
	downListed := 0
	for _, inst := range lr.Instances {
		if !inst.Up {
			downListed++
		}
	}
	if downWorld != downListed {
		t.Fatalf("down: world %d vs listed %d", downWorld, downListed)
	}
}

func TestBadParams(t *testing.T) {
	_, _, srv := newService(t)
	for _, q := range []string{"?count=abc", "?page=-1&count=5"} {
		_, resp := fetch(t, srv.URL+"/api/1.0/instances/list"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d", q, resp.StatusCode)
		}
	}
}
