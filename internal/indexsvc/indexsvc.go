// Package indexsvc simulates the instances.social index the paper used
// to seed its crawl (§3.1: "We collect a global list of Mastodon
// instances from instances.social"). It serves the instance roster with
// the list semantics of the real API: paged listing with per-instance
// user/status counts and an up/down flag.
package indexsvc

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"flock/internal/world"
)

// Host is the hostname the index binds on the fabric.
const Host = "instances.social.test"

// InstanceDTO is one row of the index listing.
type InstanceDTO struct {
	Name     string `json:"name"`
	Users    int    `json:"users"`
	Statuses int    `json:"statuses"`
	Up       bool   `json:"up"`
}

// ListResponse is the /api/1.0/instances/list payload.
type ListResponse struct {
	Instances []InstanceDTO `json:"instances"`
	Pagination struct {
		Total    int    `json:"total"`
		NextPage string `json:"next_page,omitempty"`
	} `json:"pagination"`
}

// Service serves the index.
type Service struct {
	rows []InstanceDTO
}

// New snapshots the world's instance roster. Instances without a domain
// (unclaimed personal slots) are not listed; the real index obviously
// only lists servers that exist.
func New(w *world.World) *Service {
	migrants := make([]int, len(w.Instances))
	for _, u := range w.Migrants {
		migrants[w.Users[u].FinalInstance()]++
	}
	s := &Service{}
	for _, inst := range w.Instances {
		if inst.Domain == "" {
			continue
		}
		s.rows = append(s.rows, InstanceDTO{
			Name:     inst.Domain,
			Users:    inst.TotalUsers(migrants[inst.ID]),
			Statuses: inst.NativeUsers*40 + migrants[inst.ID]*20,
			Up:       !inst.Down,
		})
	}
	sort.Slice(s.rows, func(i, j int) bool { return s.rows[i].Users > s.rows[j].Users })
	return s
}

// Len returns the number of listed instances.
func (s *Service) Len() int { return len(s.rows) }

// Handler returns the HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/1.0/instances/list", func(w http.ResponseWriter, r *http.Request) {
		qs := r.URL.Query()
		count := len(s.rows)
		if v := qs.Get("count"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, `{"error":"invalid count"}`, http.StatusBadRequest)
				return
			}
			if n > 0 {
				count = n
			}
		}
		offset := 0
		if v := qs.Get("page"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, `{"error":"invalid page"}`, http.StatusBadRequest)
				return
			}
			offset = n * count
		}
		var resp ListResponse
		resp.Pagination.Total = len(s.rows)
		for i := offset; i < len(s.rows) && i < offset+count; i++ {
			resp.Instances = append(resp.Instances, s.rows[i])
		}
		if offset+count < len(s.rows) {
			resp.Pagination.NextPage = strconv.Itoa(offset/count + 1)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	return mux
}
