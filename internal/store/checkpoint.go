package store

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flock/internal/crawler"
)

// FileCheckpoint implements crawler.Checkpoint on a single gzip-JSON
// file. Saves are atomic (written to a sibling temp file, then renamed),
// so a crash mid-save leaves the previous checkpoint intact and a
// resumed crawl never sees a torn file.
type FileCheckpoint struct {
	Path string
}

// NewFileCheckpoint builds a checkpoint backed by path. The parent
// directory is created on first Save.
func NewFileCheckpoint(path string) *FileCheckpoint {
	return &FileCheckpoint{Path: path}
}

// Load reads the last saved progress. A missing file is not an error: it
// returns (nil, nil), meaning "fresh crawl".
func (f *FileCheckpoint) Load() (*crawler.Progress, error) {
	file, err := os.Open(f.Path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open checkpoint: %w", err)
	}
	defer file.Close()
	zr, err := gzip.NewReader(file)
	if err != nil {
		return nil, fmt.Errorf("store: checkpoint %s: %w", f.Path, err)
	}
	var prog crawler.Progress
	if err := json.NewDecoder(zr).Decode(&prog); err != nil {
		zr.Close()
		return nil, fmt.Errorf("store: decode checkpoint %s: %w", f.Path, err)
	}
	// The JSON decoder stops at the end of the value, before the gzip
	// stream trailer — drain to EOF and Close so the CRC32/length check
	// actually runs. Without this, a truncated or tail-corrupted file
	// decodes silently into bad progress.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, fmt.Errorf("store: checkpoint %s corrupted: %w", f.Path, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("store: checkpoint %s corrupted: %w", f.Path, err)
	}
	return &prog, nil
}

// Save atomically persists the progress snapshot.
func (f *FileCheckpoint) Save(prog *crawler.Progress) error {
	if err := os.MkdirAll(filepath.Dir(f.Path), 0o755); err != nil {
		return fmt.Errorf("store: checkpoint dir: %w", err)
	}
	return atomicWriteFile(f.Path, 0o644, func(w io.Writer) error {
		zw := gzip.NewWriter(w)
		if err := json.NewEncoder(zw).Encode(prog); err != nil {
			return fmt.Errorf("store: encode checkpoint: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("store: flush checkpoint: %w", err)
		}
		return nil
	})
}

// Clear removes the checkpoint file (missing is fine).
func (f *FileCheckpoint) Clear() error {
	if err := os.Remove(f.Path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: clear checkpoint: %w", err)
	}
	return nil
}
