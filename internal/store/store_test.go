package store

import (
	"strings"
	"testing"
	"time"

	"flock/internal/crawler"
	"flock/internal/match"
)

// sampleDataset builds a small dataset by hand.
func sampleDataset() *crawler.Dataset {
	ds := crawler.NewDataset()
	ds.Instances = []crawler.IndexedInstance{
		{Name: "mastodon.social", Users: 1000, Up: true},
		{Name: "tiny.town", Users: 3, Up: false},
	}
	at := time.Date(2022, 11, 1, 10, 0, 0, 0, time.UTC)
	ds.CollectedTweets = []crawler.CollectedTweet{
		{ID: "100", AuthorID: "7", Time: at, Text: "bye! @alice@mastodon.social", Source: "Twitter Web App", Class: crawler.ClassKeyword},
	}
	ds.Pairs = []crawler.AccountPair{
		{
			TwitterID:         "7",
			TwitterUsername:   "alice",
			Handle:            match.Handle{Username: "alice", Domain: "mastodon.social"},
			MatchSource:       match.SourceTweet,
			SameUsername:      true,
			MastodonVerified:  true,
			MastodonAccountID: "9001",
			MastodonCreatedAt: at,
			Moved: &crawler.MovedRecord{
				Handle:    match.Handle{Username: "alice", Domain: "tiny.town"},
				AccountID: "42",
				MovedAt:   at.Add(time.Hour),
			},
		},
	}
	ds.TwitterTimelines["7"] = &crawler.TwitterTimeline{
		State: crawler.StateOK,
		Posts: []crawler.Post{{ID: "100", Time: at, Text: "hi", Source: "Twitter Web App", Toxicity: 0.1}},
	}
	ds.MastodonTimelines["7"] = &crawler.MastodonTimeline{
		State: crawler.StateOK,
		Posts: []crawler.Post{{ID: "200", Time: at, Text: "hello fedi", Domain: "mastodon.social", Toxicity: -1}},
	}
	ds.TwitterFollowees["7"] = []crawler.FolloweeRef{{TwitterID: "8", Username: "bob"}}
	ds.MastodonFollowing["7"] = []string{"@bob@tiny.town"}
	ds.Activity["mastodon.social"] = []crawler.WeekActivity{
		{Week: at.Truncate(24 * time.Hour), Statuses: 10, Logins: 5, Registrations: 2},
	}
	return ds
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := sampleDataset()
	if err := Save(dir, ds, false); err != nil {
		t.Fatal(err)
	}
	got, m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counts.Pairs != 1 || m.Anonymized {
		t.Fatalf("manifest %+v", m)
	}
	if len(got.Instances) != 2 || got.Instances[1].Name != "tiny.town" {
		t.Fatalf("instances %v", got.Instances)
	}
	if len(got.CollectedTweets) != 1 || got.CollectedTweets[0].Text != ds.CollectedTweets[0].Text {
		t.Fatal("collected tweets lost")
	}
	p := got.Pairs[0]
	if p.TwitterUsername != "alice" || p.Moved == nil || p.Moved.Handle.Domain != "tiny.town" {
		t.Fatalf("pair %+v", p)
	}
	if !p.Moved.MovedAt.Equal(ds.Pairs[0].Moved.MovedAt) {
		t.Fatal("moved time lost")
	}
	tl := got.TwitterTimelines["7"]
	if tl == nil || tl.State != crawler.StateOK || len(tl.Posts) != 1 || tl.Posts[0].Toxicity != 0.1 {
		t.Fatalf("twitter timeline %+v", tl)
	}
	if got.MastodonTimelines["7"].Posts[0].Domain != "mastodon.social" {
		t.Fatal("status domain lost")
	}
	if got.TwitterFollowees["7"][0].Username != "bob" {
		t.Fatal("followees lost")
	}
	if got.MastodonFollowing["7"][0] != "@bob@tiny.town" {
		t.Fatal("mastodon following lost")
	}
	if got.Activity["mastodon.social"][0].Statuses != 10 {
		t.Fatal("activity lost")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Fatal("load of empty dir succeeded")
	}
}

func TestAnonymizerStable(t *testing.T) {
	a := NewAnonymizer("salt1")
	if a.Pseudonym("alice") != a.Pseudonym("alice") {
		t.Fatal("pseudonym not stable")
	}
	if a.Pseudonym("alice") == a.Pseudonym("bob") {
		t.Fatal("collision")
	}
	b := NewAnonymizer("salt2")
	if a.Pseudonym("alice") == b.Pseudonym("alice") {
		t.Fatal("salt has no effect")
	}
}

func TestAnonymizeRemovesIdentifiers(t *testing.T) {
	ds := sampleDataset()
	anon := NewAnonymizer("secret").Anonymize(ds)

	// No raw identifiers anywhere.
	if anon.Pairs[0].TwitterUsername == "alice" || anon.Pairs[0].TwitterID == "7" {
		t.Fatal("twitter identity leaked")
	}
	if anon.Pairs[0].Handle.Username == "alice" {
		t.Fatal("mastodon username leaked")
	}
	// Domains are retained by design.
	if anon.Pairs[0].Handle.Domain != "mastodon.social" {
		t.Fatal("domain should be retained")
	}
	if anon.Pairs[0].Moved.Handle.Domain != "tiny.town" {
		t.Fatal("moved domain should be retained")
	}
	// Original untouched.
	if ds.Pairs[0].TwitterUsername != "alice" {
		t.Fatal("input mutated")
	}
}

func TestAnonymizeKeepsJoins(t *testing.T) {
	ds := sampleDataset()
	anon := NewAnonymizer("secret").Anonymize(ds)
	// The pair's pseudonymized TwitterID must still key the timelines
	// and followee maps.
	id := anon.Pairs[0].TwitterID
	if anon.TwitterTimelines[id] == nil {
		t.Fatal("twitter timeline join broken")
	}
	if anon.MastodonTimelines[id] == nil {
		t.Fatal("mastodon timeline join broken")
	}
	if len(anon.TwitterFollowees[id]) != 1 {
		t.Fatal("followee join broken")
	}
	// Followee pseudonyms must be consistent with how a pair for that
	// followee would be pseudonymized.
	a := NewAnonymizer("secret")
	if anon.TwitterFollowees[id][0].TwitterID != a.Pseudonym("8") {
		t.Fatal("followee pseudonym inconsistent")
	}
	// Mastodon following keeps domains.
	h := anon.MastodonFollowing[id][0]
	if !strings.HasSuffix(h, "@tiny.town") {
		t.Fatalf("handle domain lost: %q", h)
	}
	if strings.Contains(h, "bob") {
		t.Fatalf("handle username leaked: %q", h)
	}
}

func TestAnonymizedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	anon := NewAnonymizer("s").Anonymize(sampleDataset())
	if err := Save(dir, anon, true); err != nil {
		t.Fatal(err)
	}
	got, m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Anonymized {
		t.Fatal("manifest flag lost")
	}
	if got.Coverage().Pairs != 1 {
		t.Fatal("coverage after round trip")
	}
}
