package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// atomicWriteFile writes path by streaming write into a sibling temp file
// and renaming it over path. A crash mid-write leaves either the old file
// or nothing — never a torn dataset or checkpoint. All store writes go
// through here (the atomicfile analyzer in internal/lint enforces it).
func atomicWriteFile(path string, perm os.FileMode, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: temp for %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("store: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: commit %s: %w", path, err)
	}
	return nil
}
