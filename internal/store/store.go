// Package store persists crawl datasets: gzip-compressed JSONL files
// plus a manifest, with the anonymization pass the paper describes in
// §3.4 ("We anonymize the data before use ... anonymized data will be
// made available to the public").
//
// Anonymization replaces every user identifier (Twitter IDs, Twitter
// usernames, Mastodon usernames) with a salted-hash pseudonym,
// consistently across the whole dataset so joins keep working. Instance
// domains are retained: the paper's published analyses are at instance
// granularity.
package store

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"flock/internal/crawler"
	"flock/internal/match"
	"flock/internal/vclock"
)

// Anonymizer maps identifiers to stable pseudonyms.
type Anonymizer struct {
	salt []byte
}

// NewAnonymizer creates an anonymizer with the given salt. The salt must
// be kept secret for the pseudonyms to be one-way.
func NewAnonymizer(salt string) *Anonymizer {
	return &Anonymizer{salt: []byte(salt)}
}

// Pseudonym returns the stable pseudonym for an identifier.
func (a *Anonymizer) Pseudonym(id string) string {
	h := sha256.New()
	h.Write(a.salt)
	h.Write([]byte(id))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Anonymize returns a deep-copied dataset with all user identifiers
// replaced. The input is not modified.
func (a *Anonymizer) Anonymize(ds *crawler.Dataset) *crawler.Dataset {
	out := crawler.NewDataset()
	out.Instances = append(out.Instances, ds.Instances...)

	for _, ct := range ds.CollectedTweets {
		ct.AuthorID = a.Pseudonym(ct.AuthorID)
		ct.ID = a.Pseudonym("tweet:" + ct.ID)
		out.CollectedTweets = append(out.CollectedTweets, ct)
	}
	for _, p := range ds.Pairs {
		q := p
		q.TwitterID = a.Pseudonym(p.TwitterID)
		q.TwitterUsername = a.Pseudonym("tu:" + p.TwitterUsername)
		q.Handle = match.Handle{Username: a.Pseudonym("mu:" + p.Handle.Username), Domain: p.Handle.Domain}
		q.MastodonAccountID = a.Pseudonym("ma:" + p.MastodonAccountID)
		if p.Moved != nil {
			moved := *p.Moved
			moved.Handle = match.Handle{Username: a.Pseudonym("mu:" + p.Moved.Handle.Username), Domain: p.Moved.Handle.Domain}
			moved.AccountID = a.Pseudonym("ma:" + p.Moved.AccountID)
			q.Moved = &moved
		}
		out.Pairs = append(out.Pairs, q)
	}
	for id, tl := range ds.TwitterTimelines {
		cp := &crawler.TwitterTimeline{State: tl.State, Posts: append([]crawler.Post(nil), tl.Posts...)}
		for i := range cp.Posts {
			cp.Posts[i].ID = a.Pseudonym("tweet:" + cp.Posts[i].ID)
		}
		out.TwitterTimelines[a.Pseudonym(id)] = cp
	}
	for id, tl := range ds.MastodonTimelines {
		cp := &crawler.MastodonTimeline{State: tl.State, Posts: append([]crawler.Post(nil), tl.Posts...)}
		for i := range cp.Posts {
			cp.Posts[i].ID = a.Pseudonym("status:" + cp.Posts[i].ID)
		}
		out.MastodonTimelines[a.Pseudonym(id)] = cp
	}
	for id, refs := range ds.TwitterFollowees {
		cp := make([]crawler.FolloweeRef, len(refs))
		for i, r := range refs {
			cp[i] = crawler.FolloweeRef{TwitterID: a.Pseudonym(r.TwitterID), Username: a.Pseudonym("tu:" + r.Username)}
		}
		out.TwitterFollowees[a.Pseudonym(id)] = cp
	}
	for id, handles := range ds.MastodonFollowing {
		cp := make([]string, len(handles))
		for i, h := range handles {
			cp[i] = a.pseudonymHandle(h)
		}
		out.MastodonFollowing[a.Pseudonym(id)] = cp
	}
	for domain, acts := range ds.Activity {
		out.Activity[domain] = append([]crawler.WeekActivity(nil), acts...)
	}
	return out
}

// pseudonymHandle anonymizes "@user@domain", keeping the domain.
func (a *Anonymizer) pseudonymHandle(h string) string {
	if len(h) > 1 && h[0] == '@' {
		rest := h[1:]
		for i := 0; i < len(rest); i++ {
			if rest[i] == '@' {
				return "@" + a.Pseudonym("mu:"+rest[:i]) + rest[i:]
			}
		}
	}
	return a.Pseudonym(h)
}

// Manifest describes a stored dataset.
type Manifest struct {
	Version    int       `json:"version"`
	CreatedAt  time.Time `json:"created_at"`
	Anonymized bool      `json:"anonymized"`
	Counts     struct {
		Instances int `json:"instances"`
		Tweets    int `json:"collected_tweets"`
		Pairs     int `json:"pairs"`
	} `json:"counts"`
}

// file names inside a dataset directory.
const (
	manifestFile  = "manifest.json"
	instancesFile = "instances.jsonl.gz"
	tweetsFile    = "collected_tweets.jsonl.gz"
	pairsFile     = "pairs.jsonl.gz"
	twitterTLFile = "twitter_timelines.jsonl.gz"
	mastoTLFile   = "mastodon_timelines.jsonl.gz"
	followeeFile  = "twitter_followees.jsonl.gz"
	mfollowFile   = "mastodon_following.jsonl.gz"
	activityFile  = "activity.jsonl.gz"
)

// timeline rows pair a key with its payload for JSONL storage.
type twitterTLRow struct {
	TwitterID string                   `json:"twitter_id"`
	Timeline  *crawler.TwitterTimeline `json:"timeline"`
}
type mastoTLRow struct {
	TwitterID string                    `json:"twitter_id"`
	Timeline  *crawler.MastodonTimeline `json:"timeline"`
}
type followeeRow struct {
	TwitterID string                `json:"twitter_id"`
	Followees []crawler.FolloweeRef `json:"followees"`
}
type mfollowRow struct {
	TwitterID string   `json:"twitter_id"`
	Handles   []string `json:"handles"`
}
type activityRow struct {
	Domain string                 `json:"domain"`
	Weeks  []crawler.WeekActivity `json:"weeks"`
}

// Save writes the dataset to dir (created if missing), stamping the
// manifest with the wall clock.
func Save(dir string, ds *crawler.Dataset, anonymized bool) error {
	return SaveAt(dir, ds, anonymized, vclock.Wall())
}

// SaveAt is Save with an explicit manifest timestamp, so replays driven
// by a virtual clock produce byte-identical datasets.
func SaveAt(dir string, ds *crawler.Dataset, anonymized bool, at time.Time) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var m Manifest
	m.Version = 1
	m.CreatedAt = at.UTC()
	m.Anonymized = anonymized
	m.Counts.Instances = len(ds.Instances)
	m.Counts.Tweets = len(ds.CollectedTweets)
	m.Counts.Pairs = len(ds.Pairs)
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	err = atomicWriteFile(filepath.Join(dir, manifestFile), 0o644, func(w io.Writer) error {
		_, werr := w.Write(mb)
		return werr
	})
	if err != nil {
		return err
	}

	if err := writeJSONL(filepath.Join(dir, instancesFile), ds.Instances); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(dir, tweetsFile), ds.CollectedTweets); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(dir, pairsFile), ds.Pairs); err != nil {
		return err
	}
	var ttl []twitterTLRow
	for id, tl := range ds.TwitterTimelines {
		ttl = append(ttl, twitterTLRow{TwitterID: id, Timeline: tl})
	}
	if err := writeJSONL(filepath.Join(dir, twitterTLFile), ttl); err != nil {
		return err
	}
	var mtl []mastoTLRow
	for id, tl := range ds.MastodonTimelines {
		mtl = append(mtl, mastoTLRow{TwitterID: id, Timeline: tl})
	}
	if err := writeJSONL(filepath.Join(dir, mastoTLFile), mtl); err != nil {
		return err
	}
	var frs []followeeRow
	for id, fs := range ds.TwitterFollowees {
		frs = append(frs, followeeRow{TwitterID: id, Followees: fs})
	}
	if err := writeJSONL(filepath.Join(dir, followeeFile), frs); err != nil {
		return err
	}
	var mfs []mfollowRow
	for id, hs := range ds.MastodonFollowing {
		mfs = append(mfs, mfollowRow{TwitterID: id, Handles: hs})
	}
	if err := writeJSONL(filepath.Join(dir, mfollowFile), mfs); err != nil {
		return err
	}
	var ars []activityRow
	for domain, weeks := range ds.Activity {
		ars = append(ars, activityRow{Domain: domain, Weeks: weeks})
	}
	return writeJSONL(filepath.Join(dir, activityFile), ars)
}

// Load reads a dataset from dir.
func Load(dir string) (*crawler.Dataset, *Manifest, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, nil, fmt.Errorf("store: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, nil, fmt.Errorf("store: manifest: %w", err)
	}
	ds := crawler.NewDataset()
	if err := readJSONL(filepath.Join(dir, instancesFile), &ds.Instances); err != nil {
		return nil, nil, err
	}
	if err := readJSONL(filepath.Join(dir, tweetsFile), &ds.CollectedTweets); err != nil {
		return nil, nil, err
	}
	if err := readJSONL(filepath.Join(dir, pairsFile), &ds.Pairs); err != nil {
		return nil, nil, err
	}
	var ttl []twitterTLRow
	if err := readJSONL(filepath.Join(dir, twitterTLFile), &ttl); err != nil {
		return nil, nil, err
	}
	for _, row := range ttl {
		ds.TwitterTimelines[row.TwitterID] = row.Timeline
	}
	var mtl []mastoTLRow
	if err := readJSONL(filepath.Join(dir, mastoTLFile), &mtl); err != nil {
		return nil, nil, err
	}
	for _, row := range mtl {
		ds.MastodonTimelines[row.TwitterID] = row.Timeline
	}
	var frs []followeeRow
	if err := readJSONL(filepath.Join(dir, followeeFile), &frs); err != nil {
		return nil, nil, err
	}
	for _, row := range frs {
		ds.TwitterFollowees[row.TwitterID] = row.Followees
	}
	var mfs []mfollowRow
	if err := readJSONL(filepath.Join(dir, mfollowFile), &mfs); err != nil {
		return nil, nil, err
	}
	for _, row := range mfs {
		ds.MastodonFollowing[row.TwitterID] = row.Handles
	}
	var ars []activityRow
	if err := readJSONL(filepath.Join(dir, activityFile), &ars); err != nil {
		return nil, nil, err
	}
	for _, row := range ars {
		ds.Activity[row.Domain] = row.Weeks
	}
	return ds, &m, nil
}

// writeJSONL writes one JSON document per line, gzip-compressed, via an
// atomic temp-file+rename.
func writeJSONL[T any](path string, rows []T) error {
	return atomicWriteFile(path, 0o644, func(w io.Writer) error {
		gz := gzip.NewWriter(w)
		bw := bufio.NewWriter(gz)
		enc := json.NewEncoder(bw)
		for i := range rows {
			if err := enc.Encode(&rows[i]); err != nil {
				return fmt.Errorf("store: encoding %s: %w", path, err)
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return gz.Close()
	})
}

// readJSONL reads a gzip JSONL file into out (a pointer to a slice).
func readJSONL[T any](path string, out *[]T) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("store: gunzip %s: %w", path, err)
	}
	defer gz.Close()
	dec := json.NewDecoder(bufio.NewReader(gz))
	for dec.More() {
		var row T
		if err := dec.Decode(&row); err != nil {
			return fmt.Errorf("store: decoding %s: %w", path, err)
		}
		*out = append(*out, row)
	}
	return nil
}
