package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"flock/internal/crawler"
)

func TestFileCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt", "crawl.json.gz")
	ck := NewFileCheckpoint(path)

	// Missing file means fresh crawl, not an error.
	prog, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if prog != nil {
		t.Fatalf("expected nil progress for missing file, got %+v", prog)
	}

	ds := crawler.NewDataset()
	ds.CollectedTweets = []crawler.CollectedTweet{{
		ID: "t1", AuthorID: "a1", Time: time.Unix(1_700_000_000, 0).UTC(),
		Text: "bye bye twitter", Class: crawler.ClassKeyword,
	}}
	ds.TwitterTimelines["a1"] = &crawler.TwitterTimeline{State: crawler.StateOK}
	want := &crawler.Progress{
		Phase:       3,
		Dataset:     ds,
		DoneQueries: map[string]bool{"mastodon": true},
	}
	if err := ck.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Phase != 3 {
		t.Fatalf("got %+v", got)
	}
	if len(got.Dataset.CollectedTweets) != 1 || got.Dataset.CollectedTweets[0].ID != "t1" {
		t.Fatalf("dataset lost: %+v", got.Dataset)
	}
	if !got.Dataset.CollectedTweets[0].Time.Equal(want.Dataset.CollectedTweets[0].Time) {
		t.Fatal("timestamps changed across round trip")
	}
	if tl := got.Dataset.TwitterTimelines["a1"]; tl == nil || tl.State != crawler.StateOK {
		t.Fatalf("timeline lost: %+v", got.Dataset.TwitterTimelines)
	}
	if !got.DoneQueries["mastodon"] {
		t.Fatalf("done set lost: %+v", got.DoneQueries)
	}
}

func TestFileCheckpointSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.json.gz")
	ck := NewFileCheckpoint(path)
	if err := ck.Save(&crawler.Progress{Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(&crawler.Progress{Phase: 2}); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "crawl.json.gz" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
	got, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != 2 {
		t.Fatalf("phase = %d, want 2", got.Phase)
	}
}

// saveSized writes a checkpoint big enough that JSON decoding finishes
// well before the gzip trailer, then returns the raw file bytes.
func saveSized(t *testing.T, ck *FileCheckpoint) []byte {
	t.Helper()
	prog := &crawler.Progress{Phase: 2, Dataset: crawler.NewDataset(), DoneQueries: map[string]bool{}}
	for i := 0; i < 200; i++ {
		prog.DoneQueries[string(rune('a'+i%26))+"-query-"+string(rune('0'+i%10))] = true
		prog.Dataset.CollectedTweets = append(prog.Dataset.CollectedTweets, crawler.CollectedTweet{
			ID: "tweet-id-padding-padding-padding", AuthorID: "author", Text: "bye bye twitter",
		})
	}
	if err := ck.Save(prog); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ck.Path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestFileCheckpointLoadDetectsTailCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.json.gz")
	ck := NewFileCheckpoint(path)
	raw := saveSized(t, ck)

	// Flip a bit in the gzip trailer (last 8 bytes: CRC32 + ISIZE). The
	// JSON payload still decodes; only the drained CRC check can notice.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if prog, err := ck.Load(); err == nil {
		t.Fatalf("tail-corrupted checkpoint loaded silently: %+v", prog)
	}
}

func TestFileCheckpointLoadDetectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.json.gz")
	ck := NewFileCheckpoint(path)
	raw := saveSized(t, ck)

	for _, cut := range []int{4, len(raw) / 2, len(raw) - 5} {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if prog, err := ck.Load(); err == nil {
			t.Fatalf("checkpoint truncated to %d/%d bytes loaded silently: %+v", cut, len(raw), prog)
		}
	}

	// The intact file still loads after all that abuse.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if prog, err := ck.Load(); err != nil || prog == nil || prog.Phase != 2 {
		t.Fatalf("intact checkpoint failed to load: %+v, %v", prog, err)
	}
}

func TestFileCheckpointClear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.json.gz")
	ck := NewFileCheckpoint(path)
	if err := ck.Clear(); err != nil {
		t.Fatalf("clear of missing checkpoint: %v", err)
	}
	if err := ck.Save(&crawler.Progress{Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Clear(); err != nil {
		t.Fatal(err)
	}
	if prog, err := ck.Load(); err != nil || prog != nil {
		t.Fatalf("checkpoint survived clear: %+v, %v", prog, err)
	}
}
