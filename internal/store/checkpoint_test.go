package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"flock/internal/crawler"
)

func TestFileCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt", "crawl.json.gz")
	ck := NewFileCheckpoint(path)

	// Missing file means fresh crawl, not an error.
	prog, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if prog != nil {
		t.Fatalf("expected nil progress for missing file, got %+v", prog)
	}

	ds := crawler.NewDataset()
	ds.CollectedTweets = []crawler.CollectedTweet{{
		ID: "t1", AuthorID: "a1", Time: time.Unix(1_700_000_000, 0).UTC(),
		Text: "bye bye twitter", Class: crawler.ClassKeyword,
	}}
	ds.TwitterTimelines["a1"] = &crawler.TwitterTimeline{State: crawler.StateOK}
	want := &crawler.Progress{
		Phase:       3,
		Dataset:     ds,
		DoneQueries: map[string]bool{"mastodon": true},
	}
	if err := ck.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Phase != 3 {
		t.Fatalf("got %+v", got)
	}
	if len(got.Dataset.CollectedTweets) != 1 || got.Dataset.CollectedTweets[0].ID != "t1" {
		t.Fatalf("dataset lost: %+v", got.Dataset)
	}
	if !got.Dataset.CollectedTweets[0].Time.Equal(want.Dataset.CollectedTweets[0].Time) {
		t.Fatal("timestamps changed across round trip")
	}
	if tl := got.Dataset.TwitterTimelines["a1"]; tl == nil || tl.State != crawler.StateOK {
		t.Fatalf("timeline lost: %+v", got.Dataset.TwitterTimelines)
	}
	if !got.DoneQueries["mastodon"] {
		t.Fatalf("done set lost: %+v", got.DoneQueries)
	}
}

func TestFileCheckpointSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.json.gz")
	ck := NewFileCheckpoint(path)
	if err := ck.Save(&crawler.Progress{Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(&crawler.Progress{Phase: 2}); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "crawl.json.gz" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
	got, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != 2 {
		t.Fatalf("phase = %d, want 2", got.Phase)
	}
}

func TestFileCheckpointClear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.json.gz")
	ck := NewFileCheckpoint(path)
	if err := ck.Clear(); err != nil {
		t.Fatalf("clear of missing checkpoint: %v", err)
	}
	if err := ck.Save(&crawler.Progress{Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Clear(); err != nil {
		t.Fatal(err)
	}
	if prog, err := ck.Load(); err != nil || prog != nil {
		t.Fatalf("checkpoint survived clear: %+v, %v", prog, err)
	}
}
