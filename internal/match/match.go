// Package match implements §3.1's account-mapping methodology: finding
// Mastodon handles in tweets and Twitter profile metadata, and the
// hierarchical mapping rule that links a Twitter account to a Mastodon
// account.
//
// Handles appear in two syntaxes: "@alice@example.com" and
// "https://example.com/@alice". Both are extracted; candidate domains
// are validated against the known-instance list (from the index crawl),
// which kills the overwhelming false-positive source: email addresses
// and @mentions of @user@nonsense.
//
// The hierarchy: (1) search the account's profile metadata (display
// name, bio/description, location, URL field, pinned tweet); a hit there
// maps immediately. (2) Otherwise search the account's collected tweet
// texts; a hit there maps ONLY if the Mastodon username equals the
// Twitter username — the paper's precision guard against tweets that
// merely mention someone else's handle.
package match

import (
	"regexp"
	"strings"

	"flock/internal/parallel"
)

// Handle is a parsed Mastodon handle.
type Handle struct {
	Username string
	Domain   string
}

// String renders the canonical @user@domain form.
func (h Handle) String() string {
	return "@" + h.Username + "@" + h.Domain
}

// ProfileURL renders the https://domain/@user form.
func (h Handle) ProfileURL() string {
	return "https://" + h.Domain + "/@" + h.Username
}

// Source records which §3.1 path produced a mapping.
type Source int

const (
	// SourceNone: no mapping found.
	SourceNone Source = iota
	// SourceMetadata: handle found in profile metadata (step 1).
	SourceMetadata
	// SourceTweet: handle found in tweet text with equal usernames
	// (step 2).
	SourceTweet
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceMetadata:
		return "metadata"
	case SourceTweet:
		return "tweet"
	}
	return "none"
}

// atFormRe matches @user@domain. The leading boundary keeps email
// addresses (user@domain with no leading @) out.
var atFormRe = regexp.MustCompile(`(?:^|[^\w@])@([A-Za-z0-9_]{1,64})@([A-Za-z0-9][A-Za-z0-9.-]*\.[A-Za-z]{2,})`)

// urlFormRe matches https://domain/@user.
var urlFormRe = regexp.MustCompile(`https?://([A-Za-z0-9][A-Za-z0-9.-]*\.[A-Za-z]{2,})/@([A-Za-z0-9_]{1,64})\b`)

// KnownInstances is the domain whitelist from the instance index crawl.
type KnownInstances map[string]bool

// NewKnownInstances builds the set from a domain list, lowercased.
func NewKnownInstances(domains []string) KnownInstances {
	m := make(KnownInstances, len(domains))
	for _, d := range domains {
		m[strings.ToLower(d)] = true
	}
	return m
}

// Extract returns all handles in text whose domain is a known instance,
// in order of appearance, deduplicated.
func Extract(text string, known KnownInstances) []Handle {
	var out []Handle
	seen := map[Handle]bool{}
	add := func(username, domain string) {
		domain = strings.ToLower(domain)
		if known != nil && !known[domain] {
			return
		}
		h := Handle{Username: username, Domain: domain}
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, m := range atFormRe.FindAllStringSubmatch(text, -1) {
		add(m[1], m[2])
	}
	for _, m := range urlFormRe.FindAllStringSubmatch(text, -1) {
		add(m[2], m[1])
	}
	return out
}

// Profile carries the §3.1 metadata fields of a Twitter account.
type Profile struct {
	Username    string
	DisplayName string
	Description string
	Location    string
	URL         string
	PinnedTweet string
}

// metadataText concatenates the searchable metadata surface.
func (p Profile) metadataText() string {
	return p.DisplayName + "\n" + p.Description + "\n" + p.Location + "\n" + p.URL + "\n" + p.PinnedTweet
}

// Result is the outcome of mapping one Twitter account.
type Result struct {
	Handle Handle
	Source Source
}

// Map applies the hierarchical rule to one account: profile metadata
// first, then tweet texts with the exact-username requirement
// (case-insensitive, like Twitter usernames). It returns ok=false if no
// acceptable handle is found.
func Map(p Profile, tweets []string, known KnownInstances) (Result, bool) {
	if hs := Extract(p.metadataText(), known); len(hs) > 0 {
		return Result{Handle: hs[0], Source: SourceMetadata}, true
	}
	for _, text := range tweets {
		for _, h := range Extract(text, known) {
			if strings.EqualFold(h.Username, p.Username) {
				return Result{Handle: h, Source: SourceTweet}, true
			}
		}
	}
	return Result{}, false
}

// Account is one MapBatch input: a profile plus its collected tweets.
type Account struct {
	Profile Profile
	Tweets  []string
}

// BatchResult is one MapBatch output slot.
type BatchResult struct {
	Result
	OK bool
}

// MapBatch applies Map to every account on a bounded worker pool
// (parallel.Workers semantics) and returns results in input order:
// out[i] is exactly what Map(accounts[i].Profile, accounts[i].Tweets,
// known) returns, regardless of scheduling. Extraction is regexp-heavy
// and per-account independent, so the batch form scales near-linearly.
func MapBatch(workers int, accounts []Account, known KnownInstances) []BatchResult {
	return parallel.MapSlice(workers, len(accounts), func(i int) BatchResult {
		res, ok := Map(accounts[i].Profile, accounts[i].Tweets, known)
		return BatchResult{Result: res, OK: ok}
	})
}

// MapLoose is the ablation variant without the exact-username guard: any
// handle in tweet text maps. Benchmarked against Map to show the guard's
// precision effect (see BenchmarkAblationMatcherStrategy).
func MapLoose(p Profile, tweets []string, known KnownInstances) (Result, bool) {
	if hs := Extract(p.metadataText(), known); len(hs) > 0 {
		return Result{Handle: hs[0], Source: SourceMetadata}, true
	}
	for _, text := range tweets {
		if hs := Extract(text, known); len(hs) > 0 {
			return Result{Handle: hs[0], Source: SourceTweet}, true
		}
	}
	return Result{}, false
}
