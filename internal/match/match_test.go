package match

import (
	"testing"
	"testing/quick"
)

var known = NewKnownInstances([]string{"mastodon.social", "fosstodon.org", "sigmoid.social", "Historians.Social"})

func TestExtractAtForm(t *testing.T) {
	hs := Extract("moving! find me at @alice@mastodon.social from now on", known)
	if len(hs) != 1 {
		t.Fatalf("handles = %v", hs)
	}
	if hs[0] != (Handle{Username: "alice", Domain: "mastodon.social"}) {
		t.Fatalf("handle = %v", hs[0])
	}
}

func TestExtractURLForm(t *testing.T) {
	hs := Extract("new home: https://fosstodon.org/@bob — see you there", known)
	if len(hs) != 1 || hs[0].Username != "bob" || hs[0].Domain != "fosstodon.org" {
		t.Fatalf("handles = %v", hs)
	}
}

func TestExtractBothFormsDeduped(t *testing.T) {
	hs := Extract("@carol@sigmoid.social aka https://sigmoid.social/@carol", known)
	if len(hs) != 1 {
		t.Fatalf("expected dedup, got %v", hs)
	}
}

func TestExtractIgnoresEmails(t *testing.T) {
	hs := Extract("contact me at alice@mastodon.social for details", known)
	if len(hs) != 0 {
		t.Fatalf("email extracted as handle: %v", hs)
	}
}

func TestExtractIgnoresUnknownDomains(t *testing.T) {
	hs := Extract("i am @dave@example.com and @dave@mastodon.social", known)
	if len(hs) != 1 || hs[0].Domain != "mastodon.social" {
		t.Fatalf("handles = %v", hs)
	}
}

func TestExtractNilKnownAcceptsAll(t *testing.T) {
	hs := Extract("@eve@anything.example", nil)
	if len(hs) != 1 {
		t.Fatalf("nil whitelist should accept: %v", hs)
	}
}

func TestExtractCaseInsensitiveDomain(t *testing.T) {
	hs := Extract("@frank@Historians.Social", known)
	if len(hs) != 1 || hs[0].Domain != "historians.social" {
		t.Fatalf("handles = %v", hs)
	}
}

func TestExtractMultiple(t *testing.T) {
	hs := Extract("@a@mastodon.social and @b@fosstodon.org", known)
	if len(hs) != 2 {
		t.Fatalf("handles = %v", hs)
	}
}

func TestExtractAtStartOfText(t *testing.T) {
	hs := Extract("@alice@mastodon.social is my new account", known)
	if len(hs) != 1 {
		t.Fatalf("handle at start missed: %v", hs)
	}
}

func TestHandleRoundTripProperty(t *testing.T) {
	f := func(userRaw uint32) bool {
		username := "user" + string(rune('a'+userRaw%26)) + "x"
		h := Handle{Username: username, Domain: "mastodon.social"}
		// Both renderings must re-extract to the same handle.
		for _, text := range []string{"prefix " + h.String() + " suffix", "go to " + h.ProfileURL() + " now"} {
			got := Extract(text, known)
			if len(got) != 1 || got[0] != h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapMetadataFirst(t *testing.T) {
	p := Profile{
		Username:    "alice",
		Description: "researcher. @alice_masto@fosstodon.org",
	}
	tweets := []string{"check out @alice@mastodon.social"} // decoy in tweets
	res, ok := Map(p, tweets, known)
	if !ok {
		t.Fatal("no mapping")
	}
	if res.Source != SourceMetadata {
		t.Fatalf("source = %v", res.Source)
	}
	if res.Handle.Domain != "fosstodon.org" {
		t.Fatalf("metadata handle not preferred: %v", res.Handle)
	}
}

func TestMapTweetRequiresSameUsername(t *testing.T) {
	p := Profile{Username: "alice"}
	// Tweet mentions someone ELSE's handle: must not map.
	if _, ok := Map(p, []string{"you should follow @bob@mastodon.social"}, known); ok {
		t.Fatal("mapped a mention of another user")
	}
	// Tweet with the user's own handle: maps.
	res, ok := Map(p, []string{"bye! @alice@mastodon.social"}, known)
	if !ok || res.Source != SourceTweet {
		t.Fatalf("own-handle tweet did not map: %v %v", res, ok)
	}
}

func TestMapUsernameCaseInsensitive(t *testing.T) {
	p := Profile{Username: "Alice"}
	res, ok := Map(p, []string{"new: @alice@mastodon.social"}, known)
	if !ok || res.Handle.Username != "alice" {
		t.Fatalf("case-insensitive match failed: %v %v", res, ok)
	}
}

func TestMapPinnedTweetCounts(t *testing.T) {
	p := Profile{Username: "gina", PinnedTweet: "i live at https://sigmoid.social/@gina_ai now"}
	res, ok := Map(p, nil, known)
	if !ok || res.Source != SourceMetadata {
		t.Fatalf("pinned tweet not searched: %v %v", res, ok)
	}
}

func TestMapNoMatch(t *testing.T) {
	p := Profile{Username: "harry", Description: "just a normal bio"}
	if _, ok := Map(p, []string{"nothing to see"}, known); ok {
		t.Fatal("phantom mapping")
	}
}

func TestMapLooseAcceptsMentions(t *testing.T) {
	p := Profile{Username: "alice"}
	tweets := []string{"you should follow @bob@mastodon.social"}
	if _, ok := Map(p, tweets, known); ok {
		t.Fatal("strict map accepted a mention")
	}
	res, ok := MapLoose(p, tweets, known)
	if !ok || res.Handle.Username != "bob" {
		t.Fatalf("loose map rejected: %v %v", res, ok)
	}
}

func TestSourceString(t *testing.T) {
	if SourceMetadata.String() != "metadata" || SourceTweet.String() != "tweet" || SourceNone.String() != "none" {
		t.Fatal("source names")
	}
}

func BenchmarkExtract(b *testing.B) {
	text := "that's it, i'm done with this place. find me at @kai_builds77@mastodon.social #TwitterMigration #Mastodon"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(text, known)
	}
}

func TestMapBatchMatchesSerial(t *testing.T) {
	known := NewKnownInstances([]string{"mastodon.social", "fosstodon.org"})
	accounts := make([]Account, 40)
	for i := range accounts {
		switch i % 4 {
		case 0:
			accounts[i] = Account{Profile: Profile{
				Username:    "alice",
				Description: "find me at @alice@mastodon.social",
			}}
		case 1:
			accounts[i] = Account{
				Profile: Profile{Username: "bob"},
				Tweets:  []string{"moving: @bob@fosstodon.org"},
			}
		case 2:
			// Tweet mentions someone else's handle: must not map.
			accounts[i] = Account{
				Profile: Profile{Username: "carol"},
				Tweets:  []string{"follow @dave@mastodon.social"},
			}
		default:
			accounts[i] = Account{Profile: Profile{Username: "erin"}}
		}
	}
	want := make([]BatchResult, len(accounts))
	for i, a := range accounts {
		res, ok := Map(a.Profile, a.Tweets, known)
		want[i] = BatchResult{Result: res, OK: ok}
	}
	for _, w := range []int{1, 2, 8} {
		got := MapBatch(w, accounts, known)
		if len(got) != len(want) {
			t.Fatalf("workers=%d len=%d", w, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d slot %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
	if MapBatch(4, nil, known) != nil {
		t.Fatal("empty batch should return nil")
	}
}
