// Chaos engine: seeded, deterministic failure schedules per host.
//
// The paper's crawl survived a hostile network — 11.58% of Mastodon
// timeline crawls failed because instances died mid-crawl (§3.2), and
// both platforms throttle aggressively. The plain Fault knobs (FailEvery,
// Latency) exercise single failure modes; the chaos engine composes the
// full storm: probabilistic dial failures, scripted down/up flap windows,
// latency jitter, mid-connection resets and byte-rate throttling
// (slow-loris), all drawn from a randx-seeded stream so every chaos run
// is reproducible from its seed.
//
// Determinism: every per-dial decision (fail? how much latency? will this
// connection reset, and after how many bytes?) is derived from
// (host seed, dial index) alone, never from a shared mutable stream, so
// the schedule for dial #k of a host is the same regardless of goroutine
// interleaving. Flapping is likewise counted in dial attempts, not wall
// time: the host serves FlapUpDials dials, refuses the next
// FlapDownDials, and repeats.
package memnet

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flock/internal/randx"
)

// ErrConnReset is the error chaos-injected mid-connection resets surface.
var ErrConnReset = errors.New("memnet: connection reset by chaos")

// ErrChaosDial is the transient error injected for probabilistic dial
// failures.
var ErrChaosDial = errors.New("memnet: chaos dial failure")

// ErrFlapDown is returned while a flapping host is inside a down window.
var ErrFlapDown = errors.New("memnet: host flapping (down window)")

// ChaosSpec configures the chaos schedule for one host. The zero value
// injects nothing.
type ChaosSpec struct {
	// Seed roots the host's decision stream. Two hosts with the same
	// Seed and spec fail identically.
	Seed uint64

	// PDialFail is the probability each dial fails with ErrChaosDial.
	PDialFail float64

	// FlapUpDials / FlapDownDials script down/up windows in dial counts:
	// the host accepts FlapUpDials dials, then refuses the next
	// FlapDownDials with ErrFlapDown, cycling. FlapUpDials == 0 disables
	// flapping.
	FlapUpDials   int
	FlapDownDials int

	// Latency is added to every successful dial; Jitter adds a further
	// uniform [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration

	// PReset is the probability a dialed connection is reset after
	// carrying between 1 and ResetAfterBytes bytes (default 4096).
	PReset          float64
	ResetAfterBytes int

	// BytesPerSec throttles the connection's combined read+write rate
	// (slow-loris). 0 disables throttling.
	BytesPerSec int

	// PSlowReq stalls individual HTTP exchanges: each request served on
	// a connection independently pauses for SlowReqDelay with this
	// probability before the response bytes flow. Unlike Latency/Jitter
	// (paid once, at dial time) this bites pooled keep-alive
	// connections too, producing the bimodal per-request tail that
	// hedged requests exist to cut.
	PSlowReq     float64
	SlowReqDelay time.Duration
}

// ChaosStats counts what the engine injected for one host.
type ChaosStats struct {
	Dials        int // dial attempts seen
	FailedDials  int // dials failed via PDialFail
	FlapRejected int // dials refused inside a down window
	Resets       int // connections reset mid-stream
	SlowRequests int // exchanges stalled via PSlowReq
}

// chaosHost is the per-host runtime state behind a ChaosSpec.
type chaosHost struct {
	spec     ChaosSpec
	hostSeed uint64

	mu    sync.Mutex
	dials int
	stats ChaosStats
}

// hostSeed mixes the spec seed with the hostname so distinct hosts under
// one storm seed draw distinct streams.
func mixHostSeed(seed uint64, host string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(host); i++ {
		h = (h ^ uint64(host[i])) * 0x100000001b3
	}
	return h
}

// dialRand returns the decision stream for one dial attempt, a pure
// function of (host seed, dial index).
func (c *chaosHost) dialRand(n int) *randx.Source {
	return randx.New(c.hostSeed).SplitN("dial", n)
}

// plan decides the fate of one dial: the latency to apply plus a
// pre-built connection wrapper when the spec injects mid-connection
// chaos (nil when the bare pipe suffices), or an error (fail/flap).
func (c *chaosHost) plan() (latency time.Duration, cc *chaosConn, err error) {
	c.mu.Lock()
	n := c.dials
	c.dials++
	c.stats.Dials++
	rng := c.dialRand(n)

	// Flap windows are scripted in dial attempts for determinism.
	if c.spec.FlapUpDials > 0 && c.spec.FlapDownDials > 0 {
		cycle := c.spec.FlapUpDials + c.spec.FlapDownDials
		if n%cycle >= c.spec.FlapUpDials {
			c.stats.FlapRejected++
			c.mu.Unlock()
			return 0, nil, ErrFlapDown
		}
	}
	if c.spec.PDialFail > 0 && rng.Bool(c.spec.PDialFail) {
		c.stats.FailedDials++
		c.mu.Unlock()
		return 0, nil, ErrChaosDial
	}
	c.mu.Unlock()

	latency = c.spec.Latency
	if c.spec.Jitter > 0 {
		latency += time.Duration(rng.Float64() * float64(c.spec.Jitter))
	}
	var resetAfter int64
	if c.spec.PReset > 0 && rng.Bool(c.spec.PReset) {
		max := c.spec.ResetAfterBytes
		if max <= 0 {
			max = 4096
		}
		resetAfter = 1 + rng.Int63n(int64(max))
	}
	if resetAfter > 0 || c.spec.BytesPerSec > 0 || c.slowReqs() {
		cc = &chaosConn{host: c, resetAfter: resetAfter, bytesPerSec: c.spec.BytesPerSec}
		if c.slowReqs() {
			// Per-exchange decisions draw from a stream keyed by
			// (host seed, dial index): deterministic per connection,
			// independent across connections.
			cc.slowRng = randx.New(c.hostSeed).SplitN("slowreq", n)
			cc.pSlow = c.spec.PSlowReq
			cc.slowDelay = c.spec.SlowReqDelay
		}
	}
	return latency, cc, nil
}

// slowReqs reports whether the spec stalls individual exchanges.
func (c *chaosHost) slowReqs() bool {
	return c.spec.PSlowReq > 0 && c.spec.SlowReqDelay > 0
}

func (c *chaosHost) recordSlow() {
	c.mu.Lock()
	c.stats.SlowRequests++
	c.mu.Unlock()
}

func (c *chaosHost) recordReset() {
	c.mu.Lock()
	c.stats.Resets++
	c.mu.Unlock()
}

func (c *chaosHost) snapshot() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SetChaos installs a chaos schedule for a host. Passing nil clears it.
// Chaos composes with SetDown and SetFault: down wins, then legacy
// faults, then the chaos plan.
func (f *Fabric) SetChaos(host string, spec *ChaosSpec) {
	host = canonical(host)
	f.mu.Lock()
	defer f.mu.Unlock()
	if spec == nil {
		delete(f.chaos, host)
		return
	}
	f.chaos[host] = &chaosHost{spec: *spec, hostSeed: mixHostSeed(spec.Seed, host)}
}

// ChaosStats reports what chaos injected for a host so far.
func (f *Fabric) ChaosStats(host string) ChaosStats {
	f.mu.Lock()
	c := f.chaos[canonical(host)]
	f.mu.Unlock()
	if c == nil {
		return ChaosStats{}
	}
	return c.snapshot()
}

// chaosConn wraps a fabric conn with reset-after-N-bytes, byte-rate
// throttling and per-exchange stalls. The reset closes the underlying
// pipe so the peer observes the failure too.
type chaosConn struct {
	net.Conn
	host        *chaosHost
	resetAfter  int64 // total bytes before the reset fires; 0 = never
	bytesPerSec int   // combined read+write throttle; 0 = unthrottled

	// Per-exchange tail injection (PSlowReq): the first Read after a
	// Write marks a request/response turnaround and may stall.
	slowRng   *randx.Source // nil: no slow-request injection
	pSlow     float64
	slowDelay time.Duration
	slowMu    sync.Mutex
	wroteLast atomic.Bool

	transferred atomic.Int64
	tripped     atomic.Bool
}

// maxThrottleSleep caps one operation's throttle pause so a tiny rate
// cannot wedge a test forever; the aggregate rate still bites.
const maxThrottleSleep = 100 * time.Millisecond

func (c *chaosConn) account(n int) {
	if n > 0 && c.bytesPerSec > 0 {
		d := time.Duration(float64(n) / float64(c.bytesPerSec) * float64(time.Second))
		if d > maxThrottleSleep {
			d = maxThrottleSleep
		}
		time.Sleep(d)
	}
	if c.resetAfter > 0 && c.transferred.Add(int64(n)) >= c.resetAfter {
		if c.tripped.CompareAndSwap(false, true) {
			c.host.recordReset()
			_ = c.Conn.Close()
		}
	}
}

func (c *chaosConn) resetErr(op string) error {
	return &net.OpError{Op: op, Net: "memnet", Err: ErrConnReset}
}

// maybeStall fires at a write→read turnaround: the request is on the
// wire and the caller is about to read the response head. With
// probability pSlow the exchange stalls for slowDelay, modelling an
// overloaded worker rather than a slow link.
func (c *chaosConn) maybeStall() {
	if c.slowRng == nil || !c.wroteLast.CompareAndSwap(true, false) {
		return
	}
	c.slowMu.Lock()
	slow := c.slowRng.Bool(c.pSlow)
	c.slowMu.Unlock()
	if slow {
		c.host.recordSlow()
		time.Sleep(c.slowDelay)
	}
}

func (c *chaosConn) Read(p []byte) (int, error) {
	if c.tripped.Load() {
		return 0, c.resetErr("read")
	}
	c.maybeStall()
	n, err := c.Conn.Read(p)
	c.account(n)
	if err == nil && c.tripped.Load() {
		// Deliver the bytes already read; the next operation fails.
		return n, nil
	}
	return n, err
}

func (c *chaosConn) Write(p []byte) (int, error) {
	if c.tripped.Load() {
		return 0, c.resetErr("write")
	}
	if c.slowRng != nil {
		c.wroteLast.Store(true)
	}
	n, err := c.Conn.Write(p)
	c.account(n)
	return n, err
}

// Storm is a generated chaos plan over a set of hosts: some permanently
// dead, the rest assigned per-host ChaosSpecs.
type Storm struct {
	// Dead hosts are marked down for the whole run (the paper's
	// "instance down" population).
	Dead []string
	// Specs maps surviving hosts to their chaos schedules.
	Specs map[string]*ChaosSpec
}

// StormConfig tunes RandomStorm's fault mix. Fractions are of the host
// list and need not sum to 1; leftover hosts get light latency jitter
// only.
type StormConfig struct {
	FracDead      float64 // permanently down
	FracFlapping  float64 // scripted down/up windows
	FracLossy     float64 // probabilistic dial failures
	FracThrottled float64 // byte-rate throttled + occasional resets
}

// DefaultStorm mirrors the paper's observed failure mix: ~8% of hosts
// dead outright, plus flapping, lossy and throttled cohorts.
var DefaultStorm = StormConfig{FracDead: 0.08, FracFlapping: 0.10, FracLossy: 0.15, FracThrottled: 0.10}

// RandomStorm deals the hosts into fault cohorts using the seeded source.
// The same (seed, hosts) input always yields the same storm. Hosts the
// caller must keep alive (core services) should simply be left off the
// list.
func RandomStorm(rng *randx.Source, hosts []string, cfg StormConfig) *Storm {
	st := &Storm{Specs: make(map[string]*ChaosSpec)}
	n := len(hosts)
	if n == 0 {
		return st
	}
	order := make([]string, n)
	copy(order, hosts)
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	count := func(frac float64) int { return int(float64(n) * frac) }
	i := 0
	take := func(k int) []string {
		if i+k > n {
			k = n - i
		}
		out := order[i : i+k]
		i += k
		return out
	}
	st.Dead = append(st.Dead, take(count(cfg.FracDead))...)
	seed := rng.Uint64()
	for _, h := range take(count(cfg.FracFlapping)) {
		st.Specs[h] = &ChaosSpec{
			Seed:          seed,
			FlapUpDials:   3 + rng.Intn(6),
			FlapDownDials: 2 + rng.Intn(6),
			Latency:       time.Millisecond,
			Jitter:        2 * time.Millisecond,
		}
	}
	for _, h := range take(count(cfg.FracLossy)) {
		st.Specs[h] = &ChaosSpec{
			Seed:      seed,
			PDialFail: 0.15 + 0.25*rng.Float64(),
			Jitter:    2 * time.Millisecond,
		}
	}
	for _, h := range take(count(cfg.FracThrottled)) {
		st.Specs[h] = &ChaosSpec{
			Seed:        seed,
			BytesPerSec: 64 << 10,
			PReset:      0.05,
			Latency:     time.Millisecond,
		}
	}
	for _, h := range order[i:] {
		st.Specs[h] = &ChaosSpec{Seed: seed, Jitter: time.Millisecond}
	}
	return st
}

// Apply installs the storm on a fabric: dead hosts go down, the rest get
// their chaos schedules.
func (st *Storm) Apply(f *Fabric) {
	for _, h := range st.Dead {
		f.SetDown(h, true)
	}
	for h, spec := range st.Specs {
		f.SetChaos(h, spec)
	}
}
