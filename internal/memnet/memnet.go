// Package memnet provides an in-memory network fabric.
//
// The reproduction runs dozens to thousands of simulated HTTP services
// (one per Mastodon instance, plus the Twitter-like service, the index,
// the toxicity scorer, ...). Binding each to a real TCP port would exhaust
// ephemeral ports and make tests slow and flaky, so memnet implements a
// virtual internet: services Listen on a hostname, clients Dial hostnames,
// and connections are synchronous in-process pipes implementing net.Conn.
//
// The crawler stack is completely unaware of memnet: it talks standard
// net/http through a Transport whose DialContext points at the fabric. To
// run the same crawler against real servers (see cmd/fedisim), swap the
// dialer — nothing else changes.
//
// The fabric supports the failure modes the paper's crawl encountered:
// hosts can be taken down (11.58% of Mastodon timeline crawls failed with
// "instance down", §3.2), and per-host latency and error injection let
// tests exercise the retry/backoff paths in httpkit.
package memnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"flock/internal/httpkit"
)

// ErrHostDown is returned by Dial for hosts marked down.
var ErrHostDown = errors.New("memnet: host is down")

// ErrNoSuchHost is returned by Dial for unregistered hostnames.
var ErrNoSuchHost = errors.New("memnet: no such host")

// ErrFabricClosed is returned after the fabric has been shut down.
var ErrFabricClosed = errors.New("memnet: fabric closed")

// Fabric is a virtual network connecting named hosts. It is safe for
// concurrent use.
type Fabric struct {
	mu     sync.Mutex
	hosts  map[string]*listener
	down   map[string]bool
	faults map[string]*Fault
	chaos  map[string]*chaosHost
	closed bool
}

// Fault configures failure injection for one host.
type Fault struct {
	// FailEvery makes every Nth dial fail with a transient error
	// (0 disables).
	FailEvery int
	// Latency is added to every dial.
	Latency time.Duration

	dials int
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		hosts:  make(map[string]*listener),
		down:   make(map[string]bool),
		faults: make(map[string]*Fault),
		chaos:  make(map[string]*chaosHost),
	}
}

// canonical lowercases a host and strips any :port suffix; the fabric
// routes purely on hostname, like SNI.
func canonical(host string) string {
	host = strings.ToLower(host)
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		host = host[:i]
	}
	return host
}

// Listen registers host on the fabric and returns its listener. It fails
// if the host is already bound.
func (f *Fabric) Listen(host string) (net.Listener, error) {
	host = canonical(host)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrFabricClosed
	}
	if _, ok := f.hosts[host]; ok {
		return nil, fmt.Errorf("memnet: host %q already bound", host)
	}
	l := &listener{
		fabric: f,
		host:   host,
		conns:  make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	f.hosts[host] = l
	return l, nil
}

// DialContext connects to host (any ":port" suffix is ignored), honouring
// ctx cancellation and injected faults. There is deliberately no
// context-free Dial: every dial is on behalf of some caller whose
// cancellation must propagate (the ctxflow analyzer in internal/lint
// keeps it that way).
func (f *Fabric) DialContext(ctx context.Context, host string) (net.Conn, error) {
	host = canonical(host)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFabricClosed
	}
	if f.down[host] {
		f.mu.Unlock()
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: ErrHostDown}
	}
	l, ok := f.hosts[host]
	var fault *Fault
	if fl, has := f.faults[host]; has {
		fl.dials++
		if fl.FailEvery > 0 && fl.dials%fl.FailEvery == 0 {
			f.mu.Unlock()
			return nil, &net.OpError{Op: "dial", Net: "memnet", Err: errors.New("injected transient failure")}
		}
		fault = fl
	}
	ch := f.chaos[host]
	f.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: ErrNoSuchHost}
	}
	latency := time.Duration(0)
	var cc *chaosConn
	if ch != nil {
		var cerr error
		latency, cc, cerr = ch.plan()
		if cerr != nil {
			return nil, &net.OpError{Op: "dial", Net: "memnet", Err: cerr}
		}
	}
	if fault != nil {
		latency += fault.Latency
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		if cc != nil {
			cc.Conn = client
			return cc, nil
		}
		return client, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "memnet", Err: ErrHostDown}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SetDown marks a host down (true) or back up (false). Dials to a down
// host fail immediately with ErrHostDown, matching a dead Mastodon
// instance. The listener itself is left registered so the host can come
// back.
func (f *Fabric) SetDown(host string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[canonical(host)] = down
}

// IsDown reports whether a host is currently marked down.
func (f *Fabric) IsDown(host string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[canonical(host)]
}

// SetFault installs failure injection for a host. Passing nil clears it.
func (f *Fabric) SetFault(host string, fault *Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fault == nil {
		delete(f.faults, canonical(host))
		return
	}
	f.faults[canonical(host)] = fault
}

// Hosts returns the sorted-insensitive list of registered hostnames.
func (f *Fabric) Hosts() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.hosts))
	for h := range f.hosts {
		out = append(out, h)
	}
	return out
}

// Close shuts the fabric down: all listeners stop accepting and future
// dials fail.
func (f *Fabric) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	for _, l := range f.hosts {
		l.closeLocked()
	}
	return nil
}

// unbind removes a closed listener's registration.
func (f *Fabric) unbind(host string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.hosts, host)
}

// listener implements net.Listener over the fabric.
type listener struct {
	fabric *Fabric
	host   string
	conns  chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "memnet", Err: net.ErrClosed}
	}
}

func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.fabric.unbind(l.host)
	})
	return nil
}

// closeLocked closes without unbinding (caller holds fabric lock).
func (l *listener) closeLocked() {
	l.closeOnce.Do(func() { close(l.done) })
}

func (l *listener) Addr() net.Addr { return addr(l.host) }

// addr is a trivial net.Addr for fabric endpoints.
type addr string

func (a addr) Network() string { return "memnet" }
func (a addr) String() string  { return string(a) }

// Transport returns an http.RoundTripper that routes every request over
// the fabric by request host. TLS is not simulated; https URLs are carried
// over plain pipes, which is transparent to the HTTP layer. Mastodon
// URLs in the wild are https, so the simulated services publish https
// URLs and this transport makes them work.
func (f *Fabric) Transport() http.RoundTripper {
	return &http.Transport{
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			return f.DialContext(ctx, address)
		},
		DialTLSContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			return f.DialContext(ctx, address)
		},
		// In-memory pipes are cheap but a pipe conn carries exactly one
		// HTTP exchange safely when the server side is serving many
		// hosts, so keep idle pooling modest.
		MaxIdleConnsPerHost: 4,
		IdleConnTimeout:     5 * time.Second,
	}
}

// Client returns an *http.Client routed over the fabric.
func (f *Fabric) Client() *http.Client {
	return httpkit.NewHTTPClient(f.Transport(), 30*time.Second)
}

// Serve starts an HTTP server for handler on host. It returns a stop
// function. Serving runs until stop is called or the fabric closes; ctx
// is the parent lifecycle for the graceful shutdown stop performs (the
// grace period survives ctx's own cancellation, so stopping after a
// cancelled run still drains cleanly).
func (f *Fabric) Serve(ctx context.Context, host string, handler http.Handler) (stop func(), err error) {
	l, err := f.Listen(host)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() {
		// ErrClosed is the normal shutdown path.
		_ = srv.Serve(l)
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
			_ = l.Close()
		})
	}, nil
}
