package memnet

import (
	"context"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"flock/internal/randx"
)

// echoHandler responds with a fixed payload for conn-level chaos tests.
func echoHandler(size int) http.Handler {
	body := make([]byte, size)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	})
}

func TestChaosDialFailDeterministic(t *testing.T) {
	outcomes := func() []bool {
		f := NewFabric()
		defer f.Close()
		l, err := f.Listen("a.test")
		if err != nil {
			t.Fatal(err)
		}
		go func() { // drain accepted conns so dials never block
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		f.SetChaos("a.test", &ChaosSpec{Seed: 7, PDialFail: 0.5})
		var out []bool
		for i := 0; i < 40; i++ {
			c, err := f.DialContext(context.Background(), "a.test")
			out = append(out, err == nil)
			if c != nil {
				c.Close()
			}
		}
		return out
	}
	a, b := outcomes(), outcomes()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dial %d differs between identically seeded runs", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("PDialFail=0.5 produced %d/%d failures", fails, len(a))
	}
}

func TestChaosFlapWindows(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	l, err := f.Listen("flap.test")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	f.SetChaos("flap.test", &ChaosSpec{Seed: 1, FlapUpDials: 3, FlapDownDials: 2})
	var got []bool
	for i := 0; i < 10; i++ {
		c, err := f.DialContext(context.Background(), "flap.test")
		if err != nil && !errors.Is(err, ErrFlapDown) {
			t.Fatalf("dial %d: unexpected error %v", i, err)
		}
		got = append(got, err == nil)
		if c != nil {
			c.Close()
		}
	}
	want := []bool{true, true, true, false, false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flap pattern %v, want %v", got, want)
		}
	}
	st := f.ChaosStats("flap.test")
	if st.Dials != 10 || st.FlapRejected != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestChaosResetMidConnection(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	stop, err := f.Serve(context.Background(), "reset.test", echoHandler(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	f.SetChaos("reset.test", &ChaosSpec{Seed: 3, PReset: 1.0, ResetAfterBytes: 2048})
	client := f.Client()
	sawFailure := false
	for i := 0; i < 5; i++ {
		resp, err := client.Get("https://reset.test/big")
		if err != nil {
			sawFailure = true
			continue
		}
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("PReset=1.0 never interrupted a 1MiB response")
	}
	if st := f.ChaosStats("reset.test"); st.Resets == 0 {
		t.Fatalf("no resets recorded: %+v", st)
	}
}

func TestChaosThrottleSlowsTransfer(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	stop, err := f.Serve(context.Background(), "slow.test", echoHandler(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// 256 KiB/s on a 64 KiB body: about 250ms of injected delay.
	f.SetChaos("slow.test", &ChaosSpec{Seed: 5, BytesPerSec: 256 << 10})
	client := f.Client()
	t0 := time.Now()
	resp, err := client.Get("https://slow.test/")
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 64<<10 {
		t.Fatalf("read %d bytes", n)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("throttled transfer finished in %v, want >= 100ms", d)
	}
}

func TestChaosLatencyJitterHonoursContext(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	if _, err := f.Listen("lag.test"); err != nil {
		t.Fatal(err)
	}
	f.SetChaos("lag.test", &ChaosSpec{Seed: 9, Latency: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.DialContext(ctx, "lag.test"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRandomStormSeededAndApplied(t *testing.T) {
	hosts := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	s1 := RandomStorm(randx.New(42), hosts, DefaultStorm)
	s2 := RandomStorm(randx.New(42), hosts, DefaultStorm)
	if len(s1.Dead) != len(s2.Dead) {
		t.Fatalf("dead cohorts differ: %v vs %v", s1.Dead, s2.Dead)
	}
	for i := range s1.Dead {
		if s1.Dead[i] != s2.Dead[i] {
			t.Fatalf("dead cohorts differ: %v vs %v", s1.Dead, s2.Dead)
		}
	}
	if len(s1.Specs) != len(s2.Specs) {
		t.Fatalf("spec counts differ")
	}
	for h, sp := range s1.Specs {
		o := s2.Specs[h]
		if o == nil || *sp != *o {
			t.Fatalf("spec for %s differs: %+v vs %+v", h, sp, o)
		}
	}
	if len(s1.Dead)+len(s1.Specs) != len(hosts) {
		t.Fatalf("storm does not cover all hosts: %d dead + %d specs", len(s1.Dead), len(s1.Specs))
	}

	f := NewFabric()
	defer f.Close()
	for _, h := range hosts {
		if _, err := f.Listen(h); err != nil {
			t.Fatal(err)
		}
	}
	s1.Apply(f)
	for _, h := range s1.Dead {
		if !f.IsDown(h) {
			t.Fatalf("dead host %s not down after Apply", h)
		}
		if _, err := f.DialContext(context.Background(), h); !errors.Is(err, ErrHostDown) {
			t.Fatalf("dial of dead host %s: %v", h, err)
		}
	}
}

func TestChaosSlowRequestsStallPooledConns(t *testing.T) {
	run := func() (slow int, d time.Duration) {
		f := NewFabric()
		defer f.Close()
		stop, err := f.Serve(context.Background(), "tail.test", echoHandler(256))
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		f.SetChaos("tail.test", &ChaosSpec{Seed: 11, PSlowReq: 0.5, SlowReqDelay: 20 * time.Millisecond})
		client := f.Client()
		t0 := time.Now()
		// Sequential requests reuse one pooled keep-alive conn, so the
		// dial-time knobs would only fire once; PSlowReq bites every
		// exchange.
		for i := 0; i < 12; i++ {
			resp, err := client.Get("https://tail.test/")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return f.ChaosStats("tail.test").SlowRequests, time.Since(t0)
	}
	slow1, d := run()
	if slow1 == 0 || slow1 >= 12 {
		t.Fatalf("PSlowReq=0.5 stalled %d/12 exchanges", slow1)
	}
	// The transport's read loop may absorb one stall asynchronously after
	// the final response, so only slow1-1 stalls are visible in wall time.
	if want := time.Duration(slow1-1) * 20 * time.Millisecond; d < want {
		t.Fatalf("%d stalls finished in %v, want >= %v", slow1, d, want)
	}
	slow2, _ := run()
	if slow1 != slow2 {
		t.Fatalf("identically seeded runs stalled %d vs %d exchanges", slow1, slow2)
	}
}
