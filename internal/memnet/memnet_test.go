package memnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestListenDialRoundTrip(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	l, err := f.Listen("example.com")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		c.Write([]byte("pong:" + string(buf)))
	}()
	c, err := f.DialContext(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong:hello" {
		t.Fatalf("got %q", buf)
	}
}

func TestDialUnknownHost(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	_, err := f.DialContext(context.Background(), "nope.example")
	if !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v, want ErrNoSuchHost", err)
	}
}

func TestDialStripsPortAndCase(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	if _, err := f.Listen("Mastodon.Social"); err != nil {
		t.Fatal(err)
	}
	go func() {
		l := f.hosts["mastodon.social"]
		c, _ := l.Accept()
		if c != nil {
			c.Close()
		}
	}()
	c, err := f.DialContext(context.Background(), "MASTODON.SOCIAL:443")
	if err != nil {
		t.Fatalf("dial with port/case failed: %v", err)
	}
	c.Close()
}

func TestDoubleBindFails(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	if _, err := f.Listen("a.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("a.example"); err == nil {
		t.Fatal("second bind succeeded")
	}
}

func TestHostDown(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	if _, err := f.Listen("down.example"); err != nil {
		t.Fatal(err)
	}
	f.SetDown("down.example", true)
	if !f.IsDown("down.example") {
		t.Fatal("IsDown = false")
	}
	_, err := f.DialContext(context.Background(), "down.example")
	if !errors.Is(err, ErrHostDown) {
		t.Fatalf("err = %v, want ErrHostDown", err)
	}
	f.SetDown("down.example", false)
	go func() {
		l := f.hosts["down.example"]
		c, _ := l.Accept()
		if c != nil {
			c.Close()
		}
	}()
	if _, err := f.DialContext(context.Background(), "down.example"); err != nil {
		t.Fatalf("dial after recovery failed: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	l, err := f.Listen("flaky.example")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	f.SetFault("flaky.example", &Fault{FailEvery: 2})
	var fails int
	for i := 0; i < 10; i++ {
		c, err := f.DialContext(context.Background(), "flaky.example")
		if err != nil {
			fails++
			continue
		}
		c.Close()
	}
	if fails != 5 {
		t.Fatalf("FailEvery=2 produced %d failures in 10 dials, want 5", fails)
	}
	f.SetFault("flaky.example", nil)
	if c, err := f.DialContext(context.Background(), "flaky.example"); err != nil {
		t.Fatalf("dial after clearing fault: %v", err)
	} else {
		c.Close()
	}
}

func TestDialContextCancel(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	if _, err := f.Listen("slow.example"); err != nil {
		t.Fatal(err)
	}
	f.SetFault("slow.example", &Fault{Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := f.DialContext(ctx, "slow.example")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestFabricClose(t *testing.T) {
	f := NewFabric()
	if _, err := f.Listen("x.example"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DialContext(context.Background(), "x.example"); !errors.Is(err, ErrFabricClosed) {
		t.Fatalf("dial after close: %v", err)
	}
	if _, err := f.Listen("y.example"); !errors.Is(err, ErrFabricClosed) {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestListenerCloseUnbinds(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	l, err := f.Listen("gone.example")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := f.DialContext(context.Background(), "gone.example"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("dial after listener close: %v", err)
	}
	// Host can be rebound after close.
	if _, err := f.Listen("gone.example"); err != nil {
		t.Fatalf("rebind failed: %v", err)
	}
}

func TestAcceptAfterClose(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	l, _ := f.Listen("z.example")
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after close: %v", err)
	}
}

func TestHosts(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.Listen("a.example")
	f.Listen("b.example")
	hosts := f.Hosts()
	if len(hosts) != 2 {
		t.Fatalf("Hosts() = %v", hosts)
	}
}

func TestHTTPOverFabric(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/instance", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"uri":%q}`, r.Host)
	})
	stop, err := f.Serve(context.Background(), "inst.example", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client := f.Client()
	for _, scheme := range []string{"http", "https"} {
		resp, err := client.Get(scheme + "://inst.example/api/v1/instance")
		if err != nil {
			t.Fatalf("%s request failed: %v", scheme, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if !strings.Contains(string(body), "inst.example") {
			t.Fatalf("body %q", body)
		}
	}
}

func TestManyHostsConcurrentHTTP(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	const hosts = 40
	for i := 0; i < hosts; i++ {
		host := fmt.Sprintf("inst%d.example", i)
		h := host
		mux := http.NewServeMux()
		mux.HandleFunc("/whoami", func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, h)
		})
		stop, err := f.Serve(context.Background(), host, mux)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
	}
	client := f.Client()
	var wg sync.WaitGroup
	errs := make(chan error, hosts*4)
	for i := 0; i < hosts*4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			host := fmt.Sprintf("inst%d.example", i%hosts)
			resp, err := client.Get("https://" + host + "/whoami")
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != host {
				errs <- fmt.Errorf("cross-talk: asked %s got %q", host, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeStopIdempotent(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	stop, err := f.Serve(context.Background(), "once.example", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // must not panic
}

func BenchmarkHTTPRequest(b *testing.B) {
	f := NewFabric()
	defer f.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	stop, err := f.Serve(context.Background(), "bench.example", mux)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	client := f.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("https://bench.example/")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
