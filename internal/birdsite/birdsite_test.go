package birdsite

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"flock/internal/vclock"
	"flock/internal/world"
)

var (
	tw  *world.World
	svc *Service
	ts  *httptest.Server
)

func setup(t testing.TB) (*Service, *httptest.Server) {
	if svc != nil {
		return svc, ts
	}
	cfg := world.DefaultConfig(300)
	cfg.Seed = 11
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tw = w
	svc = New(w)
	ts = httptest.NewServer(svc.Handler())
	return svc, ts
}

func getJSON(t testing.TB, base, path string, out any) *http.Response {
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == 200 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", path, err, body)
		}
	}
	return resp
}

func firstMigrant(t testing.TB, pred func(*world.User) bool) *world.User {
	for _, idx := range tw.Migrants {
		u := tw.Users[idx]
		if pred(u) {
			return u
		}
	}
	t.Skip("no migrant matches predicate")
	return nil
}

func TestSearchKeyword(t *testing.T) {
	_, srv := setup(t)
	var resp SearchResponse
	q := url.QueryEscape("mastodon")
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+q+"&max_results=50", &resp)
	if len(resp.Data) == 0 {
		t.Fatal("keyword search returned nothing")
	}
	for _, tweet := range resp.Data {
		if !strings.Contains(strings.ToLower(tweet.Text), "mastodon") {
			t.Fatalf("result does not match query: %q", tweet.Text)
		}
	}
}

func TestSearchHashtag(t *testing.T) {
	_, srv := setup(t)
	var resp SearchResponse
	q := url.QueryEscape("#TwitterMigration")
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+q+"&max_results=100", &resp)
	if len(resp.Data) == 0 {
		t.Fatal("hashtag search returned nothing")
	}
	for _, tweet := range resp.Data {
		if !strings.Contains(strings.ToLower(tweet.Text), "#twittermigration") {
			t.Fatalf("hashtag missing in %q", tweet.Text)
		}
	}
}

func TestSearchURLOperator(t *testing.T) {
	_, srv := setup(t)
	var resp SearchResponse
	q := url.QueryEscape(`url:"mastodon.social"`)
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+q+"&max_results=100", &resp)
	if len(resp.Data) == 0 {
		t.Fatal("url: search returned nothing")
	}
	for _, tweet := range resp.Data {
		if !strings.Contains(tweet.Text, "mastodon.social") {
			t.Fatalf("result lacks domain: %q", tweet.Text)
		}
	}
}

func TestSearchPhrase(t *testing.T) {
	_, srv := setup(t)
	var resp SearchResponse
	q := url.QueryEscape(`"bye bye twitter"`)
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+q+"&max_results=100", &resp)
	for _, tweet := range resp.Data {
		if !strings.Contains(strings.ToLower(tweet.Text), "bye bye twitter") {
			t.Fatalf("phrase missing in %q", tweet.Text)
		}
	}
}

func TestSearchOR(t *testing.T) {
	_, srv := setup(t)
	var a, b, both SearchResponse
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+url.QueryEscape("#ByeByeTwitter")+"&max_results=500", &a)
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+url.QueryEscape("#RIPTwitter")+"&max_results=500", &b)
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+url.QueryEscape("#ByeByeTwitter OR #RIPTwitter")+"&max_results=500", &both)
	if len(both.Data) < len(a.Data) || len(both.Data) < len(b.Data) {
		t.Fatalf("OR smaller than operands: %d vs %d/%d", len(both.Data), len(a.Data), len(b.Data))
	}
	if len(both.Data) > len(a.Data)+len(b.Data) {
		t.Fatalf("OR larger than union bound")
	}
}

func TestSearchTimeWindow(t *testing.T) {
	_, srv := setup(t)
	var resp SearchResponse
	start := vclock.Takeover.Format(time.RFC3339)
	end := vclock.Takeover.Add(48 * time.Hour).Format(time.RFC3339)
	getJSON(t, srv.URL, "/2/tweets/search/all?query=mastodon&start_time="+url.QueryEscape(start)+"&end_time="+url.QueryEscape(end)+"&max_results=500", &resp)
	for _, tweet := range resp.Data {
		at, err := time.Parse(time.RFC3339, tweet.CreatedAt)
		if err != nil {
			t.Fatal(err)
		}
		if at.Before(vclock.Takeover) || !at.Before(vclock.Takeover.Add(48*time.Hour)) {
			t.Fatalf("tweet outside window: %s", tweet.CreatedAt)
		}
	}
}

func TestSearchPaginationComplete(t *testing.T) {
	_, srv := setup(t)
	q := url.QueryEscape("mastodon")
	seen := map[string]bool{}
	token := ""
	pages := 0
	for {
		path := "/2/tweets/search/all?query=" + q + "&max_results=40"
		if token != "" {
			path += "&next_token=" + token
		}
		var resp SearchResponse
		getJSON(t, srv.URL, path, &resp)
		for _, tweet := range resp.Data {
			if seen[tweet.ID] {
				t.Fatalf("duplicate tweet %s across pages", tweet.ID)
			}
			seen[tweet.ID] = true
		}
		pages++
		if resp.Meta.NextToken == "" {
			break
		}
		token = resp.Meta.NextToken
		if pages > 1000 {
			t.Fatal("pagination never terminated")
		}
	}
	if pages < 2 {
		t.Skip("corpus too small to exercise pagination")
	}
	// Compare against a single giant page.
	var all SearchResponse
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+q+"&max_results=500", &all)
	if len(all.Data) <= len(seen) && len(all.Data) == 500 {
		// fine: single page capped
		return
	}
	if len(seen) < len(all.Data) {
		t.Fatalf("pagination lost results: %d paged vs %d single", len(seen), len(all.Data))
	}
}

func TestSearchNewestFirst(t *testing.T) {
	_, srv := setup(t)
	var resp SearchResponse
	getJSON(t, srv.URL, "/2/tweets/search/all?query=mastodon&max_results=100", &resp)
	var prev time.Time
	for i, tweet := range resp.Data {
		at, _ := time.Parse(time.RFC3339, tweet.CreatedAt)
		if i > 0 && at.After(prev) {
			t.Fatal("results not newest-first")
		}
		prev = at
	}
}

func TestUserLookupByUsername(t *testing.T) {
	_, srv := setup(t)
	u := firstMigrant(t, func(u *world.User) bool { return u.HandleInBio && !u.Deleted && !u.Suspended })
	var resp UserResponse
	getJSON(t, srv.URL, "/2/users/by/username/"+u.Username, &resp)
	if resp.Data == nil {
		t.Fatal("no user data")
	}
	if resp.Data.Username != u.Username {
		t.Fatalf("username %q", resp.Data.Username)
	}
	if !strings.Contains(resp.Data.Description, u.MastodonUsername) {
		t.Fatalf("bio lacks mastodon handle: %q", resp.Data.Description)
	}
	if resp.Data.PublicMetrics.Following != tw.Graph.OutDegree(u.ID) {
		t.Fatal("following count mismatch")
	}
}

func TestUserLookupUnknown404(t *testing.T) {
	_, srv := setup(t)
	resp := getJSON(t, srv.URL, "/2/users/by/username/no_such_user_xyz", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestTimelineStates(t *testing.T) {
	_, srv := setup(t)
	cases := []struct {
		pred func(*world.User) bool
		code int
	}{
		{func(u *world.User) bool { return u.Deleted }, http.StatusNotFound},
		{func(u *world.User) bool { return u.Suspended }, http.StatusForbidden},
		{func(u *world.User) bool { return u.Protected && !u.Deleted && !u.Suspended }, http.StatusUnauthorized},
	}
	for _, c := range cases {
		var target *world.User
		for _, idx := range tw.Migrants {
			if c.pred(tw.Users[idx]) {
				target = tw.Users[idx]
				break
			}
		}
		if target == nil {
			continue
		}
		resp := getJSON(t, srv.URL, "/2/users/"+target.TwitterID.String()+"/tweets", nil)
		if resp.StatusCode != c.code {
			t.Fatalf("state error code = %d, want %d", resp.StatusCode, c.code)
		}
	}
}

func TestTimelinePaginationComplete(t *testing.T) {
	_, srv := setup(t)
	u := firstMigrant(t, func(u *world.User) bool {
		return !u.Deleted && !u.Suspended && !u.Protected && len(tw.TweetsByUser[u.ID]) > 25
	})
	var collected []TweetDTO
	token := ""
	for {
		path := fmt.Sprintf("/2/users/%s/tweets?max_results=10", u.TwitterID)
		if token != "" {
			path += "&pagination_token=" + token
		}
		var resp SearchResponse
		getJSON(t, srv.URL, path, &resp)
		collected = append(collected, resp.Data...)
		if resp.Meta.NextToken == "" {
			break
		}
		token = resp.Meta.NextToken
	}
	if len(collected) != len(tw.TweetsByUser[u.ID]) {
		t.Fatalf("timeline pagination returned %d of %d tweets", len(collected), len(tw.TweetsByUser[u.ID]))
	}
	seen := map[string]bool{}
	for _, d := range collected {
		if seen[d.ID] {
			t.Fatal("duplicate in paginated timeline")
		}
		seen[d.ID] = true
	}
}

func TestFollowingMatchesGraph(t *testing.T) {
	_, srv := setup(t)
	u := firstMigrant(t, func(u *world.User) bool {
		return !u.Deleted && !u.Suspended && tw.Graph.OutDegree(u.ID) > 5
	})
	var resp UsersResponse
	getJSON(t, srv.URL, "/2/users/"+u.TwitterID.String()+"/following?max_results=1000", &resp)
	want := tw.Graph.OutDegree(u.ID)
	if want > 1000 {
		want = 1000
	}
	if len(resp.Data) != want {
		t.Fatalf("following returned %d, want %d", len(resp.Data), want)
	}
}

func TestFollowingPagination(t *testing.T) {
	_, srv := setup(t)
	u := firstMigrant(t, func(u *world.User) bool {
		return !u.Deleted && !u.Suspended && tw.Graph.OutDegree(u.ID) > 12
	})
	var all []UserDTO
	token := ""
	for {
		path := "/2/users/" + u.TwitterID.String() + "/following?max_results=5"
		if token != "" {
			path += "&pagination_token=" + token
		}
		var resp UsersResponse
		getJSON(t, srv.URL, path, &resp)
		all = append(all, resp.Data...)
		if resp.Meta.NextToken == "" {
			break
		}
		token = resp.Meta.NextToken
	}
	if len(all) != tw.Graph.OutDegree(u.ID) {
		t.Fatalf("paged following = %d, want %d", len(all), tw.Graph.OutDegree(u.ID))
	}
}

func TestRateLimit429(t *testing.T) {
	w, err := world.Generate(world.DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	s := New(w)
	s.SetLimits(Limits{SearchPerWindow: 2, Window: time.Hour})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var last *http.Response
	for i := 0; i < 3; i++ {
		last = getJSON(t, srv.URL, "/2/tweets/search/all?query=mastodon", nil)
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", last.StatusCode)
	}
	if last.Header.Get("x-rate-limit-reset") == "" {
		t.Fatal("429 missing x-rate-limit-reset header")
	}
}

func TestSearchMissingQuery400(t *testing.T) {
	_, srv := setup(t)
	resp := getJSON(t, srv.URL, "/2/tweets/search/all", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAnnouncementsDiscoverableViaSearch(t *testing.T) {
	// The crawl methodology depends on announcement tweets carrying
	// either a handle or an instance URL; verify search can find a
	// migrant's announcement through the url: operator.
	_, srv := setup(t)
	u := firstMigrant(t, func(u *world.User) bool {
		return u.AnnounceStyle == 1 && !u.Deleted && !u.Suspended
	})
	domain := tw.Instances[u.FirstInstance].Domain
	var resp SearchResponse
	getJSON(t, srv.URL, "/2/tweets/search/all?query="+url.QueryEscape(`url:"`+domain+`"`)+"&max_results=500", &resp)
	found := false
	for _, tweet := range resp.Data {
		if tweet.AuthorID == u.TwitterID.String() {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("announcement for %s on %s not found via url: search", u.Username, domain)
	}
}

func BenchmarkSearch(b *testing.B) {
	s, _ := setup(b)
	q := parseQuery("mastodon")
	start := vclock.StudyStart
	end := vclock.StudyEnd
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.search(q, start, end)
	}
}
