package birdsite

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flock/internal/ids"
	"flock/internal/world"
)

// API DTOs, shaped like the Twitter v2 payloads the crawler parses.

// TweetDTO is one tweet object.
type TweetDTO struct {
	ID        string `json:"id"`
	Text      string `json:"text"`
	AuthorID  string `json:"author_id"`
	CreatedAt string `json:"created_at"`
	Source    string `json:"source"`
}

// UserDTO is one user object with the §3.1 metadata fields.
type UserDTO struct {
	ID            string `json:"id"`
	Name          string `json:"name"`
	Username      string `json:"username"`
	Description   string `json:"description"`
	Location      string `json:"location,omitempty"`
	URL           string `json:"url,omitempty"`
	Verified      bool   `json:"verified"`
	Protected     bool   `json:"protected"`
	CreatedAt     string `json:"created_at"`
	PinnedTweetID string `json:"pinned_tweet_id,omitempty"`
	PublicMetrics struct {
		Followers int `json:"followers_count"`
		Following int `json:"following_count"`
		Tweets    int `json:"tweet_count"`
	} `json:"public_metrics"`
}

// Meta carries pagination state.
type Meta struct {
	ResultCount int    `json:"result_count"`
	NextToken   string `json:"next_token,omitempty"`
}

// SearchResponse is the /2/tweets/search/all payload.
type SearchResponse struct {
	Data []TweetDTO `json:"data"`
	Meta Meta       `json:"meta"`
}

// UsersResponse is the /2/users/:id/following payload.
type UsersResponse struct {
	Data []UserDTO `json:"data"`
	Meta Meta      `json:"meta"`
}

// UserResponse wraps a single user lookup.
type UserResponse struct {
	Data *UserDTO `json:"data,omitempty"`
	Errs []APIErr `json:"errors,omitempty"`
}

// APIErr is a v2-style error entry.
type APIErr struct {
	Title  string `json:"title"`
	Detail string `json:"detail"`
	Type   string `json:"type"`
}

const timeLayout = time.RFC3339

// maxPageSize caps max_results like the real API.
const maxPageSize = 500

// Handler returns the HTTP handler for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /2/tweets/search/all", s.handleSearch)
	mux.HandleFunc("GET /2/users/by/username/{username}", s.handleUserByUsername)
	mux.HandleFunc("GET /2/users/{id}", s.handleUserByID)
	mux.HandleFunc("GET /2/users/{id}/tweets", s.handleTimeline)
	mux.HandleFunc("GET /2/users/{id}/following", s.handleFollowing)
	return mux
}

// allow enforces the fixed-window rate limit for an endpoint class.
func (s *Service) allow(class string, perWindow int) (ok bool, reset time.Time) {
	if perWindow <= 0 {
		return true, time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	win := s.limits.Window
	if win <= 0 {
		win = 15 * time.Minute
	}
	b := s.buckets[class]
	now := s.now()
	if b == nil || now.Sub(b.windowStart) >= win {
		b = &bucket{windowStart: now}
		s.buckets[class] = b
	}
	if b.count >= perWindow {
		return false, b.windowStart.Add(win)
	}
	b.count++
	return true, time.Time{}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func rateLimited(w http.ResponseWriter, reset time.Time) {
	w.Header().Set("x-rate-limit-remaining", "0")
	w.Header().Set("x-rate-limit-reset", strconv.FormatInt(reset.Unix(), 10))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"title": "Too Many Requests"})
}

func (s *Service) userDTO(u *world.User) *UserDTO {
	dto := &UserDTO{
		ID:          u.TwitterID.String(),
		Name:        u.DisplayName,
		Username:    u.Username,
		Verified:    u.Verified,
		Protected:   u.Protected,
		CreatedAt:   u.TwitterCreatedAt.UTC().Format(timeLayout),
		Description: s.bioFor(u),
	}
	dto.PublicMetrics.Followers = s.w.Graph.InDegree(u.ID)
	dto.PublicMetrics.Following = s.w.Graph.OutDegree(u.ID)
	dto.PublicMetrics.Tweets = len(s.w.TweetsByUser[u.ID])
	return dto
}

// bioFor renders the user's profile description; migrated users with
// HandleInBio expose their Mastodon handle here (§3.1's first and most
// reliable match source).
func (s *Service) bioFor(u *world.User) string {
	base := fmt.Sprintf("%s. posting about %s.", u.DisplayName, u.Topic)
	if u.Migrated && u.HandleInBio {
		domain := s.w.Instances[u.FinalInstance()].Domain
		if u.ID%2 == 0 {
			return base + " " + u.Handle(domain)
		}
		return base + " https://" + domain + "/@" + u.MastodonUsername
	}
	return base
}

func (s *Service) lookupByID(idStr string) *world.User {
	return s.byID[idStr]
}

func (s *Service) handleSearch(w http.ResponseWriter, r *http.Request) {
	if ok, reset := s.allow("search", s.limits.SearchPerWindow); !ok {
		rateLimited(w, reset)
		return
	}
	qs := r.URL.Query()
	rawQ := qs.Get("query")
	if rawQ == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"title": "missing query"})
		return
	}
	start, end, err := timeWindow(qs.Get("start_time"), qs.Get("end_time"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"title": err.Error()})
		return
	}
	limit := pageSize(qs.Get("max_results"), 100)

	positions := s.search(parseQuery(rawQ), start, end)
	// Cursor: index into positions, newest-first like the real API.
	cursor := 0
	if tok := qs.Get("next_token"); tok != "" {
		cursor, err = strconv.Atoi(tok)
		if err != nil || cursor < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"title": "invalid next_token"})
			return
		}
	}
	resp := SearchResponse{Data: []TweetDTO{}}
	for i := len(positions) - 1 - cursor; i >= 0 && len(resp.Data) < limit; i-- {
		ref := s.tweets[positions[i]]
		tw := s.get(ref)
		u := s.w.Users[ref.UserID]
		if u.Deleted || u.Suspended {
			// Gone accounts drop out of search results. Protected users
			// stay: they locked down after posting publicly, which is
			// how the paper could map users whose later timeline crawl
			// failed with "protected" (§3.2).
			cursor++
			continue
		}
		resp.Data = append(resp.Data, TweetDTO{
			ID:        tw.ID.String(),
			Text:      tw.Text,
			AuthorID:  u.TwitterID.String(),
			CreatedAt: tw.Time.UTC().Format(timeLayout),
			Source:    tw.Source,
		})
		cursor++
	}
	resp.Meta.ResultCount = len(resp.Data)
	if cursor < len(positions) {
		resp.Meta.NextToken = strconv.Itoa(cursor)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleUserByUsername(w http.ResponseWriter, r *http.Request) {
	if ok, reset := s.allow("users", s.limits.UsersPerWindow); !ok {
		rateLimited(w, reset)
		return
	}
	u, ok := s.byUsername[strings.ToLower(r.PathValue("username"))]
	if !ok || u.Deleted {
		writeJSON(w, http.StatusNotFound, UserResponse{Errs: []APIErr{{Title: "Not Found Error", Detail: "user not found", Type: "https://api.twitter.com/2/problems/resource-not-found"}}})
		return
	}
	if u.Suspended {
		writeJSON(w, http.StatusForbidden, UserResponse{Errs: []APIErr{{Title: "Forbidden", Detail: "user is suspended", Type: "https://api.twitter.com/2/problems/suspended"}}})
		return
	}
	writeJSON(w, http.StatusOK, UserResponse{Data: s.userDTO(u)})
}

func (s *Service) handleUserByID(w http.ResponseWriter, r *http.Request) {
	if ok, reset := s.allow("users", s.limits.UsersPerWindow); !ok {
		rateLimited(w, reset)
		return
	}
	u := s.lookupByID(r.PathValue("id"))
	if u == nil || u.Deleted {
		writeJSON(w, http.StatusNotFound, UserResponse{Errs: []APIErr{{Title: "Not Found Error", Type: "https://api.twitter.com/2/problems/resource-not-found"}}})
		return
	}
	if u.Suspended {
		writeJSON(w, http.StatusForbidden, UserResponse{Errs: []APIErr{{Title: "Forbidden", Detail: "user is suspended", Type: "https://api.twitter.com/2/problems/suspended"}}})
		return
	}
	writeJSON(w, http.StatusOK, UserResponse{Data: s.userDTO(u)})
}

func (s *Service) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if ok, reset := s.allow("timeline", s.limits.TimelinePerWindow); !ok {
		rateLimited(w, reset)
		return
	}
	u := s.lookupByID(r.PathValue("id"))
	if u == nil || u.Deleted {
		writeJSON(w, http.StatusNotFound, UserResponse{Errs: []APIErr{{Title: "Not Found Error", Type: "https://api.twitter.com/2/problems/resource-not-found"}}})
		return
	}
	if u.Suspended {
		writeJSON(w, http.StatusForbidden, UserResponse{Errs: []APIErr{{Title: "Forbidden", Detail: "user is suspended", Type: "https://api.twitter.com/2/problems/suspended"}}})
		return
	}
	if u.Protected {
		writeJSON(w, http.StatusUnauthorized, UserResponse{Errs: []APIErr{{Title: "Authorization Error", Detail: "tweets are protected", Type: "https://api.twitter.com/2/problems/not-authorized-for-resource"}}})
		return
	}
	qs := r.URL.Query()
	start, end, err := timeWindow(qs.Get("start_time"), qs.Get("end_time"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"title": err.Error()})
		return
	}
	limit := pageSize(qs.Get("max_results"), 100)
	timeline := s.w.TweetsByUser[u.ID]

	// max_id-style pagination via pagination_token = last seen tweet ID;
	// timeline is served newest-first.
	var beforeID ids.Snowflake = ^ids.Snowflake(0) >> 1
	if tok := qs.Get("pagination_token"); tok != "" {
		beforeID, err = ids.Parse(tok)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"title": "invalid pagination_token"})
			return
		}
	}
	resp := SearchResponse{Data: []TweetDTO{}}
	var next string
	for i := len(timeline) - 1; i >= 0; i-- {
		tw := &timeline[i]
		if tw.ID >= beforeID {
			continue
		}
		if tw.Time.Before(start) || !tw.Time.Before(end) {
			continue
		}
		if len(resp.Data) >= limit {
			next = resp.Data[len(resp.Data)-1].ID
			break
		}
		resp.Data = append(resp.Data, TweetDTO{
			ID:        tw.ID.String(),
			Text:      tw.Text,
			AuthorID:  u.TwitterID.String(),
			CreatedAt: tw.Time.UTC().Format(timeLayout),
			Source:    tw.Source,
		})
	}
	resp.Meta.ResultCount = len(resp.Data)
	resp.Meta.NextToken = next
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleFollowing(w http.ResponseWriter, r *http.Request) {
	if ok, reset := s.allow("following", s.limits.FollowingPerWindow); !ok {
		rateLimited(w, reset)
		return
	}
	u := s.lookupByID(r.PathValue("id"))
	if u == nil || u.Deleted {
		writeJSON(w, http.StatusNotFound, UserResponse{Errs: []APIErr{{Title: "Not Found Error", Type: "https://api.twitter.com/2/problems/resource-not-found"}}})
		return
	}
	if u.Suspended {
		writeJSON(w, http.StatusForbidden, UserResponse{Errs: []APIErr{{Title: "Forbidden", Type: "https://api.twitter.com/2/problems/suspended"}}})
		return
	}
	qs := r.URL.Query()
	limit := pageSize(qs.Get("max_results"), 1000)
	followees := s.w.Graph.Followees(u.ID)
	offset := 0
	if tok := qs.Get("pagination_token"); tok != "" {
		var err error
		offset, err = strconv.Atoi(tok)
		if err != nil || offset < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"title": "invalid pagination_token"})
			return
		}
	}
	resp := UsersResponse{Data: []UserDTO{}}
	for i := offset; i < len(followees) && len(resp.Data) < limit; i++ {
		resp.Data = append(resp.Data, *s.userDTO(s.w.Users[int(followees[i])]))
		offset = i + 1
	}
	resp.Meta.ResultCount = len(resp.Data)
	if offset < len(followees) {
		resp.Meta.NextToken = strconv.Itoa(offset)
	}
	writeJSON(w, http.StatusOK, resp)
}

// timeWindow parses RFC3339 start/end params with open defaults.
func timeWindow(startS, endS string) (time.Time, time.Time, error) {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	if startS != "" {
		t, err := time.Parse(timeLayout, startS)
		if err != nil {
			return start, end, fmt.Errorf("invalid start_time")
		}
		start = t
	}
	if endS != "" {
		t, err := time.Parse(timeLayout, endS)
		if err != nil {
			return start, end, fmt.Errorf("invalid end_time")
		}
		end = t
	}
	return start, end, nil
}

// pageSize parses max_results with a default and the API cap.
func pageSize(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return def
	}
	if n > maxPageSize {
		return maxPageSize
	}
	return n
}
