// Package birdsite simulates the Twitter v2 API surface the paper's data
// collection used (§3.1–3.3):
//
//   - GET /2/tweets/search/all   — full-archive search with a query
//     language subset (keywords, "quoted phrases", #hashtags, url:domain,
//     from:user, OR groups), time windows and cursor pagination
//   - GET /2/users/by/username/X — user lookup with bio/location/url/
//     pinned tweet metadata (the §3.1 handle-match inputs)
//   - GET /2/users/:id           — user lookup by ID
//   - GET /2/users/:id/tweets    — user timeline (§3.2)
//   - GET /2/users/:id/following — followees, paginated (§3.3)
//
// Response shapes follow the v2 API closely enough that the crawler code
// reads like real Twitter client code. The service enforces per-endpoint
// rate limits, returning 429 with x-rate-limit-reset, and reproduces the
// account-state failures the paper hit: suspended (403), deleted (404),
// protected (401) accounts.
package birdsite

import (
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"flock/internal/vclock"
	"flock/internal/world"
)

// Host is the API hostname the service binds on the fabric.
const Host = "api.birdsite.test"

// Service owns the indexed tweet corpus and user directory.
type Service struct {
	w *world.World

	// flat corpus sorted by (Time, ID) ascending.
	tweets []tweetRef
	// inverted index: token -> positions in tweets (ascending).
	postings map[string][]int32
	// user directory.
	byUsername map[string]*world.User
	byID       map[string]*world.User

	// rate limiting (nil = unlimited).
	mu      sync.Mutex
	buckets map[string]*bucket
	limits  Limits
	now     vclock.NowFunc
}

// tweetRef locates one tweet in the world.
type tweetRef struct {
	UserID int
	Idx    int // index within TweetsByUser[UserID]
}

// Limits configures per-endpoint rate limits as requests per window.
// Zero values disable limiting for that endpoint.
type Limits struct {
	SearchPerWindow    int
	UsersPerWindow     int
	FollowingPerWindow int
	TimelinePerWindow  int
	Window             time.Duration
}

// bucket is a fixed-window counter.
type bucket struct {
	windowStart time.Time
	count       int
}

// New indexes the world and returns the service. Indexing cost is paid
// once; queries are posting-list intersections.
func New(w *world.World) *Service {
	s := &Service{
		w:          w,
		postings:   make(map[string][]int32),
		byUsername: make(map[string]*world.User, len(w.Users)),
		byID:       make(map[string]*world.User, len(w.Users)),
		buckets:    make(map[string]*bucket),
		now:        vclock.Wall,
	}
	for _, u := range w.Users {
		s.byUsername[strings.ToLower(u.Username)] = u
		s.byID[u.TwitterID.String()] = u
	}
	for uid, tweets := range w.TweetsByUser {
		for i := range tweets {
			s.tweets = append(s.tweets, tweetRef{UserID: uid, Idx: i})
		}
	}
	sort.Slice(s.tweets, func(a, b int) bool {
		ta, tb := s.get(s.tweets[a]), s.get(s.tweets[b])
		if !ta.Time.Equal(tb.Time) {
			return ta.Time.Before(tb.Time)
		}
		return ta.ID < tb.ID
	})
	for pos, ref := range s.tweets {
		tw := s.get(ref)
		for _, tok := range indexTokens(tw.Text) {
			s.postings[tok] = append(s.postings[tok], int32(pos))
		}
		// from: operator support.
		s.postings["from:"+strings.ToLower(s.w.Users[ref.UserID].Username)] = append(
			s.postings["from:"+strings.ToLower(s.w.Users[ref.UserID].Username)], int32(pos))
	}
	return s
}

// SetLimits installs rate limits (tests and realistic crawls).
func (s *Service) SetLimits(l Limits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limits = l
}

// SetClock replaces the service's clock (rate-limit windows and reset
// epochs). nil restores the wall clock.
func (s *Service) SetClock(now vclock.NowFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now == nil {
		now = vclock.Wall
	}
	s.now = now
}

func (s *Service) get(ref tweetRef) *world.Tweet {
	return &s.w.TweetsByUser[ref.UserID][ref.Idx]
}

// urlRe finds https?:// URLs for domain extraction at index time.
var urlRe = regexp.MustCompile(`https?://([a-zA-Z0-9.-]+)(/[^\s]*)?`)

// indexTokens produces the searchable tokens of a tweet: lowercase words,
// #hashtags, and url:domain markers for every linked host.
func indexTokens(text string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(tok string) {
		if tok != "" && !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	for _, m := range urlRe.FindAllStringSubmatch(text, -1) {
		add("url:" + strings.ToLower(m[1]))
	}
	clean := urlRe.ReplaceAllString(text, " ")
	for _, f := range strings.Fields(strings.ToLower(clean)) {
		f = strings.Trim(f, ".,;:!?()[]\"'—")
		if f == "" {
			continue
		}
		if strings.HasPrefix(f, "#") {
			add(f)
			add(strings.TrimPrefix(f, "#"))
			continue
		}
		add(f)
	}
	return out
}

// Query grammar: clauses separated by OR; a clause is a conjunction of
// terms. Terms: word, #tag, "quoted phrase" (AND of its words, then
// verified as substring), url:domain, from:user.
type query struct {
	clauses [][]term
}

type term struct {
	tok    string // posting-list token
	phrase string // non-empty for quoted phrases (verified on text)
}

// parseQuery parses the operator subset. It is liberal: unknown syntax
// degrades to keyword terms, like the real API's matching behaviour.
func parseQuery(q string) query {
	var out query
	for _, clause := range splitTopOR(q) {
		var terms []term
		rest := strings.TrimSpace(clause)
		for rest != "" {
			rest = strings.TrimSpace(rest)
			if rest == "" {
				break
			}
			if rest[0] == '"' {
				end := strings.IndexByte(rest[1:], '"')
				if end < 0 {
					rest = rest[1:]
					continue
				}
				phrase := rest[1 : 1+end]
				rest = rest[min(len(rest), end+2):]
				words := strings.Fields(strings.ToLower(phrase))
				for _, w := range words {
					terms = append(terms, term{tok: strings.Trim(w, ".,;:!?")})
				}
				if len(words) > 1 {
					terms = append(terms, term{phrase: strings.ToLower(phrase)})
				}
				continue
			}
			sp := strings.IndexByte(rest, ' ')
			var word string
			if sp < 0 {
				word, rest = rest, ""
			} else {
				word, rest = rest[:sp], rest[sp+1:]
			}
			word = strings.ToLower(word)
			switch {
			case strings.HasPrefix(word, "url:"):
				dom := strings.Trim(strings.TrimPrefix(word, "url:"), `"`)
				terms = append(terms, term{tok: "url:" + dom})
			case strings.HasPrefix(word, "from:"):
				terms = append(terms, term{tok: word})
			default:
				terms = append(terms, term{tok: strings.Trim(word, ".,;:!?")})
			}
		}
		if len(terms) > 0 {
			out.clauses = append(out.clauses, terms)
		}
	}
	return out
}

// splitTopOR splits on the OR keyword outside quotes.
func splitTopOR(q string) []string {
	var parts []string
	var cur strings.Builder
	inQuote := false
	fields := strings.Fields(q)
	for _, f := range fields {
		if !inQuote && f == "OR" {
			parts = append(parts, cur.String())
			cur.Reset()
			continue
		}
		// Track quote state across fields.
		if strings.Count(f, `"`)%2 == 1 {
			inQuote = !inQuote
		}
		if cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		cur.WriteString(f)
	}
	parts = append(parts, cur.String())
	return parts
}

// search evaluates q over the corpus within [start, end), returning
// ascending positions.
func (s *Service) search(q query, start, end time.Time) []int32 {
	resultSet := map[int32]bool{}
	for _, clause := range q.clauses {
		var acc []int32
		first := true
		failed := false
		for _, t := range clause {
			if t.phrase != "" {
				continue // verified later
			}
			pl := s.postings[t.tok]
			if len(pl) == 0 {
				failed = true
				break
			}
			if first {
				acc = append([]int32(nil), pl...)
				first = false
			} else {
				acc = intersect(acc, pl)
				if len(acc) == 0 {
					failed = true
					break
				}
			}
		}
		if failed || first {
			continue
		}
		for _, pos := range acc {
			tw := s.get(s.tweets[pos])
			if tw.Time.Before(start) || !tw.Time.Before(end) {
				continue
			}
			ok := true
			for _, t := range clause {
				if t.phrase != "" && !strings.Contains(strings.ToLower(tw.Text), t.phrase) {
					ok = false
					break
				}
			}
			if ok {
				resultSet[pos] = true
			}
		}
	}
	out := make([]int32, 0, len(resultSet))
	for pos := range resultSet {
		out = append(out, pos)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// intersect merges two ascending posting lists.
func intersect(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
