package lint_test

import (
	"testing"

	"flock/internal/lint"
)

// TestRepoInvariants runs the full fedilint suite over the repository
// itself, mirroring the CI gate: the tree must be free of diagnostics.
// New violations should be fixed, not suppressed; a //lint:allow needs a
// reason that survives review.
func TestRepoInvariants(t *testing.T) {
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, f := range lint.Run(pkgs, lint.Analyzers()) {
		t.Errorf("%s", f)
	}
}
