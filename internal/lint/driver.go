package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"flock/internal/lint/analysis"
)

// Finding is one diagnostic surviving suppression, with its position
// resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// driverName attributes findings produced by the driver itself
// (malformed or unknown //lint:allow directives).
const driverName = "fedilint"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
}

// Run executes the analyzers over the packages and returns the findings
// that survive //lint:allow suppression, sorted by position.
//
// Suppression syntax:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory — a suppression without a recorded justification is
// itself reported — as is a directive naming an unknown analyzer, so the
// suppression inventory stays auditable.
func Run(pkgs []*analysis.Package, analyzers []*analysis.Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := scanDirectives(pkg, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer: a,
				Pkg:      pkg,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					if allowed(allows, a.Name, pos) {
						return
					}
					findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
				},
			}
			if err := a.Run(pass); err != nil {
				findings = append(findings, Finding{Analyzer: a.Name, Message: "analyzer error: " + err.Error()})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

// scanDirectives collects every //lint:allow directive in the package,
// keyed by line, and reports malformed or unknown-analyzer directives.
func scanDirectives(pkg *analysis.Package, known map[string]bool) (map[lineKey][]allowDirective, []Finding) {
	allows := map[lineKey][]allowDirective{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{Pos: pos, Analyzer: driverName,
						Message: "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\""})
				case !known[fields[0]]:
					bad = append(bad, Finding{Pos: pos, Analyzer: driverName,
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", fields[0])})
				case len(fields) < 2:
					bad = append(bad, Finding{Pos: pos, Analyzer: driverName,
						Message: fmt.Sprintf("//lint:allow %s is missing its reason; suppressions must record why", fields[0])})
				default:
					allows[lineKey{pos.Filename, pos.Line}] = append(allows[lineKey{pos.Filename, pos.Line}],
						allowDirective{analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
				}
			}
		}
	}
	return allows, bad
}

// allowed reports whether a well-formed directive for analyzer covers
// pos: same line, or the line directly above.
func allowed(allows map[lineKey][]allowDirective, analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range allows[lineKey{pos.Filename, line}] {
			if d.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}
