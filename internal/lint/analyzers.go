// Package lint is fedilint: the repo's own static-analysis suite.
//
// The reproduction's headline numbers rest on invariants the compiler
// cannot see: simulated services must read time through vclock, all
// randomness must flow through seeded randx sources, every outbound HTTP
// request must pass through httpkit.Client so the per-host circuit
// breakers and HealthRegistry taxonomy account for every failure,
// library code must propagate caller contexts, and dataset/checkpoint
// writes must be atomic. Each analyzer mechanically enforces one of
// those conventions; cmd/fedilint runs the suite and CI gates on it.
// See LINT.md for the invariant catalogue and the suppression syntax.
package lint

import (
	"go/ast"
	"strconv"
	"strings"

	"flock/internal/lint/analysis"
)

// Analyzers returns the full fedilint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Walltime, SeededRand, RawHTTP, CtxFlow, AtomicFile, Goroutine}
}

// importedAs returns the identifier by which f refers to the import of
// pkgPath: the explicit alias if any, else the path's base element. ok is
// false when f does not import pkgPath.
func importedAs(f *ast.File, pkgPath string) (name string, ok bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != pkgPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		return pathBase(p), true
	}
	return "", false
}

// pathBase guesses the package name of an import path: the last element,
// skipping major-version suffixes ("math/rand/v2" -> "rand").
func pathBase(path string) string {
	elems := strings.Split(path, "/")
	base := elems[len(elems)-1]
	if len(elems) > 1 && len(base) > 1 && base[0] == 'v' && strings.TrimLeft(base[1:], "0123456789") == "" {
		base = elems[len(elems)-2]
	}
	return base
}

// pkgSel reports whether e is a qualified reference pkg.Sel into the
// import of pkgPath within file f, returning the selected name. It
// rejects selectors whose qualifier resolves to a local object (a
// variable shadowing the package name): the parser's object resolution
// leaves genuine package qualifiers unresolved (Obj == nil).
func pkgSel(f *ast.File, e ast.Expr, pkgPath string) (sel string, ok bool) {
	s, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	x, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	name, imported := importedAs(f, pkgPath)
	if !imported || x.Name != name {
		return "", false
	}
	if x.Obj != nil && x.Obj.Kind != ast.Pkg {
		return "", false
	}
	return s.Sel.Name, true
}

// eachFile runs fn over every non-test file of the pass (or every file
// when includeTests is set).
func eachFile(pass *analysis.Pass, includeTests bool, fn func(*ast.File)) {
	for _, f := range pass.Pkg.Files {
		if !includeTests && pass.InTestFile(f.Pos()) {
			continue
		}
		fn(f)
	}
}
