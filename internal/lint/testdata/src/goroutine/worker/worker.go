// Fixture: goroutine must catch naked go statements in ordinary
// packages, honor //lint:allow, and leave test files alone.
package worker

import "sync"

func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { // want `naked go statement outside the concurrency packages`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func fireAndForget(ch chan int) {
	go drain(ch) // want `naked go statement outside the concurrency packages`
}

func sanctioned(ch chan int) {
	//lint:allow goroutine long-lived pump owned by the caller's lifecycle
	go drain(ch)
}

func drain(ch chan int) {
	for range ch {
	}
}
