package worker

// Test files may spawn goroutines freely: helpers, fake servers,
// timeout guards.
func spawnInTest(done chan struct{}) {
	go func() { close(done) }()
}
