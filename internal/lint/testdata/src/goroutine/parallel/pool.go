// Fixture: the "parallel" path segment is exempt — this package IS the
// sanctioned home of naked go statements.
package parallel

func spawn(fn func()) {
	go fn()
}
