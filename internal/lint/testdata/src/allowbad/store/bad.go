// Fixture: malformed //lint:allow directives are findings themselves —
// a reasonless or unknown-analyzer suppression is not auditable and must
// not suppress anything. Checked by TestDirectiveValidation, which
// asserts on driver output directly (the directive findings land on the
// directive's own line, where a want comment cannot ride).
package store

import "time"

func reasonless() time.Time {
	//lint:allow walltime
	return time.Now()
}

func unknownAnalyzer() time.Time {
	//lint:allow sundial because the analyzer name is wrong
	return time.Now()
}
