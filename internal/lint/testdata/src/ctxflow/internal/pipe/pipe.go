// Fixture: ctxflow must catch fresh root contexts in internal library
// code; passing a caller ctx through is the sanctioned shape.
package pipe

import "context"

func detached() {
	ctx := context.Background() // want `context.Background\(\) detaches library code`
	_ = ctx
	ctx2, cancel := context.WithTimeout(context.TODO(), 0) // want `context.TODO\(\) detaches library code`
	defer cancel()
	_ = ctx2
}

func propagated(ctx context.Context) context.Context {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return child
}
