// Mains own their lifecycle and may mint root contexts; ctxflow exempts
// package main even under internal/.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
