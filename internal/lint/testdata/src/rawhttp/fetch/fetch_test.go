// Test files may drive servers directly; rawhttp exempts them from the
// net/http checks — but NOT from the httpkit.Client literal rule, which
// guards the constructor contract everywhere.
package fetch

import (
	"net/http"

	"flock/internal/httpkit"
)

func fetchInTest() {
	resp, _ := http.Get("https://httptest.local/")
	_ = resp
	_ = http.DefaultClient
}

func literalKitClientInTest() {
	k := &httpkit.Client{} // want `httpkit.Client struct literal outside internal/httpkit`
	_ = k
}
