// Test files may drive servers directly; rawhttp exempts them.
package fetch

import "net/http"

func fetchInTest() {
	resp, _ := http.Get("https://httptest.local/")
	_ = resp
	_ = http.DefaultClient
}
