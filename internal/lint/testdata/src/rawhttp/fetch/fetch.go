// Fixture: rawhttp must catch convenience calls, the default client,
// ad-hoc net/http client literals and httpkit.Client struct literals;
// servers, request construction and httpkit.New stay legal.
package fetch

import (
	"net/http"

	"flock/internal/httpkit"
)

func fetch() {
	resp, _ := http.Get("https://mastodon.test/api/v1/instance") // want `http.Get issues an outbound request outside httpkit`
	_ = resp
	_, _ = http.Post("https://perspective.test/v1alpha1/comments:analyze", "application/json", nil) // want `http.Post issues an outbound request`
	c := &http.Client{Timeout: 0}                                                                   // want `http.Client literal outside internal/httpkit`
	_ = c
	d := http.DefaultClient // want `http.DefaultClient bypasses the per-host circuit breakers`
	_ = d
}

func literalKitClient() {
	k := &httpkit.Client{UserAgent: "nope"} // want `httpkit.Client struct literal outside internal/httpkit`
	_ = k
	v := httpkit.Client{} // want `httpkit.Client struct literal outside internal/httpkit`
	_ = v
	ok := httpkit.New(httpkit.WithUserAgent("yes")) // New is the sanctioned constructor
	_ = ok
}

func serverSideIsFine() {
	// Inbound plumbing does not go through breakers; only outbound does.
	mux := http.NewServeMux()
	mux.Handle("/", http.NotFoundHandler())
	req, _ := http.NewRequest(http.MethodGet, "https://x.test/", nil)
	_ = req
}
