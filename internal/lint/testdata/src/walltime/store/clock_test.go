// Test files may measure real time; walltime exempts them.
package store

import "time"

func elapsed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
