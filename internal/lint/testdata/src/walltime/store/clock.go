// Fixture: the walltime analyzer must catch every wall-clock entry point
// in a scoped package ("store" segment), including aliased references,
// and must not be fooled by locals shadowing the package name.
package store

import "time"

func windows() {
	now := time.Now()            // want `time.Now in a simulated-service package breaks replayability`
	_ = time.Since(now)          // want `time.Since in a simulated-service package`
	time.Sleep(time.Millisecond) // want `time.Sleep in a simulated-service package`
}

func aliased() {
	clock := time.Now // want `time.Now in a simulated-service package`
	_ = clock
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func shadowed() {
	time := fakeClock{}
	_ = time.Now() // no diagnostic: "time" is a local, not the package
}

func harmless() {
	// Non-clock uses of the time package are fine.
	_ = time.Duration(5) * time.Second
	_ = time.Date(2022, 10, 27, 0, 0, 0, 0, time.UTC)
}
