package gen

import _ "math/rand" // want `_ import of math/rand outside internal/randx`
