// Fixture: seededrand must catch math/rand and math/rand/v2 usage under
// any alias, including test files (reproducibility applies there too).
package gen

import (
	"math/rand"
	mrand "math/rand/v2"
)

func roll() int {
	rand.Seed(42)                      // want `rand.Seed uses math/rand outside internal/randx`
	x := rand.Intn(10)                 // want `rand.Intn uses math/rand outside internal/randx`
	y := mrand.IntN(10)                // want `rand.IntN uses math/rand/v2 outside internal/randx`
	src := rand.New(rand.NewSource(1)) // want `rand.New uses math/rand` `rand.NewSource uses math/rand`
	return x + y + src.Int()
}
