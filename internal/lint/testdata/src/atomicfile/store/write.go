// Fixture: atomicfile must catch direct writes in store packages; the
// temp-file+rename building blocks stay legal.
package store

import "os"

func save(data []byte) {
	_ = os.WriteFile("dataset/manifest.json", data, 0o644) // want `os.WriteFile can tear a dataset or checkpoint`
	f, _ := os.Create("dataset/rows.jsonl.gz")             // want `os.Create can tear a dataset or checkpoint`
	_ = f
}

func atomicPathIsFine(data []byte) {
	tmp, _ := os.CreateTemp("dataset", "manifest.json.tmp*")
	_, _ = tmp.Write(data)
	_ = tmp.Close()
	_ = os.Rename(tmp.Name(), "dataset/manifest.json")
}
