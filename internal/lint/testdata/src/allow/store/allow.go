// Fixture: //lint:allow suppression, both placements. The directive must
// name the analyzer and carry a reason; it silences the same line or the
// line directly below.
package store

import "time"

func stamped() time.Time {
	//lint:allow walltime operator-facing log stamp, never enters the simulation
	return time.Now()
}

func sameLine() time.Time {
	return time.Now() //lint:allow walltime demo of same-line suppression
}

func unsuppressed() time.Time {
	return time.Now() // want `time.Now in a simulated-service package`
}
