package lint

import (
	"go/ast"

	"flock/internal/lint/analysis"
)

// rawhttpFuncs are the net/http convenience entry points that issue
// outbound requests on the package-global client.
var rawhttpFuncs = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

// RawHTTP forbids ad-hoc outbound HTTP outside internal/httpkit:
// http.Get/Post/PostForm/Head, any use of http.DefaultClient, and
// http.Client composite literals. Every outbound request must flow
// through httpkit.Client so the per-host circuit breakers and the
// HealthRegistry error taxonomy see it — a request that bypasses them
// silently corrupts the crawl's coverage accounting. Test files are
// exempt (they often drive httptest servers directly).
//
// It also forbids httpkit.Client composite literals everywhere outside
// internal/httpkit, test files included: struct-literal construction
// pins the zero-value compat surface and silently misses fields New
// wires (hedging, clock injection). Construct clients with httpkit.New
// and functional options.
var RawHTTP = &analysis.Analyzer{
	Name: "rawhttp",
	Doc:  "forbid raw outbound HTTP (http.Get/Post, http.DefaultClient, http.Client literals) and httpkit.Client struct literals outside internal/httpkit",
	Run: func(pass *analysis.Pass) error {
		if pass.Pkg.PathHasSegment("httpkit") {
			return nil
		}
		// The httpkit.Client literal rule covers test files too: a test
		// constructing a literal client would keep compiling after New
		// gains wiring the literal misses.
		eachFile(pass, true, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || lit.Type == nil {
					return true
				}
				if sel, ok := pkgSel(f, lit.Type, "flock/internal/httpkit"); ok && sel == "Client" {
					pass.Reportf(lit.Pos(), "httpkit.Client struct literal outside internal/httpkit; construct clients with httpkit.New(...) so option-wired behaviour (hedging, breakers, clock) is not silently dropped")
					return false
				}
				return true
			})
		})
		eachFile(pass, false, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.CompositeLit); ok && lit.Type != nil {
					if sel, ok := pkgSel(f, lit.Type, "net/http"); ok && sel == "Client" {
						pass.Reportf(lit.Pos(), "http.Client literal outside internal/httpkit bypasses breaker/health accounting; build clients with httpkit.NewHTTPClient and wrap them in httpkit.Client")
						return false
					}
				}
				e, isExpr := n.(ast.Expr)
				if !isExpr {
					return true
				}
				sel, ok := pkgSel(f, e, "net/http")
				if !ok {
					return true
				}
				switch {
				case rawhttpFuncs[sel]:
					pass.Reportf(n.Pos(), "http.%s issues an outbound request outside httpkit; route it through httpkit.Client so breakers and the health taxonomy account for it", sel)
					return false
				case sel == "DefaultClient":
					pass.Reportf(n.Pos(), "http.DefaultClient bypasses the per-host circuit breakers; use an httpkit.Client (its nil-Doer fallback is breaker-wrapped)")
					return false
				}
				return true
			})
		})
		return nil
	},
}
