package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flock/internal/lint/analysis"
)

// Load parses the packages matched by patterns, rooted at the module
// containing dir. Supported patterns are the forms the CI invocation
// uses: "./..." (every package under the module root), "./dir/..."
// (a subtree) and "./dir" (one package). Test files are included;
// testdata, vendor, hidden and underscore directories are skipped, like
// the go tool does.
func Load(dir string, patterns ...string) ([]*analysis.Package, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "" {
			pat = "./"
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if skipDir(d.Name()) && p != base {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var pkgs []*analysis.Package
	for _, d := range sorted {
		files, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, &analysis.Package{Path: path, Dir: d, Fset: fset, Files: files})
	}
	return pkgs, nil
}

// LoadFixture parses the single fixture package at srcRoot/pkgpath,
// giving it pkgpath as its package path so analyzer scoping rules apply
// to fixtures the same way they apply to real packages.
func LoadFixture(srcRoot, pkgpath string) (*analysis.Package, error) {
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgpath))
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in fixture %s", dir)
	}
	return &analysis.Package{Path: pkgpath, Dir: dir, Fset: fset, Files: files}, nil
}

// parseDir parses every .go file directly inside dir (comments kept, and
// object resolution on: the analyzers use ident.Obj to tell package
// qualifiers from shadowing locals).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("lint: no such directory %s", dir)
	}
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// skipDir reports whether the go tool would ignore the directory.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for line := range strings.Lines(string(data)) {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}
