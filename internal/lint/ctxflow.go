package lint

import (
	"go/ast"

	"flock/internal/lint/analysis"
)

// CtxFlow forbids context.Background() and context.TODO() in internal/
// library code. A fresh root context detaches the work from its caller:
// cancellation no longer propagates, so a cancelled crawl can leave
// dials, retries and shutdowns running. Library code must thread the
// caller's ctx; only mains and tests (both exempt) may mint roots.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/context.TODO in internal library code; propagate the caller's context",
	Run: func(pass *analysis.Pass) error {
		if !pass.Pkg.PathHasSegment("internal") {
			return nil
		}
		eachFile(pass, false, func(f *ast.File) {
			if f.Name.Name == "main" {
				return
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := pkgSel(f, call.Fun, "context"); ok && (sel == "Background" || sel == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() detaches library code from its caller's cancellation; accept and propagate a ctx parameter instead", sel)
					return false
				}
				return true
			})
		})
		return nil
	},
}
