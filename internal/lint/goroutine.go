package lint

import (
	"go/ast"

	"flock/internal/lint/analysis"
)

// Goroutine confines naked `go` statements to the packages whose job is
// concurrency: internal/parallel (the deterministic map-reduce kernels),
// internal/memnet and internal/httpkit (the transport layers). Anywhere
// else, an ad-hoc goroutine is how nondeterminism leaks into analysis
// results — unsynchronized float accumulation, map iteration races,
// completion-order-dependent output — and how work escapes the kernels'
// panic propagation and bounded pools. Analysis and simulation code must
// express parallelism through parallel.ForEach / MapSlice /
// ReduceSharded instead. Test files are exempt (tests legitimately spawn
// helpers and servers); deliberate exceptions carry
// `//lint:allow goroutine <reason>`.
var Goroutine = &analysis.Analyzer{
	Name: "goroutine",
	Doc:  "forbid naked go statements outside internal/parallel, internal/memnet and internal/httpkit; use the parallel kernels",
	Run: func(pass *analysis.Pass) error {
		if pass.Pkg.PathHasSegment("parallel", "memnet", "httpkit") {
			return nil
		}
		eachFile(pass, false, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "naked go statement outside the concurrency packages; route fan-out through parallel.ForEach/MapSlice/ReduceSharded so pooling, panic propagation and deterministic merges apply")
				}
				return true
			})
		})
		return nil
	},
}
