// Package linttest runs fedilint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files
// mark expected diagnostics with trailing comments of the form
//
//	// want "regexp" "another regexp"
//
// and the runner fails the test for any unmatched expectation or any
// unexpected diagnostic. Fixtures run through the real driver, so
// //lint:allow suppression is exercised exactly as in production.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"flock/internal/lint"
	"flock/internal/lint/analysis"
)

// wantRe matches the quoted patterns of a want comment: double-quoted or
// backquoted, as in analysistest.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the fixture package at srcRoot/pkgpath (which also becomes
// its package path, so analyzer scoping applies) and checks the
// analyzers' findings against the package's want comments.
func Run(t *testing.T, srcRoot, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadFixture(srcRoot, pkgpath)
	if err != nil {
		t.Fatal(err)
	}
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*expectation{} // "file:line" -> expectations
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key(pos.Filename, pos.Line)] = append(wants[key(pos.Filename, pos.Line)], &expectation{re: re})
				}
			}
		}
	}

	for _, f := range lint.Run([]*analysis.Package{pkg}, analyzers) {
		k := key(f.Pos.Filename, f.Pos.Line)
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}
