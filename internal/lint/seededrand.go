package lint

import (
	"go/ast"
	"strconv"

	"flock/internal/lint/analysis"
)

// randPkgs are the stdlib random packages whose use is confined to
// internal/randx.
var randPkgs = []string{"math/rand", "math/rand/v2"}

// SeededRand forbids math/rand (global-state functions and ad-hoc
// sources) outside internal/randx. Everything in flock must reproduce
// from a single 64-bit seed; randx.Source streams split hierarchically
// (world -> per-user -> per-day) so adding entities does not perturb
// existing streams — properties math/rand's shared state cannot give.
// Applies to test files too: a test that shuffles with math/rand is as
// unreproducible as production code that does.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand outside internal/randx; derive seeded randx.Source streams (Split/SplitN) instead",
	Run: func(pass *analysis.Pass) error {
		if pass.Pkg.PathHasSegment("randx") {
			return nil
		}
		eachFile(pass, true, func(f *ast.File) {
			// Blank and dot imports smuggle the package in without a
			// traceable qualifier; flag the import itself.
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !isRandPath(p) {
					continue
				}
				if imp.Name != nil && (imp.Name.Name == "_" || imp.Name.Name == ".") {
					pass.Reportf(imp.Pos(), "%s import of %s outside internal/randx breaks seeded reproducibility", imp.Name.Name, p)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				e, isExpr := n.(ast.Expr)
				if !isExpr {
					return true
				}
				for _, p := range randPkgs {
					if sel, ok := pkgSel(f, e, p); ok {
						pass.Reportf(n.Pos(), "rand.%s uses %s outside internal/randx; derive a seeded randx.Source (Split/SplitN) so streams reproduce from the world seed", sel, p)
						return false
					}
				}
				return true
			})
		})
		return nil
	},
}

func isRandPath(p string) bool {
	for _, rp := range randPkgs {
		if p == rp {
			return true
		}
	}
	return false
}
