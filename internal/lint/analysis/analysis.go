// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver model, shaped so fedilint's
// analyzers would port to the real framework unchanged in spirit:
// an Analyzer has a name, a doc string and a Run function over a Pass;
// the Pass exposes the parsed files and a Report sink.
//
// The suite is purely syntactic (go/ast + go/parser, no go/types): every
// invariant it checks is about which package-level identifiers a file
// reaches for (time.Now, http.DefaultClient, ...), which import-alias
// resolution plus the parser's object resolution answers precisely enough.
// Keeping the framework stdlib-only means `go run ./cmd/fedilint ./...`
// works in a hermetic build with no module downloads.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects a package and reports violations via pass.Report.
	Run func(*Pass) error
}

// Package is one parsed package: every .go file of a directory,
// test files included.
type Package struct {
	// Path is the import path ("flock/internal/store"). Fixture packages
	// use their testdata-relative path ("walltime/store").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset positions all files.
	Fset *token.FileSet
	// Files holds the parsed files, comments included.
	Files []*ast.File
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Report receives each diagnostic. The driver wires this.
	Report func(Diagnostic)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// PathHasSegment reports whether the package path contains seg as a whole
// "/"-separated element (so "store" matches "flock/internal/store" but
// not "flock/internal/storefront").
func (p *Package) PathHasSegment(segs ...string) bool {
	for part := range strings.SplitSeq(p.Path, "/") {
		for _, s := range segs {
			if part == s {
				return true
			}
		}
	}
	return false
}
