package lint

import (
	"go/ast"

	"flock/internal/lint/analysis"
)

// walltimePkgs are the simulated-service and persistence packages that
// must read time from an injected vclock.NowFunc / vclock.Clock so whole
// universes replay deterministically at any speed.
var walltimePkgs = []string{
	"fediverse", "birdsite", "toxsvc", "trendsvc", "indexsvc", "world", "store",
}

// walltimeFuncs are the wall-clock entry points the analyzer forbids.
// Both calls and bare references (aliasing `now := time.Now`) are caught.
var walltimeFuncs = map[string]bool{"Now": true, "Since": true, "Sleep": true}

// Walltime forbids time.Now/time.Since/time.Sleep in simulated-service
// packages. Those packages take a vclock.NowFunc (defaulting to
// vclock.Wall, the one sanctioned wall-clock gateway), so tests and
// replays can drive them from a virtual clock.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads (time.Now/Since/Sleep) in simulated-service packages; inject a vclock.NowFunc instead",
	Run: func(pass *analysis.Pass) error {
		if !pass.Pkg.PathHasSegment(walltimePkgs...) {
			return nil
		}
		eachFile(pass, false, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				e, isExpr := n.(ast.Expr)
				if !isExpr {
					return true
				}
				if sel, ok := pkgSel(f, e, "time"); ok && walltimeFuncs[sel] {
					pass.Reportf(n.Pos(), "time.%s in a simulated-service package breaks replayability; read time from an injected vclock.NowFunc (default vclock.Wall)", sel)
					return false
				}
				return true
			})
		})
		return nil
	},
}
