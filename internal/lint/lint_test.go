package lint_test

import (
	"strings"
	"testing"

	"flock/internal/lint"
	"flock/internal/lint/analysis"
	"flock/internal/lint/linttest"
)

const fixtures = "testdata/src"

func TestWalltime(t *testing.T) {
	linttest.Run(t, fixtures, "walltime/store", lint.Walltime)
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, fixtures, "seededrand/gen", lint.SeededRand)
}

func TestRawHTTP(t *testing.T) {
	linttest.Run(t, fixtures, "rawhttp/fetch", lint.RawHTTP)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, fixtures, "ctxflow/internal/pipe", lint.CtxFlow)
}

func TestCtxFlowExemptsMain(t *testing.T) {
	linttest.Run(t, fixtures, "ctxflow/internal/mainpkg", lint.CtxFlow)
}

func TestAtomicFile(t *testing.T) {
	linttest.Run(t, fixtures, "atomicfile/store", lint.AtomicFile)
}

func TestAllowSuppression(t *testing.T) {
	linttest.Run(t, fixtures, "allow/store", lint.Walltime)
}

// TestDirectiveValidation checks the driver's own findings for malformed
// //lint:allow directives. These land on the directive's line, where a
// want comment cannot sit (it would merge into the directive text), so
// this asserts on driver output directly instead of using linttest.
func TestDirectiveValidation(t *testing.T) {
	pkg, err := lint.LoadFixture(fixtures, "allowbad/store")
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{lint.Walltime})
	count := func(sub string) int {
		n := 0
		for _, f := range findings {
			if strings.Contains(f.Message, sub) {
				n++
			}
		}
		return n
	}
	if count("is missing its reason") != 1 {
		t.Errorf("want one missing-reason finding, got %v", findings)
	}
	if count(`unknown analyzer "sundial"`) != 1 {
		t.Errorf("want one unknown-analyzer finding, got %v", findings)
	}
	// Malformed directives suppress nothing: both time.Now sites survive.
	if count("time.Now in a simulated-service") != 2 {
		t.Errorf("want two surviving walltime findings, got %v", findings)
	}
	// 2 walltime + 2 driver findings.
	if len(findings) != 4 {
		t.Errorf("got %d findings, want 4: %v", len(findings), findings)
	}
}

func TestAnalyzersListedOnce(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"walltime", "seededrand", "rawhttp", "ctxflow", "atomicfile"} {
		if !seen[name] {
			t.Errorf("analyzer %q not registered", name)
		}
	}
}

func TestGoroutine(t *testing.T) {
	linttest.Run(t, fixtures, "goroutine/worker", lint.Goroutine)
}

func TestGoroutineExemptsConcurrencyPackages(t *testing.T) {
	linttest.Run(t, fixtures, "goroutine/parallel", lint.Goroutine)
}
