package lint

import (
	"go/ast"

	"flock/internal/lint/analysis"
)

// AtomicFile forbids direct os.WriteFile/os.Create in internal/store. A
// crash mid-write would leave a torn dataset or checkpoint that a
// resumed crawl then trusts; the package's atomicWriteFile helper
// (sibling temp file + rename) makes every write all-or-nothing, so all
// writes must go through it.
var AtomicFile = &analysis.Analyzer{
	Name: "atomicfile",
	Doc:  "forbid direct os.WriteFile/os.Create on dataset/checkpoint paths in internal/store; use the atomic temp-file+rename helper",
	Run: func(pass *analysis.Pass) error {
		if !pass.Pkg.PathHasSegment("store") {
			return nil
		}
		eachFile(pass, false, func(f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				e, isExpr := n.(ast.Expr)
				if !isExpr {
					return true
				}
				if sel, ok := pkgSel(f, e, "os"); ok && (sel == "WriteFile" || sel == "Create") {
					pass.Reportf(n.Pos(), "os.%s can tear a dataset or checkpoint on crash; write through atomicWriteFile (temp file + rename) instead", sel)
					return false
				}
				return true
			})
		})
		return nil
	},
}
