module flock

go 1.24
