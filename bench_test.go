// Package flock's benchmark harness regenerates every table and figure
// of the paper's evaluation (Figs. 1-16): each BenchmarkFigNN runs the
// analysis behind that figure against a crawled dataset from the shared
// simulated world, renders it, and reports the headline statistic as a
// benchmark metric next to the paper's value (suffix _paper vs _measured,
// scaled by 1000 for readability: 96% -> 960).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Ablation benchmarks at the bottom quantify the design choices called
// out in DESIGN.md §5 (hierarchical matching, stratified sampling,
// similarity/toxicity thresholds, client-side rate limiting).
package flock

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flock/internal/analysis"
	"flock/internal/birdsite"
	"flock/internal/core"
	"flock/internal/crawler"
	"flock/internal/httpkit"
	"flock/internal/indexsvc"
	"flock/internal/match"
	"flock/internal/memnet"
	"flock/internal/randx"
	"flock/internal/report"
	"flock/internal/stats"
	"flock/internal/textkit"
	"flock/internal/textsim"
	"flock/internal/toxsvc"
	"flock/internal/trendsvc"
	"flock/internal/vclock"
)

var (
	benchOnce sync.Once
	benchRes  *core.Result
	benchErr  error
)

// benchResult crawls one shared world for all figure benchmarks.
func benchResult(b *testing.B) *core.Result {
	benchOnce.Do(func() {
		cfg := core.DefaultConfig(500)
		cfg.World.Seed = 99
		cfg.ScoreToxicity = false
		benchRes, benchErr = core.Run(context.Background(), cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

// metric reports paper-vs-measured pairs as custom benchmark metrics.
func metric(b *testing.B, name string, paper, measured float64) {
	b.ReportMetric(paper*1000, name+"_paper")
	b.ReportMetric(measured*1000, name+"_measured")
}

func BenchmarkFig01Trends(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		for _, term := range trendsvc.Terms() {
			_ = trendsvc.Series(term)
		}
		out = report.Fig1Trends()
	}
	if !strings.Contains(out, "mastodon") {
		b.Fatal("bad render")
	}
	peak, _ := trendsvc.PeakDate("twitter alternatives")
	metric(b, "peak_day_after_takeover", 1, peak.Sub(vclock.Takeover).Hours()/24)
}

func BenchmarkFig02TweetCollection(b *testing.B) {
	res := benchResult(b)
	var c *analysis.CollectionSeries
	for i := 0; i < b.N; i++ {
		c = analysis.CollectionFigure(res.Dataset)
		_ = report.Fig2Collection(c)
	}
	pre, post := 0, 0
	takeover := vclock.Day(vclock.Takeover)
	for d := range c.Days {
		v := c.Keywords[d] + c.InstanceLinks[d]
		if d < takeover {
			pre += v
		} else {
			post += v
		}
	}
	if pre > 0 {
		metric(b, "post_vs_pre_volume", 10, float64(post)/float64(pre))
	}
}

func BenchmarkFig03WeeklyActivity(b *testing.B) {
	res := benchResult(b)
	var a *analysis.ActivitySeries
	for i := 0; i < b.N; i++ {
		a = analysis.ActivityFigure(res.Dataset)
		_ = report.Fig3Activity(a)
	}
	if len(a.Weeks) == 0 {
		b.Fatal("no activity")
	}
}

func BenchmarkFig04TopInstances(b *testing.B) {
	res := benchResult(b)
	var c *analysis.Centralization
	for i := 0; i < b.N; i++ {
		c = analysis.RQ1(res.Dataset)
		_ = report.Fig4TopInstances(c)
	}
	metric(b, "pre_takeover_accounts", 0.21, c.PreTakeoverAccountFrac)
}

func BenchmarkFig05TopShare(b *testing.B) {
	res := benchResult(b)
	var c *analysis.Centralization
	for i := 0; i < b.N; i++ {
		c = analysis.RQ1(res.Dataset)
		_ = report.Fig5TopShare(c)
	}
	metric(b, "top25_share", 0.96, c.Top25Share)
}

func BenchmarkFig06SizeQuantiles(b *testing.B) {
	res := benchResult(b)
	var c *analysis.Centralization
	for i := 0; i < b.N; i++ {
		c = analysis.RQ1(res.Dataset)
		_ = report.Fig6SizeQuantiles(c)
	}
	metric(b, "single_user_status_boost", 1.2114, c.SingleVsLargest.StatusBoost)
}

func BenchmarkFig07NetworkCDF(b *testing.B) {
	res := benchResult(b)
	var n *analysis.NetworkSizes
	for i := 0; i < b.N; i++ {
		n = analysis.SocialNetworkSizes(res.Dataset)
		_ = report.Fig7Networks(n)
	}
	// The preserved quantity is the cross-platform followee ratio
	// (paper: 48/787 ~ 0.061).
	if n.MedianTwitterFollowees > 0 {
		metric(b, "mastodon_twitter_followee_ratio", 0.061, n.MedianMastodonFollowees/n.MedianTwitterFollowees)
	}
}

func BenchmarkFig08FolloweeMigration(b *testing.B) {
	res := benchResult(b)
	var c *analysis.Contagion
	for i := 0; i < b.N; i++ {
		c = analysis.RQ2Contagion(res.Dataset)
		_ = report.Fig8Contagion(c)
	}
	metric(b, "followees_migrated_mean", 0.0599, c.MeanFracMigrated)
	metric(b, "followees_before_mean", 0.4576, c.MeanFracBefore)
}

func BenchmarkFig09SwitchChord(b *testing.B) {
	res := benchResult(b)
	var s *analysis.Switching
	for i := 0; i < b.N; i++ {
		s = analysis.RQ2Switching(res.Dataset)
		_ = report.Fig9Chord(s)
	}
	metric(b, "switcher_frac", 0.0409, s.SwitcherFrac)
	metric(b, "post_takeover_switches", 0.9722, s.PostTakeoverFrac)
}

func BenchmarkFig10SwitchInfluence(b *testing.B) {
	res := benchResult(b)
	var s *analysis.Switching
	for i := 0; i < b.N; i++ {
		s = analysis.RQ2Switching(res.Dataset)
		_ = report.Fig10SwitchInfluence(s)
	}
	metric(b, "followees_at_second", 0.4698, s.MeanFracSecond)
	metric(b, "second_before_user", 0.7742, s.MeanFracSecondBefore)
}

func BenchmarkFig11DailyActivity(b *testing.B) {
	res := benchResult(b)
	var d *analysis.DailyActivity
	for i := 0; i < b.N; i++ {
		d = analysis.Timelines(res.Dataset)
		_ = report.Fig11Daily(d)
	}
	if len(d.Days) != vclock.StudyDays {
		b.Fatal("bad day count")
	}
}

func BenchmarkFig12Sources(b *testing.B) {
	res := benchResult(b)
	var s *analysis.Sources
	for i := 0; i < b.N; i++ {
		s = analysis.RQ3Sources(res.Dataset)
		_ = report.Fig12Sources(s)
	}
	metric(b, "crossposter_users", 0.0573, s.CrossposterUserFrac)
}

func BenchmarkFig13CrossposterUsers(b *testing.B) {
	res := benchResult(b)
	var s *analysis.Sources
	for i := 0; i < b.N; i++ {
		s = analysis.RQ3Sources(res.Dataset)
		_ = report.Fig13Crossposters(s)
	}
	max := 0
	for _, n := range s.DailyCrossposterUsers {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		b.Skip("no crossposter activity in world")
	}
}

func BenchmarkFig14ContentSimilarity(b *testing.B) {
	res := benchResult(b)
	var o *analysis.Overlap
	for i := 0; i < b.N; i++ {
		o = analysis.RQ3Overlap(res.Dataset, analysis.OverlapOptions{MaxUsers: 100})
		_ = report.Fig14Overlap(o)
	}
	metric(b, "identical_mean", 0.0153, o.MeanIdentical)
	metric(b, "similar_mean", 0.1657, o.MeanSimilar)
}

func BenchmarkFig15Hashtags(b *testing.B) {
	res := benchResult(b)
	var h *analysis.HashtagTables
	for i := 0; i < b.N; i++ {
		h = analysis.RQ3Hashtags(res.Dataset)
		_ = report.Fig15Hashtags(h)
	}
	if len(h.Mastodon) == 0 {
		b.Fatal("no hashtags")
	}
}

func BenchmarkFig16Toxicity(b *testing.B) {
	res := benchResult(b)
	var x *analysis.ToxicityResult
	for i := 0; i < b.N; i++ {
		x = analysis.RQ3Toxicity(res.Dataset, analysis.ToxicityOptions{ScoreFn: toxsvc.Score})
		_ = report.Fig16Toxicity(x)
	}
	metric(b, "tweet_toxicity", 0.0549, x.OverallTweetToxic)
	metric(b, "status_toxicity", 0.028, x.OverallStatusToxic)
}

// BenchmarkExtRetention runs the §8 future-work extension: end-of-window
// retention classification.
func BenchmarkExtRetention(b *testing.B) {
	res := benchResult(b)
	var r *analysis.RetentionResult
	for i := 0; i < b.N; i++ {
		r = analysis.RQ4Retention(res.Dataset)
		_ = report.Retention(r)
	}
	b.ReportMetric(r.RetainedFrac*1000, "retained_measured")
	b.ReportMetric(r.ReturnedFrac*1000, "returned_measured")
}

// BenchmarkPipelineEndToEnd measures a whole small-world run: world
// generation, HTTP crawl, all analyses.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(120)
		cfg.World.Seed = uint64(i + 1)
		cfg.ScoreToxicity = false
		if _, err := core.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationMatcherStrategy compares the paper's hierarchical
// matcher (exact-username guard on tweet-text matches) against the
// guardless variant, measuring false positives on a corpus where users
// mention other people's handles.
func BenchmarkAblationMatcherStrategy(b *testing.B) {
	known := match.NewKnownInstances([]string{"mastodon.social"})
	rng := randx.New(1)
	gen := textkit.NewGenerator(rng)
	type caseT struct {
		profile match.Profile
		tweets  []string
		truth   bool // user actually migrated
	}
	var cases []caseT
	for i := 0; i < 500; i++ {
		username := textkit.Topic(i%textkit.NumTopics).String() + "user"
		migrated := i%3 == 0
		var tweets []string
		if migrated {
			tweets = append(tweets, gen.MigrationAnnouncement(0, username, "mastodon.social"))
		} else {
			// Mentions a friend's handle without migrating.
			tweets = append(tweets, "you should all follow @someoneelse@mastodon.social, great posts")
		}
		cases = append(cases, caseT{
			profile: match.Profile{Username: username},
			tweets:  tweets,
			truth:   migrated,
		})
	}
	var strictFP, looseFP int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strictFP, looseFP = 0, 0
		for _, c := range cases {
			if _, ok := match.Map(c.profile, c.tweets, known); ok && !c.truth {
				strictFP++
			}
			if _, ok := match.MapLoose(c.profile, c.tweets, known); ok && !c.truth {
				looseFP++
			}
		}
	}
	b.ReportMetric(float64(strictFP), "strict_false_positives")
	b.ReportMetric(float64(looseFP), "loose_false_positives")
}

// BenchmarkAblationSampling compares §3.3's median-straddling sample
// against naive head sampling: the bias in mean followee count.
func BenchmarkAblationSampling(b *testing.B) {
	res := benchResult(b)
	ds := res.Dataset
	var all []float64
	for i := range ds.Pairs {
		all = append(all, float64(ds.Pairs[i].TwitterFollowing))
	}
	trueMean := stats.Mean(all)
	var stratBias, headBias float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stratified: evenly spaced over the sorted distribution.
		e := stats.NewECDF(all)
		var strat []float64
		for q := 0.05; q < 1; q += 0.1 {
			strat = append(strat, e.Quantile(q))
		}
		// Head: first 10% by magnitude (what a lazy crawl does).
		head := append([]float64(nil), all...)
		for a := 1; a < len(head); a++ {
			for c := a; c > 0 && head[c-1] > head[c]; c-- {
				head[c-1], head[c] = head[c], head[c-1]
			}
		}
		head = head[:len(head)/10+1]
		stratBias = (stats.Mean(strat) - trueMean) / trueMean
		headBias = (stats.Mean(head) - trueMean) / trueMean
	}
	b.ReportMetric(stratBias*100, "stratified_bias_pct")
	b.ReportMetric(headBias*100, "head_bias_pct")
}

// BenchmarkAblationSimThreshold sweeps the Fig. 14 similarity cutoff.
func BenchmarkAblationSimThreshold(b *testing.B) {
	res := benchResult(b)
	for _, th := range []float64{0.5, 0.7, 0.8} {
		b.Run(thName(th), func(b *testing.B) {
			var o *analysis.Overlap
			for i := 0; i < b.N; i++ {
				o = analysis.RQ3Overlap(res.Dataset, analysis.OverlapOptions{Threshold: th, MaxUsers: 60})
			}
			metric(b, "similar_mean", 0.1657, o.MeanSimilar)
		})
	}
}

func thName(th float64) string {
	return "threshold_" + strings.ReplaceAll(strconv.FormatFloat(th, 'f', 1, 64), ".", "_")
}

// rateLimitedServer is an in-memory Doer enforcing a fixed-window rate
// limit, standing in for an API edge.
type rateLimitedServer struct {
	mu       sync.Mutex
	limit    int
	window   time.Duration
	winStart time.Time
	count    int
}

func (s *rateLimitedServer) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.winStart = time.Time{}
	s.count = 0
}

func (s *rateLimitedServer) Do(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	if s.winStart.IsZero() || now.Sub(s.winStart) >= s.window {
		s.winStart = now
		s.count = 0
	}
	h := http.Header{}
	if s.count >= s.limit {
		h.Set("Retry-After", "0")
		return &http.Response{StatusCode: 429, Header: h, Body: io.NopCloser(strings.NewReader(""))}, nil
	}
	s.count++
	return &http.Response{StatusCode: 200, Header: h, Body: io.NopCloser(strings.NewReader("{}"))}, nil
}

// BenchmarkAblationToxThreshold sweeps the §6.3 toxicity cutoff (0.5 vs
// the stricter 0.8 used by some prior work).
func BenchmarkAblationToxThreshold(b *testing.B) {
	res := benchResult(b)
	for _, th := range []float64{0.5, 0.8} {
		name := "threshold_0_5"
		if th == 0.8 {
			name = "threshold_0_8"
		}
		b.Run(name, func(b *testing.B) {
			var x *analysis.ToxicityResult
			for i := 0; i < b.N; i++ {
				x = analysis.RQ3Toxicity(res.Dataset, analysis.ToxicityOptions{Threshold: th, ScoreFn: toxsvc.Score})
			}
			metric(b, "tweet_toxicity", 0.0549, x.OverallTweetToxic)
		})
	}
}

// BenchmarkAblationRateLimit compares proactive client-side pacing
// against purely reactive 429 handling when a server rate-limits: the
// reactive client burns requests into 429s, the paced one does not.
func BenchmarkAblationRateLimit(b *testing.B) {
	fd := &rateLimitedServer{limit: 50, window: 100 * time.Millisecond}
	mk := func(l *httpkit.Limiter) *httpkit.Client {
		return httpkit.New(
			httpkit.WithDoer(fd),
			httpkit.WithLimiter(l),
			httpkit.WithRetry(httpkit.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}),
			httpkit.WithSleep(func(ctx context.Context, d time.Duration) error { return ctx.Err() }),
		)
	}
	run := func(c *httpkit.Client, n int) httpkit.Stats {
		ctx := context.Background()
		for i := 0; i < n; i++ {
			var out map[string]any
			_ = c.GetJSON(ctx, "https://api.example/x", &out)
		}
		return c.Stats()
	}
	var pacedStats, reactiveStats httpkit.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.reset()
		pacedStats = run(mk(httpkit.NewLimiter(400, 10)), 200)
		fd.reset()
		reactiveStats = run(mk(nil), 200)
	}
	b.ReportMetric(float64(pacedStats.RateLimited), "paced_429s")
	b.ReportMetric(float64(reactiveStats.RateLimited), "reactive_429s")
}

// BenchmarkAblationTailLatency quantifies the tail-at-scale design: a
// soak where the flagship instance is byte-throttled and stalls 8% of
// exchanges for 250ms. The global-bound baseline eats the tail on every
// slow exchange; the hedged+adaptive client races a backup after the
// host's p90 and widens per-host windows on success. Wall-clock per
// crawl is the benchmark time; hedge counters and the widest adaptive
// window ride along as metrics.
func BenchmarkAblationTailLatency(b *testing.B) {
	ctx := context.Background()
	wcfg := core.DefaultConfig(120).World
	wcfg.Seed = 99
	env, err := core.NewEnv(ctx, wcfg)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	rng := randx.New(2024)
	for _, inst := range env.World.Instances {
		spec := &memnet.ChaosSpec{Seed: rng.Uint64(), Jitter: time.Millisecond}
		if inst.Domain == "mastodon.social" {
			spec = &memnet.ChaosSpec{
				Seed:         rng.Uint64(),
				BytesPerSec:  512 << 10,
				Jitter:       2 * time.Millisecond,
				PSlowReq:     0.08,
				SlowReqDelay: 250 * time.Millisecond,
			}
		}
		env.Fabric.SetChaos(inst.Domain, spec)
	}
	mkCfg := func() crawler.Config {
		return crawler.Config{
			TwitterBase:     "https://" + birdsite.Host,
			IndexBase:       "https://" + indexsvc.Host,
			PerspectiveBase: "https://" + toxsvc.Host,
			Transport:       crawler.Transport{HTTP: env.Client, Concurrency: 12},
		}
	}
	crawl := func(b *testing.B, cfg crawler.Config) *crawler.Crawler {
		c := crawler.New(cfg)
		if _, err := c.Run(ctx); err != nil {
			b.Fatal(err)
		}
		return c
	}
	b.Run("global_bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			crawl(b, mkCfg())
		}
	})
	b.Run("hedged_adaptive", func(b *testing.B) {
		var st httpkit.Stats
		maxWin := 0
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			cfg.Hedge = httpkit.HedgePolicy{Percentile: 0.9, MinSamples: 8, BudgetFrac: 0.05, MinDelay: 5 * time.Millisecond}
			cfg.Adaptive = crawler.AdaptivePolicy{Enabled: true}
			c := crawl(b, cfg)
			st = c.HTTPStats()
			for _, l := range c.HostLimits() {
				if l > maxWin {
					maxWin = l
				}
			}
		}
		b.ReportMetric(float64(st.HedgesFired), "hedges_fired")
		b.ReportMetric(float64(st.HedgeWins), "hedge_wins")
		b.ReportMetric(float64(st.HedgesDenied), "hedges_denied")
		b.ReportMetric(float64(maxWin), "max_host_window")
	})
}

// BenchmarkAblationParallelAnalysis quantifies the deterministic
// parallel analysis engine: the full RQ hot path (centralization,
// contagion, the quadratic Fig. 14 similarity scan, toxicity,
// retention) serially, then on the kernels at 1/2/4/8 workers, then
// with the shared embedding cache on top. Results are byte-identical
// across all variants (see TestAnalysisDeterministicAcrossWorkers);
// only wall-clock and allocations move.
func BenchmarkAblationParallelAnalysis(b *testing.B) {
	res := benchResult(b)
	ds := res.Dataset
	suite := func(eng analysis.Engine) {
		_ = eng.RQ1(ds)
		_ = eng.RQ2Contagion(ds)
		_ = eng.RQ3Overlap(ds, analysis.OverlapOptions{})
		_ = eng.RQ3Toxicity(ds, analysis.ToxicityOptions{ScoreFn: toxsvc.Score})
		_ = eng.RQ4Retention(ds)
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			suite(analysis.Engine{Workers: 1})
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run("parallel_w"+strconv.Itoa(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				suite(analysis.Engine{Workers: w})
			}
		})
		b.Run("parallel_cache_w"+strconv.Itoa(w), func(b *testing.B) {
			// One cache across iterations: embeddings are immutable and
			// keyed by canonical text, so cross-run reuse is sound. One
			// warm-up pass fills it outside the timer — the steady-state
			// ns/op and allocs/op delta against the uncached variant is
			// the win repeated analyses (reports, figure sweeps) see.
			cache := textsim.NewCache()
			suite(analysis.Engine{Workers: w, Cache: cache})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				suite(analysis.Engine{Workers: w, Cache: cache})
			}
		})
	}
}
