// Command fedilint runs the repo's static-analysis suite (internal/lint)
// as a CI gate:
//
//	go run ./cmd/fedilint ./...
//
// It prints one line per finding and exits non-zero if any invariant is
// violated. See LINT.md for the invariant catalogue and the
// //lint:allow suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"flock/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fedilint [-list] [packages]\n\npackages default to ./... relative to the enclosing module\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedilint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fedilint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
