// Command fedisim generates a world and serves the simulated platforms
// over real TCP on loopback, so external tools (curl, custom crawlers)
// can poke at the same APIs the in-process pipeline crawls:
//
//	:8081  Twitter-like API        (GET /2/tweets/search/all?query=mastodon)
//	:8082  instance index          (GET /api/1.0/instances/list?count=0)
//	:8083  Perspective-like scorer (POST /v1alpha1/comments:analyze)
//	:8084  Google-Trends-like API  (GET /trends/api/series?term=mastodon)
//	:8085  every Mastodon instance, routed by Host header:
//	       curl -H "Host: mastodon.social" localhost:8085/api/v1/instance
//
// The process runs until interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"flock/internal/birdsite"
	"flock/internal/crawler"
	"flock/internal/fediverse"
	"flock/internal/httpkit"
	"flock/internal/indexsvc"
	"flock/internal/randx"
	"flock/internal/store"
	"flock/internal/toxsvc"
	"flock/internal/trendsvc"
	"flock/internal/world"
)

// chaosMiddleware injects seeded, per-host HTTP faults into a handler:
// each request to a Host gets a deterministic decision stream (seed x
// host x request index), failing with 503 or delaying the response. It
// is the TCP-facing sibling of the memnet conn-level chaos engine, so
// external crawlers can be soak-tested against the same §3.2 instance
// failures the in-process tests use.
func chaosMiddleware(seed uint64, pFail float64, maxDelay time.Duration, pTail float64, tailDelay time.Duration, next http.Handler) http.Handler {
	var mu sync.Mutex
	reqs := map[string]int{}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := reqs[r.Host]
		reqs[r.Host] = n + 1
		mu.Unlock()
		hostSeed := seed
		for _, b := range []byte(r.Host) {
			hostSeed = (hostSeed ^ uint64(b)) * 0x100000001b3
		}
		rng := randx.New(hostSeed).SplitN("req", n)
		if rng.Bool(pFail) {
			http.Error(w, "chaos: injected failure", http.StatusServiceUnavailable)
			return
		}
		if maxDelay > 0 {
			time.Sleep(time.Duration(rng.Float64() * float64(maxDelay)))
		}
		// The tail draw is separate from the uniform jitter: a small
		// fraction of requests stall hard, the bimodal shape hedged
		// requests (httpkit.WithHedge) are built to cut.
		if pTail > 0 && tailDelay > 0 && rng.Bool(pTail) {
			time.Sleep(tailDelay)
		}
		next.ServeHTTP(w, r)
	})
}

// portTransport routes the crawler's virtual-host requests onto the
// loopback ports fedisim serves: the core services by well-known host,
// every fediverse instance to the shared Host-dispatched port. The
// scheme drops to plain http and the virtual host survives in the Host
// header, so handlers (and the breaker registry, keyed by URL host
// before rewrite) see the same names the in-process pipeline uses.
type portTransport struct {
	base int
	next http.RoundTripper
}

func (t portTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	port := t.base + 4
	switch req.URL.Host {
	case birdsite.Host:
		port = t.base
	case indexsvc.Host:
		port = t.base + 1
	case toxsvc.Host:
		port = t.base + 2
	}
	out := req.Clone(req.Context())
	out.Host = req.URL.Host
	out.URL.Scheme = "http"
	out.URL.Host = fmt.Sprintf("127.0.0.1:%d", port)
	return t.next.RoundTrip(out)
}

// runCrawl drives the §3 pipeline against the served loopback ports.
// With -checkpoint, an interrupt (^C) flushes progress — including the
// health registry — and a rerun resumes, planning around hosts the
// previous run quarantined.
func runCrawl(base int, ckptPath string, healthTTL, cooldown time.Duration, noHealthResume bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := crawler.Config{
		TwitterBase:     "https://" + birdsite.Host,
		IndexBase:       "https://" + indexsvc.Host,
		PerspectiveBase: "https://" + toxsvc.Host,
		Transport: crawler.Transport{
			HTTP:        httpkit.NewHTTPClient(portTransport{base: base, next: http.DefaultTransport}, 30*time.Second),
			Concurrency: 8,
			Breaker:     httpkit.BreakerPolicy{Probation: healthTTL, Cooldown: cooldown},
		},
		Logf:           log.Printf,
		NoHealthResume: noHealthResume,
	}
	if ckptPath != "" {
		cfg.Checkpoint = store.NewFileCheckpoint(ckptPath)
	}
	c := crawler.New(cfg)
	ds, err := c.Run(ctx)
	rep := c.Report()
	log.Print(rep.Summary())
	hosts := make([]string, 0, len(rep.SkippedQuarantined))
	for h := range rep.SkippedQuarantined {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		log.Printf("skipped quarantined %s: %s", h, rep.SkippedQuarantined[h])
	}
	if err != nil {
		if ckptPath != "" && errors.Is(err, context.Canceled) {
			log.Printf("crawl interrupted; rerun with -crawl -checkpoint %s to resume", ckptPath)
			return
		}
		log.Fatalf("crawl: %v", err)
	}
	cov := ds.Coverage()
	log.Printf("crawl done: %+v", cov)
}

func main() {
	migrants := flag.Int("migrants", 500, "approximate number of migrated users to simulate")
	seed := flag.Uint64("seed", 1, "world seed")
	base := flag.Int("port", 8081, "first port; five consecutive ports are used")
	chaosSeed := flag.Uint64("chaos", 0, "fault-injection seed for the fediverse port (0 = no chaos)")
	chaosFail := flag.Float64("chaos-fail", 0.10, "per-request probability of an injected 503 when -chaos is set")
	chaosDelay := flag.Duration("chaos-delay", 50*time.Millisecond, "max injected per-request latency when -chaos is set")
	chaosTail := flag.Float64("chaos-tail", 0, "per-request probability of a hard tail-latency stall when -chaos is set (0 = off)")
	chaosTailDelay := flag.Duration("chaos-tail-delay", 250*time.Millisecond, "stall duration for -chaos-tail requests")
	crawlMode := flag.Bool("crawl", false, "run the §3 crawl pipeline against the served ports, then exit")
	ckptPath := flag.String("checkpoint", "", "crawl checkpoint file; with -crawl, an interrupted run resumes from it")
	healthTTL := flag.Duration("health-ttl", time.Hour, "quarantine probation: how long a checkpointed dead host stays skipped before being probed again")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "crawl breaker cooldown before a half-open probe (0 = httpkit default; short values let quarantine form quickly under -chaos)")
	noHealthResume := flag.Bool("no-health-resume", false, "discard the checkpoint's health snapshot on resume and re-learn host health from scratch")
	flag.Parse()

	cfg := world.DefaultConfig(*migrants)
	cfg.Seed = *seed
	w, err := world.Generate(cfg)
	if err != nil {
		log.Fatalf("world: %v", err)
	}
	log.Printf("world ready: %d users, %d migrants, %d instances, %d tweets, %d statuses",
		len(w.Users), len(w.Migrants), len(w.Instances), w.TweetCount(), w.StatusCount())

	serve := func(port int, name string, h http.Handler) {
		l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		log.Printf("%-10s http://127.0.0.1:%d", name, port)
		//lint:allow goroutine demo servers live for the whole process; http.Serve blocks per listener
		go func() {
			if err := http.Serve(l, h); err != nil {
				log.Printf("%s stopped: %v", name, err)
			}
		}()
	}
	serve(*base+0, "birdsite", birdsite.New(w).Handler())
	serve(*base+1, "index", indexsvc.New(w).Handler())
	serve(*base+2, "toxicity", toxsvc.New(0).Handler())
	serve(*base+3, "trends", trendsvc.Handler())
	// All fediverse instances behind one port; dispatch is by Host.
	fediHandler := http.Handler(fediverse.New(w).Handler())
	if *chaosSeed != 0 {
		fediHandler = chaosMiddleware(*chaosSeed, *chaosFail, *chaosDelay, *chaosTail, *chaosTailDelay, fediHandler)
		log.Printf("chaos on: seed=%d fail=%.2f max-delay=%v tail=%.2f tail-delay=%v (fediverse port only)",
			*chaosSeed, *chaosFail, *chaosDelay, *chaosTail, *chaosTailDelay)
	}
	serve(*base+4, "fediverse", fediHandler)
	log.Printf("fediverse hosts: e.g. curl -H 'Host: mastodon.social' http://127.0.0.1:%d/api/v1/instance", *base+4)

	if *crawlMode {
		runCrawl(*base, *ckptPath, *healthTTL, *breakerCooldown, *noHealthResume)
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
}
