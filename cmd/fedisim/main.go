// Command fedisim generates a world and serves the simulated platforms
// over real TCP on loopback, so external tools (curl, custom crawlers)
// can poke at the same APIs the in-process pipeline crawls:
//
//	:8081  Twitter-like API        (GET /2/tweets/search/all?query=mastodon)
//	:8082  instance index          (GET /api/1.0/instances/list?count=0)
//	:8083  Perspective-like scorer (POST /v1alpha1/comments:analyze)
//	:8084  Google-Trends-like API  (GET /trends/api/series?term=mastodon)
//	:8085  every Mastodon instance, routed by Host header:
//	       curl -H "Host: mastodon.social" localhost:8085/api/v1/instance
//
// The process runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"flock/internal/birdsite"
	"flock/internal/fediverse"
	"flock/internal/indexsvc"
	"flock/internal/toxsvc"
	"flock/internal/trendsvc"
	"flock/internal/world"
)

func main() {
	migrants := flag.Int("migrants", 500, "approximate number of migrated users to simulate")
	seed := flag.Uint64("seed", 1, "world seed")
	base := flag.Int("port", 8081, "first port; five consecutive ports are used")
	flag.Parse()

	cfg := world.DefaultConfig(*migrants)
	cfg.Seed = *seed
	w, err := world.Generate(cfg)
	if err != nil {
		log.Fatalf("world: %v", err)
	}
	log.Printf("world ready: %d users, %d migrants, %d instances, %d tweets, %d statuses",
		len(w.Users), len(w.Migrants), len(w.Instances), w.TweetCount(), w.StatusCount())

	serve := func(port int, name string, h http.Handler) {
		l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		log.Printf("%-10s http://127.0.0.1:%d", name, port)
		go func() {
			if err := http.Serve(l, h); err != nil {
				log.Printf("%s stopped: %v", name, err)
			}
		}()
	}
	serve(*base+0, "birdsite", birdsite.New(w).Handler())
	serve(*base+1, "index", indexsvc.New(w).Handler())
	serve(*base+2, "toxicity", toxsvc.New(0).Handler())
	serve(*base+3, "trends", trendsvc.Handler())
	// All fediverse instances behind one port; dispatch is by Host.
	serve(*base+4, "fediverse", fediverse.New(w).Handler())
	log.Printf("fediverse hosts: e.g. curl -H 'Host: mastodon.social' http://127.0.0.1:%d/api/v1/instance", *base+4)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	log.Print("shutting down")
}
