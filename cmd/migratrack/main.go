// Command migratrack runs the full reproduction pipeline: generate a
// synthetic world, serve the simulated platforms, run the paper's §3
// crawl against them, compute every analysis, and print the figures and
// the paper-vs-measured summary.
//
// Usage:
//
//	migratrack [-migrants N] [-seed S] [-toxicity] [-out DIR] [-fig N|all|summary]
//
// With -out the crawled dataset is anonymized (§3.4) and written as
// gzip JSONL with a manifest, loadable by cmd/figures.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"flock/internal/core"
	"flock/internal/report"
	"flock/internal/store"
)

func main() {
	migrants := flag.Int("migrants", 1000, "approximate number of migrated users to simulate")
	seed := flag.Uint64("seed", 1, "world seed (identical seeds give identical runs)")
	toxicity := flag.Bool("toxicity", false, "score every post via the Perspective-style service during the crawl (slower, faithful); otherwise scores are computed locally at analysis time")
	out := flag.String("out", "", "directory to write the anonymized dataset to")
	fig := flag.String("fig", "summary", `what to print: a figure number 1-16, "all", or "summary"`)
	salt := flag.String("salt", "flock-default-salt", "anonymization salt for -out")
	verbose := flag.Bool("v", false, "log crawl progress")
	flag.Parse()

	cfg := core.DefaultConfig(*migrants)
	cfg.World.Seed = *seed
	cfg.ScoreToxicity = *toxicity
	if *verbose {
		cfg.Logf = log.Printf
	}

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	switch *fig {
	case "all":
		fmt.Print(report.All(res))
	case "summary":
		fmt.Print(report.Summary(res))
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil || report.Figure(res, n) == "" {
			fmt.Fprintf(os.Stderr, "unknown -fig %q (want 1-16, all, summary)\n", *fig)
			os.Exit(2)
		}
		fmt.Print(report.Figure(res, n))
	}

	if *out != "" {
		anon := store.NewAnonymizer(*salt).Anonymize(res.Dataset)
		if err := store.Save(*out, anon, true); err != nil {
			log.Fatalf("saving dataset: %v", err)
		}
		fmt.Fprintf(os.Stderr, "anonymized dataset written to %s\n", *out)
	}
}
