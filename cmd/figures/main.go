// Command figures regenerates the paper's figures from a stored dataset
// (written by migratrack -out) or, absent one, from a fresh pipeline
// run.
//
// Usage:
//
//	figures -data DIR [-fig N|all]
//	figures -migrants 500 -fig 5
//	figures -workers 4 -timing        # parallel analysis + per-pass wall-clock
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"flock/internal/core"
	"flock/internal/report"
	"flock/internal/store"
)

func main() {
	data := flag.String("data", "", "dataset directory written by migratrack -out")
	migrants := flag.Int("migrants", 500, "world size when no -data is given")
	seed := flag.Uint64("seed", 1, "world seed when no -data is given")
	fig := flag.String("fig", "all", `figure number 1-16 or "all"`)
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS); results are identical at any setting")
	timing := flag.Bool("timing", false, "log per-analysis elapsed wall-clock to stderr")
	flag.Parse()

	var res *core.Result
	cfg := core.DefaultConfig(*migrants)
	cfg.ScoreToxicity = false
	cfg.AnalysisWorkers = *workers
	if *timing {
		cfg.Logf = log.Printf
	}
	analyzeStart := time.Now()
	if *data != "" {
		ds, manifest, err := store.Load(*data)
		if err != nil {
			log.Fatalf("loading dataset: %v", err)
		}
		log.Printf("dataset loaded: %d pairs, anonymized=%v", manifest.Counts.Pairs, manifest.Anonymized)
		res = core.Analyze(ds, cfg)
	} else {
		cfg.World.Seed = *seed
		var err error
		res, err = core.Run(context.Background(), cfg)
		if err != nil {
			log.Fatalf("pipeline: %v", err)
		}
	}
	if *timing {
		log.Printf("pipeline+analysis total %s", time.Since(analyzeStart).Round(time.Millisecond))
	}

	if *fig == "all" {
		fmt.Print(report.All(res))
		return
	}
	n, err := strconv.Atoi(*fig)
	if err != nil || report.Figure(res, n) == "" {
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	fmt.Print(report.Figure(res, n))
}
